//! Adversarial-input gauntlet: ≥10k deterministic seeded mutations per
//! reader — the binary wire decoder (both policies), the JSON parser and
//! the CSV parser — with zero panics and bounded allocation.
//!
//! Every case is reproducible from its printed seed alone:
//! `mutate(corpus, seed)` regenerates the offending document.

use wcm_events::summary::{CurveSummary, Sides};
use wcm_events::{Cycles, ExecutionInterval, TimedTrace, TimedEvent, TypeRegistry};
use wcm_wire::fuzz::{mutate, sweep, MAX_CASE_LEN};
use wcm_wire::{decode, DecodePolicy, StreamEncoder};

/// Acceptance floor: at least this many seeded cases per reader.
const CASES: u64 = 10_000;

/// Valid wire streams the mutator starts from: every frame kind the
/// format defines appears somewhere in the corpus.
fn wire_corpus() -> Vec<Vec<u8>> {
    let demands: Vec<u64> = (0..600u64).map(|i| i.wrapping_mul(2_654_435_761) >> 40).collect();
    let times: Vec<f64> = (0..600).map(|i| i as f64 * 0.04).collect();

    let mut full = StreamEncoder::new();
    full.meta("gauntlet");
    full.demands(&demands);
    full.times(&times).unwrap();
    full.summary(&CurveSummary::from_values(&demands, &[1, 2, 4, 8, 16], Sides::Both));
    full.app_frame(0x41, b"opaque application payload");

    let mut reg = TypeRegistry::new();
    let a = reg.register("a", ExecutionInterval::new(Cycles(10), Cycles(40)).unwrap()).unwrap();
    let b = reg.register("b", ExecutionInterval::new(Cycles(5), Cycles(90)).unwrap()).unwrap();
    let events: Vec<TimedEvent> = (0..400)
        .map(|i| TimedEvent {
            time: i as f64 * 0.02,
            ty: if i % 3 == 0 { a } else { b },
        })
        .collect();
    let typed = TimedTrace::new(reg, events).unwrap();

    let mut shard = StreamEncoder::new();
    shard.sweep_meta(&wcm_wire::SweepShardMeta {
        shard: 0,
        shards: 2,
        start: 0,
        len: 6,
        total: 12,
        fingerprint: 0x0123_4567_89AB_CDEF,
        clips: vec!["g".into()],
        frequencies_hz: vec![1.0e6, 2.0e6],
        capacities: vec![4, 8],
        policies: vec![0],
        seeds: vec![None, Some(1), Some(2)],
        advisories: Vec::new(),
    });
    shard.sweep_points(&[
        wcm_wire::SweepPointRec { verdict: 0, sim: None },
        wcm_wire::SweepPointRec {
            verdict: 3,
            sim: Some(wcm_wire::SweepSimRec { max_backlog: 9, dropped: 1, pe1_stalled_s: 0.25 }),
        },
    ]);

    vec![
        full.finish(),
        shard.finish(),
        wcm_wire::encode_demands("d-only", &demands),
        wcm_wire::encode_times("t-only", &times).unwrap(),
        wcm_wire::encode_timed_trace("typed", &typed),
        StreamEncoder::new().finish(), // header + end marker only
    ]
}

#[test]
fn wire_reader_survives_ten_thousand_mutations() {
    let corpus = wire_corpus();
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    sweep(&refs, CASES, 0x57C3_0001, |seed, doc| {
        // Neither policy may panic, loop, or allocate beyond the input's
        // own size class; errors and skips are the expected outcomes.
        let _ = decode(doc, DecodePolicy::Strict);
        if let Ok(out) = decode(doc, DecodePolicy::SkipCorrupt) {
            assert!(
                out.report.bytes_lost as usize <= doc.len(),
                "seed {seed}: bytes_lost {} exceeds input {}",
                out.report.bytes_lost,
                doc.len()
            );
            // Decoded payload counts are bounded by what the bytes could
            // possibly hold — the length-claim caps at work.
            assert!(
                out.demands.len() + out.times.len() <= doc.len(),
                "seed {seed}: decoded more items than input bytes"
            );
        }
    });
}

#[test]
fn json_reader_survives_ten_thousand_mutations() {
    let corpus: Vec<&[u8]> = vec![
        br#"{"stats": {"total": 6, "simulated": 2}, "points": [{"mhz": 340.0, "ok": true}, {"mhz": 2.0, "ok": false}], "pareto": [[340.0, 4]]}"#,
        br#"{"traceEvents": [{"name": "sweep.run", "ph": "B", "ts": 0.0}, {"name": "sweep.run", "ph": "E", "ts": 12.5}]}"#,
        br#"{"counters": {"sweep.points": 6}, "gauges": {}, "histograms": {"cell_us": [1, 2, 3]}, "spans": []}"#,
        br#"[null, true, false, -12.5e3, "str with \"escapes\" and \u00e9 text"]"#,
    ];
    sweep(&corpus, CASES, 0x57C3_0002, |_seed, doc| {
        let text = String::from_utf8_lossy(doc);
        let _ = wcm_obs::json::parse(&text);
    });
}

#[test]
fn csv_reader_survives_ten_thousand_mutations() {
    let corpus: Vec<&[u8]> = vec![
        b"clip,mhz,capacity,policy,ok\nnewscast,340.00,4,backpressure,true\nnewscast,2.00,4,reject,false\n",
        b"a,b\n\"quoted, with comma\",\"line\nbreak\"\n\"doubled \"\"quotes\"\"\",plain\n",
        b"single\r\ncrlf\r\n",
    ];
    sweep(&corpus, CASES, 0x57C3_0003, |_seed, doc| {
        let text = String::from_utf8_lossy(doc);
        let _ = wcm_obs::csv::parse_table(&text);
    });
}

/// The gauntlet's own guardrail: mutated documents never exceed the size
/// cap, so a "survived" run really did test bounded inputs.
#[test]
fn gauntlet_inputs_stay_bounded() {
    let corpus = wire_corpus();
    let refs: Vec<&[u8]> = corpus.iter().map(Vec::as_slice).collect();
    for seed in 0..500 {
        assert!(mutate(&refs, seed).len() <= MAX_CASE_LEN);
    }
}
