//! Generate an interleaved multi-session `.wcmt` stream for the serve
//! smoke test: `gen_sessions OUT SESSIONS EVENTS [SPIKE_AFTER]`.
//!
//! Sessions are named `s00000`…; each carries `EVENTS` MPEG-like
//! demand events in round-robin sittings. With `SPIKE_AFTER`, every
//! session's demands jump ×6 after that many events — observed windows
//! then escape the envelope the monitors bound on the calm prefix,
//! which is how the smoke test provokes violations deterministically.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: gen_sessions OUT SESSIONS EVENTS [SPIKE_AFTER]");
        std::process::exit(2);
    }
    let out = &args[0];
    let sessions: usize = args[1].parse().expect("SESSIONS");
    let events: usize = args[2].parse().expect("EVENTS");
    let spike_after: usize = args
        .get(3)
        .map(|s| s.parse().expect("SPIKE_AFTER"))
        .unwrap_or(usize::MAX);

    let gop = [900u64, 150, 150, 420, 150, 150, 420, 150, 150, 420, 150, 150];
    let mut enc = wcm_wire::StreamEncoder::new();
    let sitting = 8usize;
    let mut done = vec![0usize; sessions];
    let mut remaining = true;
    while remaining {
        remaining = false;
        for s in 0..sessions {
            let at = done[s];
            if at >= events {
                continue;
            }
            let take = sitting.min(events - at);
            let demands: Vec<u64> = (at..at + take)
                .map(|i| {
                    let base = gop[(i + s) % gop.len()] + (s as u64 % 7) * 10;
                    if i >= spike_after {
                        base * 6
                    } else {
                        base
                    }
                })
                .collect();
            enc.meta(&format!("s{s:05}"));
            enc.demands(&demands);
            done[s] = at + take;
            if done[s] < events {
                remaining = true;
            }
        }
    }
    let bytes = enc.finish();
    let mut f = std::fs::File::create(out).expect("create OUT");
    f.write_all(&bytes).expect("write OUT");
    println!("wrote {} byte(s), {sessions} session(s) to {out}", bytes.len());
}
