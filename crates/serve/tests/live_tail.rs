//! Live-tail integration: a writer that grows, seals and reopens a
//! `.wcmt` file while a [`wcm_serve::TailSource`] follows it — the
//! decoder must park on partial frames and resume across the
//! `StreamEncoder::reopen` seam, and the sessions must end up exactly
//! where a batch decode of the final file would put them.

use std::io::Write;
use std::path::Path;

use wcm_serve::{ServeConfig, Service};
use wcm_wire::{decode, DecodePolicy, StreamEncoder};

fn write_file(path: &Path, bytes: &[u8]) {
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(bytes).unwrap();
    f.sync_all().ok();
}

#[test]
fn tail_follows_a_writer_across_reopens_and_partial_frames() {
    let dir = std::env::temp_dir().join(format!("wcm_serve_tail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("live.wcmt");

    // Sitting 1: a sealed stream (header, META, demands, END).
    let mut enc = StreamEncoder::new();
    enc.meta("live");
    let demands1: Vec<u64> = (0..40u64).map(|i| 100 + (i * 13) % 37).collect();
    enc.demands(&demands1);
    let sealed1 = enc.finish();
    write_file(&file, &sealed1);

    let cfg = ServeConfig {
        k_max: 8,
        refresh_every: 8,
        shards: 1,
        par: wcm_par::Parallelism::Seq,
        ..ServeConfig::default()
    };
    let mut svc = Service::new(cfg);
    svc.add_tail(&file).unwrap();

    let r = svc.round().unwrap();
    assert!(r.dead.is_empty());
    assert_eq!(r.events, 40);
    let r = svc.round().unwrap();
    assert!(r.idle, "sealed stream with no new bytes is idle");

    // Sitting 2: reopen the sealed file and append more — plus leave a
    // *partial* frame at the end (a torn mid-write observation).
    let mut enc = StreamEncoder::reopen(sealed1).unwrap();
    let demands2: Vec<u64> = (0..24u64).map(|i| 500 + (i * 7) % 11).collect();
    enc.demands(&demands2);
    let sealed2 = enc.finish();
    let cut = sealed2.len() - 5; // torn END frame
    write_file(&file, &sealed2[..cut]);

    let r = svc.round().unwrap();
    assert!(r.dead.is_empty(), "partial frame must park, not kill: {:?}", r.dead);
    assert_eq!(r.events, 24, "appended demands decoded across the seam");
    assert!(!r.idle, "torn tail is not a clean end");

    // The writer completes the torn frame.
    write_file(&file, &sealed2);
    let r = svc.round().unwrap();
    assert!(r.dead.is_empty());
    let r2 = svc.round().unwrap();
    assert!(r2.idle, "completed END makes the tail idle again");

    // Sitting 3: another reopen with a second session interleaved.
    let mut enc = StreamEncoder::reopen(sealed2).unwrap();
    enc.meta("late");
    enc.demands(&[9, 9, 9, 9]);
    enc.meta("live");
    let demands3 = [1000u64, 1001, 1002];
    enc.demands(&demands3);
    let sealed3 = enc.finish();
    write_file(&file, &sealed3);

    loop {
        let r = svc.round().unwrap();
        assert!(r.dead.is_empty());
        if r.idle {
            break;
        }
    }

    // Cross-check against a batch decode of the final file.
    let batch = decode(&sealed3, DecodePolicy::Strict).unwrap();
    assert!(batch.report.is_clean());
    let total: u64 = svc.stats().events;
    assert_eq!(total, (demands1.len() + demands2.len() + 4 + demands3.len()) as u64);
    assert_eq!(svc.session_count(), 2);
    let snaps = svc.snapshots();
    assert_eq!(snaps.len(), 2);
    let live = snaps.iter().find(|s| s.contains("/live\"")).unwrap();
    assert!(
        live.contains(&format!("\"events\":{}", demands1.len() + demands2.len() + 3)),
        "{live}"
    );
    let late = snaps.iter().find(|s| s.contains("/late\"")).unwrap();
    assert!(late.contains("\"events\":4"), "{late}");

    std::fs::remove_file(&file).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn malformed_tail_marks_the_source_dead() {
    let dir = std::env::temp_dir().join(format!("wcm_serve_dead_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bad.wcmt");

    let mut enc = StreamEncoder::new();
    enc.meta("x");
    enc.demands(&[1, 2, 3]);
    let mut bytes = enc.finish();
    // Corrupt the first frame's sync byte (right after the 8-byte
    // header): an unambiguous structural error under Strict. (A flipped
    // *length* byte would merely park the live decoder waiting for the
    // phantom bytes — parking, not dying, is the tail contract for
    // anything that looks like an incomplete frame.)
    bytes[8] ^= 0xFF;
    write_file(&file, &bytes);

    let cfg = ServeConfig {
        shards: 1,
        par: wcm_par::Parallelism::Seq,
        ..ServeConfig::default()
    };
    let mut svc = Service::new(cfg);
    svc.add_tail(&file).unwrap();
    let r = svc.round().unwrap();
    assert_eq!(r.dead.len(), 1, "corrupt stream must kill the source");
    assert_eq!(svc.tail_count(), 0, "dead tails are dropped");

    std::fs::remove_file(&file).ok();
    std::fs::remove_dir(&dir).ok();
}
