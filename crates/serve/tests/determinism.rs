//! Multi-session determinism: N interleaved sessions fed chunk-wise
//! through the live serve pipeline produce snapshots byte-identical to
//! the batch path, across 1/2/4 shard threads.

use std::io::Write;
use std::path::Path;

use wcm_serve::{ServeConfig, Service, SessionState};
use wcm_sim::OverflowPolicy;
use wcm_wire::StreamEncoder;

/// Deterministic synthetic demand stream for session `s` — an
/// MPEG-like per-GOP shape plus per-session phase and scale so every
/// session has different curves and admission dynamics.
fn demands_for(s: usize, n: usize) -> Vec<u64> {
    let gop = [900u64, 150, 150, 420, 150, 150, 420, 150, 150, 420, 150, 150];
    (0..n)
        .map(|i| {
            let base = gop[(i + 3 * s) % gop.len()];
            base * (10 + s as u64) / 10 + ((i as u64 * 37) % 23)
        })
        .collect()
}

fn timestamps_for(s: usize, n: usize) -> Vec<f64> {
    let period = 1.0 / (25.0 + s as f64);
    (0..n).map(|i| i as f64 * period).collect()
}

fn small_cfg(shards: usize, par: wcm_par::Parallelism) -> ServeConfig {
    ServeConfig {
        k_max: 12,
        refresh_every: 16,
        frequency_hz: 40.0e3,
        capacity_events: 8,
        policy: OverflowPolicy::Backpressure,
        session_buffer: 64,
        times_window: 256,
        shards,
        par,
        ..ServeConfig::default()
    }
}

/// Encode `sessions` as one interleaved `.wcmt` stream: round-robin
/// over the sessions, a few events per sitting, with META frames
/// switching the active session each time.
fn interleaved_stream(sessions: &[(String, Vec<u64>, Vec<f64>)]) -> Vec<u8> {
    let mut enc = StreamEncoder::new();
    let mut done = vec![0usize; sessions.len()];
    let mut remaining = true;
    let mut turn = 0usize;
    while remaining {
        remaining = false;
        for (s, (name, demands, times)) in sessions.iter().enumerate() {
            let at = done[s];
            if at >= demands.len() {
                continue;
            }
            // Vary the sitting size so frame boundaries never line up
            // with refresh boundaries.
            let take = (3 + (turn + s) % 5).min(demands.len() - at);
            enc.meta(name);
            // Times precede the demands they stamp (the serve pairing
            // contract), so a chunk boundary can only delay demands.
            enc.times(&times[at..at + take]).unwrap();
            enc.demands(&demands[at..at + take]);
            done[s] = at + take;
            if done[s] < demands.len() {
                remaining = true;
            }
            turn += 1;
        }
    }
    enc.finish()
}

/// The batch oracle: one `SessionState` fed the whole trace in a
/// single call.
fn batch_snapshot(name: &str, demands: &[u64], times: &[f64], cfg: &ServeConfig) -> String {
    let mut s = SessionState::new(cfg);
    s.record_times(times, cfg);
    s.enqueue(demands, cfg);
    s.apply_pending(cfg);
    s.snapshot_json(name)
}

/// Run the full service over `file`, feeding `chunk` bytes per round.
fn serve_snapshots(file: &Path, chunk: usize, cfg: ServeConfig) -> Vec<String> {
    let mut svc = Service::new(cfg);
    svc.add_tail(file).unwrap();
    svc.set_budget(chunk);
    loop {
        let report = svc.round().unwrap();
        assert!(report.dead.is_empty(), "source died: {:?}", report.dead);
        if report.idle {
            break;
        }
    }
    let drained = svc.drain().unwrap();
    assert_eq!(drained.bytes, 0, "idle service still had bytes");
    svc.snapshots()
}

#[test]
fn interleaved_sessions_match_batch_path_across_shard_counts() {
    let n_sessions = 7;
    let n_events = 160;
    let sessions: Vec<(String, Vec<u64>, Vec<f64>)> = (0..n_sessions)
        .map(|s| {
            (
                format!("cam-{s:02}"),
                demands_for(s, n_events),
                timestamps_for(s, n_events),
            )
        })
        .collect();
    let bytes = interleaved_stream(&sessions);

    let dir = std::env::temp_dir().join(format!("wcm_serve_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("interleaved.wcmt");
    std::fs::File::create(&file)
        .unwrap()
        .write_all(&bytes)
        .unwrap();

    // The oracle sees each session's whole trace in one call.
    let cfg1 = small_cfg(1, wcm_par::Parallelism::Seq);
    let expected: Vec<String> = {
        let mut lines: Vec<(String, String)> = sessions
            .iter()
            .map(|(name, demands, times)| {
                let display = format!("file:{}/{name}", file.display());
                (name.clone(), batch_snapshot(&display, demands, times, &cfg1))
            })
            .collect();
        lines.sort();
        lines.into_iter().map(|(_, l)| l).collect()
    };

    // Live path: several chunk sizes × shard/thread counts, all
    // byte-identical to the oracle.
    for &(shards, threads) in &[(1usize, 1usize), (2, 2), (4, 4)] {
        let par = if threads == 1 {
            wcm_par::Parallelism::Seq
        } else {
            wcm_par::Parallelism::Threads(threads)
        };
        for &chunk in &[97usize, 1024, 1 << 20] {
            let got = serve_snapshots(&file, chunk, small_cfg(shards, par));
            assert_eq!(
                got, expected,
                "snapshot mismatch: shards={shards} threads={threads} chunk={chunk}"
            );
        }
    }

    std::fs::remove_file(&file).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn admission_decides_both_ways() {
    // Sanity that the test workload actually exercises admission: a
    // fast PE2 admits, a hopeless one rejects.
    let sessions = [(
        "one".to_string(),
        demands_for(0, 160),
        timestamps_for(0, 160),
    )];
    let (name, demands, times) = &sessions[0];
    let mut fast = small_cfg(1, wcm_par::Parallelism::Seq);
    fast.frequency_hz = 1.0e9;
    let line = batch_snapshot(name, demands, times, &fast);
    assert!(line.contains("\"verdict\":\"admit\""), "{line}");

    let mut slow = small_cfg(1, wcm_par::Parallelism::Seq);
    slow.frequency_hz = 1.0;
    let line = batch_snapshot(name, demands, times, &slow);
    assert!(line.contains("\"verdict\":\"reject\""), "{line}");
}
