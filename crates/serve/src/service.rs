//! The service proper: sources in, sharded sessions in the middle,
//! snapshots/metrics out.
//!
//! Each [`Service::round`] is one deterministic sweep: poll every
//! source (respecting per-source backpressure stalls), route the
//! decoded batches to their sessions' shards, then fan the shards out
//! over the `wcm-par` pool — each shard locks independently, so the
//! parallel step is uncontended — and fold the per-shard outcomes into
//! service counters. Session state only ever mutates inside the shard
//! step, and the event-count refresh cadence of
//! [`SessionState`](crate::session::SessionState) makes every snapshot
//! independent of how rounds, polls, and shard threads sliced the
//! stream.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use wcm_wire::WireError;

use crate::config::ServeConfig;
use crate::ingest::{Poll, RoutedBatch, TailSource, TcpSource};
use crate::session::SessionState;

/// Separator between source id and session name in the canonical
/// session key (neither side can contain it: source ids are
/// `file:`/`tcp:` prefixed paths/addrs, names come from `META` text).
const KEY_SEP: char = '\u{1f}';

/// One shard: the subset of sessions whose key hashes here.
#[derive(Debug, Default)]
struct Shard {
    sessions: BTreeMap<String, SessionState>,
}

/// What one shard did during the parallel apply step.
#[derive(Debug, Default, Clone, Copy)]
struct ShardOutcome {
    events: u64,
    violations: u64,
    flips: u64,
    dropped: u64,
    sessions: usize,
    /// A session on this shard reported a full buffer (source stall).
    fulls: usize,
}

/// Aggregate of one [`Service::round`].
#[derive(Debug, Default, Clone)]
pub struct RoundReport {
    /// Bytes consumed across all sources.
    pub bytes: u64,
    /// Events applied into session spines.
    pub events: u64,
    /// Fresh monitor violations this round.
    pub violations: u64,
    /// Admission flips this round.
    pub flips: u64,
    /// Events dropped by overflow policies this round.
    pub dropped: u64,
    /// Sources that failed permanently this round, with the wire error.
    pub dead: Vec<(String, WireError)>,
    /// Every live tail source has consumed a clean end marker and no
    /// new bytes arrived (the natural idle-exit condition).
    pub idle: bool,
}

/// Cumulative service statistics.
#[derive(Debug, Default, Clone)]
pub struct ServiceStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Total bytes ingested.
    pub bytes: u64,
    /// Total events applied.
    pub events: u64,
    /// Total monitor violations.
    pub violations: u64,
    /// Total admission flips.
    pub flips: u64,
    /// Total events dropped by overflow policies.
    pub dropped: u64,
    /// Live sessions.
    pub sessions: usize,
    /// Sources that died on malformed input.
    pub dead_sources: u64,
    /// Rounds where at least one source was stalled by backpressure.
    pub stall_rounds: u64,
}

/// The long-lived monitoring service: live `.wcmt` sources demuxed
/// into per-session spines/monitors/admission, sharded over the
/// `wcm-par` pool.
#[derive(Debug)]
pub struct Service {
    cfg: ServeConfig,
    shards: Vec<Mutex<Shard>>,
    tails: Vec<TailSource>,
    tcp: Option<TcpSource>,
    /// Source ids stalled by backpressure (skip reads next round).
    stalled: Vec<String>,
    stats: ServiceStats,
    /// Per-poll read budget per source, bytes.
    budget: usize,
}

impl Service {
    /// Fresh service under `cfg`; add sources before the first round.
    #[must_use]
    pub fn new(cfg: ServeConfig) -> Self {
        let n = cfg.effective_shards().max(1);
        Self {
            cfg,
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            tails: Vec::new(),
            tcp: None,
            stalled: Vec::new(),
            stats: ServiceStats::default(),
            budget: 1 << 20,
        }
    }

    /// The configuration the service runs under.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Override the per-source per-round read budget (bytes).
    pub fn set_budget(&mut self, bytes: usize) {
        self.budget = bytes.max(1);
    }

    /// Tail a `.wcmt` file.
    ///
    /// # Errors
    ///
    /// I/O errors opening the file.
    pub fn add_tail(&mut self, path: &Path) -> io::Result<()> {
        self.tails.push(TailSource::open(path)?);
        Ok(())
    }

    /// Start accepting `.wcmt` connections on `addr`; returns the
    /// bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Bind errors.
    pub fn listen(&mut self, addr: &str) -> io::Result<std::net::SocketAddr> {
        let src = TcpSource::bind(addr)?;
        let bound = src.local_addr()?;
        self.tcp = Some(src);
        Ok(bound)
    }

    /// Stable shard of a session key (FNV-1a so placement does not
    /// depend on the process's hash seed).
    fn shard_of(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// One sweep: poll sources, route, apply shards in parallel, fold
    /// counters.
    ///
    /// # Errors
    ///
    /// I/O errors from source polling (wire errors are folded into the
    /// report instead).
    pub fn round(&mut self) -> io::Result<RoundReport> {
        let _span = wcm_obs::span("serve.round");
        let mut report = RoundReport::default();
        let mut inboxes: Vec<Vec<(String, RoutedBatch)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut ended = 0usize;
        let mut polled = 0usize;

        let stalled = std::mem::take(&mut self.stalled);
        let mut polls: Vec<(String, Poll)> = Vec::new();
        for tail in &mut self.tails {
            let stall = stalled.iter().any(|s| s == &tail.id);
            let poll = tail.poll(self.budget, stall)?;
            polls.push((tail.id.clone(), poll));
        }
        if let Some(tcp) = &mut self.tcp {
            polls.extend(tcp.poll(self.budget, false)?);
        }
        if !stalled.is_empty() {
            self.stats.stall_rounds += 1;
            wcm_obs::counter("serve.backpressure_stalls", stalled.len() as u64);
        }

        for (src, poll) in polls {
            polled += 1;
            report.bytes += poll.bytes as u64;
            if poll.ended {
                ended += 1;
            }
            if let Some(err) = poll.dead {
                report.dead.push((src.clone(), err));
            }
            for (name, batch) in poll.batches {
                let key = format!("{src}{KEY_SEP}{name}");
                let shard = self.shard_of(&key);
                inboxes[shard].push((key, batch));
            }
        }

        // Parallel apply: one task per shard, each locking only its own
        // shard — the pool sees uncontended mutexes.
        let inboxes: Vec<Mutex<Vec<(String, RoutedBatch)>>> =
            inboxes.into_iter().map(Mutex::new).collect();
        let cfg = &self.cfg;
        let shards = &self.shards;
        let cost = (report.bytes / self.shards.len().max(1) as u64).max(1024);
        let outcomes = wcm_par::par_map(cfg.par, &inboxes, cost, |i, inbox| {
            let mut out = ShardOutcome::default();
            let batches = std::mem::take(&mut *inbox.lock().expect("inbox lock"));
            let mut shard = shards[i].lock().expect("shard lock");
            for (key, batch) in batches {
                let session = shard
                    .sessions
                    .entry(key)
                    .or_insert_with(|| SessionState::new(cfg));
                let flips_before = session.flips();
                if !batch.times.is_empty() {
                    session.record_times(&batch.times, cfg);
                }
                let enq = session.enqueue(&batch.demands, cfg);
                out.dropped += enq.dropped as u64;
                if enq.full {
                    out.fulls += 1;
                }
                out.events += enq.accepted as u64;
                out.violations += session.apply_pending(cfg);
                out.flips += session.flips() - flips_before;
            }
            out.sessions = shard.sessions.len();
            out
        });

        let mut sessions = 0usize;
        let mut fulls = 0usize;
        for out in &outcomes {
            report.events += out.events;
            report.violations += out.violations;
            report.flips += out.flips;
            report.dropped += out.dropped;
            sessions += out.sessions;
            fulls += out.fulls;
        }
        // Backpressure: a full session buffer stalls every *tail*
        // source next round (sessions are not mapped back to sources,
        // so the stall is conservative); TCP peers are throttled by the
        // socket's own flow control instead.
        if fulls > 0 && matches!(self.cfg.policy, wcm_sim::OverflowPolicy::Backpressure) {
            self.stalled = self.tails.iter().map(|t| t.id.clone()).collect();
        }
        for (src, _) in &report.dead {
            self.tails.retain(|t| &t.id != src);
            self.stats.dead_sources += 1;
        }
        report.idle = report.bytes == 0
            && polled > 0
            && ended == polled
            && self.tcp.as_ref().is_none_or(|t| t.open_conns() == 0);

        self.stats.rounds += 1;
        self.stats.bytes += report.bytes;
        self.stats.events += report.events;
        self.stats.violations += report.violations;
        self.stats.flips += report.flips;
        self.stats.dropped += report.dropped;
        self.stats.sessions = sessions;
        wcm_obs::counter("serve.events", report.events);
        wcm_obs::counter("serve.violations", report.violations);
        wcm_obs::counter("serve.dropped", report.dropped);
        wcm_obs::gauge_max("serve.sessions", sessions as u64);
        Ok(report)
    }

    /// Graceful drain: keep polling until every source is quiet, then
    /// force a final refresh of every session with unfolded events so
    /// snapshots reflect the whole stream.
    ///
    /// # Errors
    ///
    /// I/O errors from the final polls.
    pub fn drain(&mut self) -> io::Result<RoundReport> {
        let _span = wcm_obs::span("serve.drain");
        let mut total = RoundReport::default();
        // Backpressure stalls are void during drain: nothing new is
        // admitted after the pending bytes, so flush them through.
        loop {
            self.stalled.clear();
            let report = self.round()?;
            total.bytes += report.bytes;
            total.events += report.events;
            total.violations += report.violations;
            total.flips += report.flips;
            total.dropped += report.dropped;
            total.dead.extend(report.dead);
            total.idle = report.idle;
            if report.bytes == 0 {
                break;
            }
        }
        Ok(total)
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Snapshot every session as one stable JSON line, sorted by
    /// session key — the byte-parity surface of the determinism tests.
    #[must_use]
    pub fn snapshots(&self) -> Vec<String> {
        let mut keyed: Vec<(String, String)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock");
            for (key, session) in &shard.sessions {
                let name = key.replace(KEY_SEP, "/");
                keyed.push((key.clone(), session.snapshot_json(&name)));
            }
        }
        keyed.sort();
        keyed.into_iter().map(|(_, line)| line).collect()
    }

    /// Visit every session (key, state) in deterministic key order.
    pub fn for_each_session(&self, mut f: impl FnMut(&str, &SessionState)) {
        let mut order: Vec<(String, usize)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("shard lock");
            for key in shard.sessions.keys() {
                order.push((key.clone(), i));
            }
        }
        order.sort();
        for (key, i) in order {
            let shard = self.shards[i].lock().expect("shard lock");
            if let Some(session) = shard.sessions.get(&key) {
                f(&key, session);
            }
        }
    }

    /// Live session count.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").sessions.len())
            .sum()
    }

    /// Live tail sources.
    #[must_use]
    pub fn tail_count(&self) -> usize {
        self.tails.len()
    }
}

/// Peak resident set size of this process in kiB (`VmHWM` from
/// `/proc/self/status`), if the platform exposes it — the flat-memory
/// guard of `serve_smoke.sh` reads this.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}
