//! Service configuration: one [`ServeConfig`] drives every session the
//! service hosts — curve depth, refresh cadence, the PE2 the admission
//! question is asked about, and the backpressure contract of the
//! per-session ingest buffers.

use wcm_sim::OverflowPolicy;

/// Configuration shared by every session of one [`crate::Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest window size of the per-session curves and monitor.
    pub k_max: usize,
    /// Spine chunk target (events per sealed chunk); clamped by the
    /// spine itself to at least `4 · k_max`.
    pub chunk_target: usize,
    /// Events between spine refreshes: each refresh folds the spine,
    /// rebinds the monitor to the fresh envelope and recomputes the
    /// eq.-9 admission verdict. Cadence counts *events*, never chunks
    /// or polls, so verdicts are a deterministic function of the stream
    /// alone.
    pub refresh_every: u64,
    /// PE2 clock frequency the admission question is asked about.
    pub frequency_hz: f64,
    /// PE2 input FIFO capacity in events (the `b` of eq. 8/9).
    pub capacity_events: u64,
    /// Overflow policy of the bounded per-session ingest buffer:
    /// `Backpressure` stalls the source, `Reject` drops the newest
    /// arrivals, `DropByPriority` evicts the smallest-demand pending
    /// events (low demand ≈ low-priority B frames).
    pub policy: OverflowPolicy,
    /// Per-session ingest buffer capacity in events.
    pub session_buffer: usize,
    /// Whether each session runs an [`wcm_core::EnvelopeMonitor`].
    pub monitor: bool,
    /// Monitor fast-scan mode (certificate early-exit; identical
    /// verdicts, no per-k slack statistics).
    pub fast_scan: bool,
    /// Fallback arrival model period (seconds) for sessions whose
    /// stream carries no timestamps.
    pub period_s: f64,
    /// Fallback arrival model jitter (seconds).
    pub jitter_s: f64,
    /// Retained observed timestamps per session (sliding window) for
    /// the empirical arrival curve.
    pub times_window: usize,
    /// Session shards processed concurrently on the `wcm-par` pool.
    pub shards: usize,
    /// Parallelism of the shard fan-out.
    pub par: wcm_par::Parallelism,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            k_max: 64,
            chunk_target: 0, // spine clamps to 4 * k_max
            refresh_every: 64,
            frequency_hz: 60.0e6,
            capacity_events: 400,
            policy: OverflowPolicy::Backpressure,
            session_buffer: 4096,
            monitor: true,
            fast_scan: false,
            period_s: 1.0 / 30.0,
            jitter_s: 0.0,
            times_window: 4096,
            shards: 0, // resolved against the pool width at startup
            par: wcm_par::Parallelism::Auto,
        }
    }
}

impl ServeConfig {
    /// The shard count actually used: the configured one, or (when 0)
    /// the worker count the parallelism knob resolves to for a
    /// CPU-bound load.
    #[must_use]
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        match self.par {
            wcm_par::Parallelism::Seq => 1,
            wcm_par::Parallelism::Threads(n) => n.max(1),
            wcm_par::Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}
