//! # wcm-serve — always-on multi-tenant workload monitoring
//!
//! A long-lived service that tails live `.wcmt` streams (growing
//! files or TCP connections), demultiplexes their frames into
//! per-session state, and keeps three things current for every
//! session:
//!
//! * an incremental [`wcm_events::summary::SummarySpine`] — the
//!   workload curves γᵘ/γˡ of everything seen so far, refreshed in
//!   amortised-constant time per event;
//! * a rebound [`wcm_core::EnvelopeMonitor`] — flags any window of
//!   the live stream that escapes the spine's envelope;
//! * the eq.-9 admission verdict — *can this stream join PE2 at the
//!   configured frequency without overflowing the FIFO?* —
//!   recomputed at every spine refresh.
//!
//! Sessions are sharded across the `wcm-par` work-stealing pool;
//! per-session ingest buffers are bounded and reuse the simulator's
//! [`wcm_sim::OverflowPolicy`] vocabulary (`Backpressure` stalls the
//! source, `Reject`/`DropByPriority` shed load). Snapshots, admission
//! flips and monitor violations flow through `wcm-obs`, so the usual
//! metrics-JSON and chrome://tracing exports cover the service too.
//!
//! The crate is the library under the `wcm serve` CLI subcommand, but
//! it is usable directly:
//!
//! ```no_run
//! use wcm_serve::{ServeConfig, Service};
//!
//! let mut svc = Service::new(ServeConfig::default());
//! svc.add_tail(std::path::Path::new("live.wcmt"))?;
//! loop {
//!     let report = svc.round()?;
//!     if report.idle {
//!         break;
//!     }
//! }
//! for line in svc.snapshots() {
//!     println!("{line}");
//! }
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## Determinism
//!
//! Refresh cadence counts events, never wall-clock or poll
//! boundaries, so the snapshots a live session produces are
//! byte-identical to feeding the same stream through the batch
//! `SummarySpine`/`EnvelopeMonitor` path — regardless of chunking and
//! of how many shard threads the service runs. `tests/determinism.rs`
//! pins this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ingest;
pub mod service;
pub mod session;

pub use config::ServeConfig;
pub use ingest::{Poll, RoutedBatch, TailSource, TcpSource};
pub use service::{peak_rss_kb, RoundReport, Service, ServiceStats};
pub use session::{Admission, EnqueueOutcome, SessionState};
