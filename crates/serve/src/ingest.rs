//! Live `.wcmt` ingestion: sources that feed a strict
//! [`FrameDecoder`] from a growing file (tail) or a TCP connection and
//! route each decoded frame to the session it belongs to.
//!
//! A source is a layered rx pipeline: bytes → frames (decoder) →
//! routed batches keyed by `(source, session)`. Session identity
//! follows the stream's own `META` frames — each `META` names the
//! current session of that source, and every `DEMANDS`/`TIMES` frame
//! that follows belongs to it until the next `META`. One stream can
//! therefore multiplex any number of interleaved sessions.
//!
//! Tail semantics are where the live path differs from batch decode:
//! a tail that catches up to a *partial frame* at end-of-file parks
//! the decoder and resumes when the writer appends (never a
//! `truncated` error), and a tail that consumed a clean end marker
//! resumes across `StreamEncoder::reopen` — the writer truncates the
//! marker and appends in its place, so the source rewinds by exactly
//! [`wcm_wire::frame::FRAME_OVERHEAD`] bytes via
//! [`FrameDecoder::resume_after_end`] before reading on.

use std::io::{self, Read, Seek, SeekFrom};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};

use wcm_wire::frame::{Frame, KIND_DEMANDS, KIND_META, KIND_TIMES};
use wcm_wire::trace::payload;
use wcm_wire::{DecodePolicy, FrameDecoder, WireError};

/// One routed batch of decoded events: everything one poll round
/// produced for one session of one source, in stream order.
#[derive(Debug, Default)]
pub struct RoutedBatch {
    /// Demand values, in arrival order.
    pub demands: Vec<u64>,
    /// Timestamps, in arrival order.
    pub times: Vec<f64>,
}

/// Frame router: accumulates one poll round's decoded frames into
/// per-session batches (keyed by session name; the caller scopes them
/// by source).
#[derive(Debug, Default)]
pub struct Router {
    /// `(session name, batch)` in first-seen order — deterministic
    /// routing order for the shard step.
    pub batches: Vec<(String, RoutedBatch)>,
    /// The active session name — sticky *across* polls, because a
    /// chunk boundary can land anywhere between a `META` and the
    /// frames that belong to it.
    current: Option<String>,
    /// Frames of unknown/ignored kinds this round.
    pub ignored: u64,
}

impl Router {
    fn slot(&mut self, name: &str) -> usize {
        match self.batches.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.batches.push((name.to_string(), RoutedBatch::default()));
                self.batches.len() - 1
            }
        }
    }

    /// The batch slot of the active session (frames before any `META`
    /// belong to the source's default session `""`).
    fn active_slot(&mut self) -> usize {
        let name = self.current.clone().unwrap_or_default();
        self.slot(&name)
    }

    /// Route one decoded frame.
    fn route(&mut self, frame: &Frame<'_>) -> Result<(), WireError> {
        match frame.kind {
            KIND_META => {
                self.current = Some(payload::meta(frame)?);
            }
            KIND_DEMANDS => {
                let vals = payload::demands(frame)?;
                let idx = self.active_slot();
                self.batches[idx].1.demands.extend_from_slice(&vals);
            }
            KIND_TIMES => {
                let vals = payload::times(frame)?;
                let idx = self.active_slot();
                self.batches[idx].1.times.extend_from_slice(&vals);
            }
            _ => self.ignored += 1,
        }
        Ok(())
    }
}

/// What one poll of a source produced.
#[derive(Debug, Default)]
pub struct Poll {
    /// Routed per-session batches (drained by the caller).
    pub batches: Vec<(String, RoutedBatch)>,
    /// Bytes consumed this round.
    pub bytes: usize,
    /// The source reached a clean end marker (it may still resume if
    /// the writer reopens the stream).
    pub ended: bool,
    /// The source failed permanently (malformed stream).
    pub dead: Option<WireError>,
}

/// Live tail of a growing `.wcmt` file.
#[derive(Debug)]
pub struct TailSource {
    /// Stable identity used to scope session keys.
    pub id: String,
    path: PathBuf,
    dec: FrameDecoder,
    router: Router,
    /// Absolute file offset of the next unread byte.
    offset: u64,
    dead: Option<WireError>,
}

impl TailSource {
    /// Tail `path` from the beginning.
    ///
    /// # Errors
    ///
    /// I/O errors opening/statting the file.
    pub fn open(path: &Path) -> io::Result<Self> {
        std::fs::metadata(path)?;
        Ok(Self {
            id: format!("file:{}", path.display()),
            path: path.to_path_buf(),
            dec: FrameDecoder::new(DecodePolicy::Strict),
            router: Router::default(),
            offset: 0,
            dead: None,
        })
    }

    /// Read up to `budget` new bytes, decode, and route. `stalled`
    /// (backpressure from a full session buffer) skips reading without
    /// touching decoder state — the unread bytes simply stay in the
    /// file.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file. Wire errors mark the source dead
    /// and are reported in the poll, not returned.
    pub fn poll(&mut self, budget: usize, stalled: bool) -> io::Result<Poll> {
        let mut out = Poll::default();
        if let Some(e) = &self.dead {
            out.dead = Some(e.clone());
            return Ok(out);
        }
        if stalled {
            out.ended = self.dec.ended();
            return Ok(out);
        }
        let len = std::fs::metadata(&self.path)?.len();
        if self.dec.ended() && len != self.offset {
            // The writer reopened the sealed stream in place: rewind
            // over the truncated end marker and re-read from the seam.
            if let Some(seam) = self.dec.resume_after_end() {
                self.offset = seam as u64;
            }
        }
        if len > self.offset {
            let mut file = std::fs::File::open(&self.path)?;
            file.seek(SeekFrom::Start(self.offset))?;
            let want = usize::try_from(len - self.offset)
                .unwrap_or(usize::MAX)
                .min(budget.max(1));
            let mut buf = vec![0u8; want];
            let mut read = 0;
            while read < want {
                match file.read(&mut buf[read..]) {
                    Ok(0) => break,
                    Ok(n) => read += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            buf.truncate(read);
            self.offset += read as u64;
            out.bytes = read;
            let router = &mut self.router;
            if let Err(e) = self.dec.feed_with(&buf, |f| {
                // Route errors surface via the decoder's own strict
                // payload validation on the next feed; record locally.
                let _ = router.route(f);
            }) {
                self.dead = Some(e.clone());
                out.dead = Some(e);
            }
            // The decoder accumulates payloads internally too; the
            // router already took them, keep the tail flat.
            self.dec.reset_decoded();
        }
        out.ended = self.dec.ended();
        out.batches = std::mem::take(&mut self.router.batches);
        Ok(out)
    }
}

/// TCP ingestion: a listener plus one decoder per accepted connection.
/// Connections speak plain `.wcmt` — header, frames, end marker.
#[derive(Debug)]
pub struct TcpSource {
    listener: TcpListener,
    conns: Vec<Conn>,
    accepted: u64,
}

#[derive(Debug)]
struct Conn {
    id: String,
    stream: TcpStream,
    dec: FrameDecoder,
    router: Router,
    open: bool,
}

impl TcpSource {
    /// Bind `addr` (e.g. `127.0.0.1:7070`) in non-blocking mode.
    ///
    /// # Errors
    ///
    /// Bind/configure errors.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            conns: Vec::new(),
            accepted: 0,
        })
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept pending connections and poll every open one. Returns the
    /// per-connection polls as `(source id, poll)`.
    ///
    /// # Errors
    ///
    /// Accept errors other than `WouldBlock`.
    pub fn poll(&mut self, budget: usize, stalled: bool) -> io::Result<Vec<(String, Poll)>> {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(true)?;
                    self.accepted += 1;
                    self.conns.push(Conn {
                        id: format!("tcp:{peer}#{}", self.accepted),
                        stream,
                        dec: FrameDecoder::new(DecodePolicy::Strict),
                        router: Router::default(),
                        open: true,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        let mut polls = Vec::new();
        for conn in &mut self.conns {
            if !conn.open {
                continue;
            }
            let mut out = Poll::default();
            if !stalled {
                let mut buf = vec![0u8; budget.max(1)];
                let mut read = 0;
                loop {
                    match conn.stream.read(&mut buf[read..]) {
                        Ok(0) => {
                            conn.open = false;
                            break;
                        }
                        Ok(n) => {
                            read += n;
                            if read == buf.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.open = false;
                            break;
                        }
                    }
                }
                buf.truncate(read);
                out.bytes = read;
                if read > 0 {
                    let router = &mut conn.router;
                    if let Err(e) = conn.dec.feed_with(&buf, |f| {
                        let _ = router.route(f);
                    }) {
                        out.dead = Some(e);
                        conn.open = false;
                    }
                    conn.dec.reset_decoded();
                }
            }
            out.ended = conn.dec.ended();
            if out.ended {
                conn.open = false;
            }
            out.batches = std::mem::take(&mut conn.router.batches);
            polls.push((conn.id.clone(), out));
        }
        self.conns.retain(|c| c.open);
        Ok(polls)
    }

    /// Open connections right now.
    #[must_use]
    pub fn open_conns(&self) -> usize {
        self.conns.len()
    }
}
