//! Per-session state: an incremental [`SummarySpine`], a rebound
//! [`EnvelopeMonitor`], and the eq.-9 admission verdict, all refreshed
//! on a deterministic event-count cadence.
//!
//! ## Determinism contract
//!
//! Every decision a session makes — when to refresh, what envelope the
//! monitor is rebound to, what the admission verdict is — depends only
//! on the *prefix of events seen so far*, never on how those events
//! were chunked across polls, sources, or shard threads. Feeding a
//! whole trace in one call is therefore byte-identical (snapshots and
//! all) to feeding it event by event: the batch path and the live path
//! are the same code, which is how `tests/determinism.rs` pins the
//! serve pipeline against the batch `SummarySpine`/`EnvelopeMonitor`
//! oracle.

use std::collections::VecDeque;

use wcm_core::{
    build::arrival_upper_with, sizing, EnvelopeMonitor, LowerWorkloadCurve, UpperWorkloadCurve,
    WorkloadBounds,
};
use wcm_curves::arrival::PeriodicJitter;
use wcm_events::summary::{Sides, SummarySpine};
use wcm_events::window::WindowMode;
use wcm_events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm_sim::OverflowPolicy;

use crate::config::ServeConfig;

/// The eq.-9 admission verdict of one session: can this stream join
/// PE2 at the configured frequency without overflowing the FIFO?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Not enough events yet for a dense envelope (fewer than `k_max`).
    Warming,
    /// `f_min ≤ f_PE2`: the stream fits.
    Admit {
        /// Minimum feasible PE2 frequency (eq. 9), Hz.
        f_min_hz: f64,
    },
    /// `f_min > f_PE2` (or no finite frequency suffices).
    Reject {
        /// Minimum feasible PE2 frequency, Hz; infinite when the
        /// instantaneous burst alone overflows the FIFO.
        f_min_hz: f64,
    },
}

impl Admission {
    /// Whether the verdict admits the stream.
    #[must_use]
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admit { .. })
    }
}

/// Outcome of routing one batch of demands into a session's bounded
/// ingest buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnqueueOutcome {
    /// Events accepted into the pending buffer.
    pub accepted: usize,
    /// Events dropped by the overflow policy.
    pub dropped: usize,
    /// The buffer is at/over capacity — under
    /// [`OverflowPolicy::Backpressure`] the source must stop feeding
    /// until the next apply drains it.
    pub full: bool,
}

/// All state the service keeps for one `(source, name)` stream.
#[derive(Debug)]
pub struct SessionState {
    spine: SummarySpine,
    monitor: Option<EnvelopeMonitor>,
    /// Sliding window of *consumed* timestamps for the empirical
    /// arrival curve (bounded by `cfg.times_window`). Timestamps pair
    /// with demands index-wise: time `i` belongs to event `i`, and is
    /// consumed into this window exactly when event `i` is applied —
    /// so every refresh sees the timestamps of the events applied so
    /// far, never a chunk-dependent superset.
    times: VecDeque<f64>,
    /// Timestamps received but not yet consumed (their events are
    /// still pending or in flight).
    times_in: VecDeque<f64>,
    /// Total timestamps consumed into the window.
    times_used: u64,
    /// Demands decoded but not yet applied (bounded by
    /// `cfg.session_buffer` + one frame under backpressure).
    pending: VecDeque<u64>,
    events: u64,
    since_refresh: u64,
    refreshes: u64,
    violations: u64,
    dropped: u64,
    admission: Admission,
    flips: u64,
    /// Refreshes that failed curve/sizing construction (should be 0).
    errors: u64,
    /// γᵘ(1) and γᵘ(k) of the last refresh, for snapshots.
    wcet: u64,
    gamma_k: u64,
    k_eff: usize,
}

impl SessionState {
    /// Fresh session under `cfg`.
    #[must_use]
    pub fn new(cfg: &ServeConfig) -> Self {
        let grid: Vec<usize> = (1..=cfg.k_max.max(1)).collect();
        Self {
            spine: SummarySpine::new(&grid, Sides::Both, cfg.chunk_target),
            monitor: None,
            times: VecDeque::new(),
            times_in: VecDeque::new(),
            times_used: 0,
            pending: VecDeque::new(),
            events: 0,
            since_refresh: 0,
            refreshes: 0,
            violations: 0,
            dropped: 0,
            admission: Admission::Warming,
            flips: 0,
            errors: 0,
            wcet: 0,
            gamma_k: 0,
            k_eff: 0,
        }
    }

    /// Route freshly decoded demands into the bounded pending buffer
    /// under the configured overflow policy.
    pub fn enqueue(&mut self, demands: &[u64], cfg: &ServeConfig) -> EnqueueOutcome {
        let cap = cfg.session_buffer.max(1);
        let mut out = EnqueueOutcome::default();
        match cfg.policy {
            OverflowPolicy::Backpressure => {
                // Whole frames are accepted (they were already decoded);
                // the buffer may transiently exceed `cap` by one frame,
                // and `full` tells the source to stop reading bytes.
                self.pending.extend(demands.iter().copied());
                out.accepted = demands.len();
            }
            OverflowPolicy::Reject => {
                let free = cap.saturating_sub(self.pending.len());
                let take = demands.len().min(free);
                self.pending.extend(demands[..take].iter().copied());
                out.accepted = take;
                out.dropped = demands.len() - take;
            }
            OverflowPolicy::DropByPriority => {
                self.pending.extend(demands.iter().copied());
                out.accepted = demands.len();
                while self.pending.len() > cap {
                    // Evict the smallest-demand pending event (lowest
                    // priority); earliest wins ties so eviction is
                    // deterministic.
                    let (idx, _) = self
                        .pending
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &d)| (d, i))
                        .expect("buffer over capacity is non-empty");
                    self.pending.remove(idx);
                    out.dropped += 1;
                    out.accepted -= 1;
                }
            }
        }
        self.dropped += out.dropped as u64;
        out.full = self.pending.len() >= cap;
        out
    }

    /// Record observed timestamps. They are staged, not used: each is
    /// consumed into the arrival window when its same-index demand is
    /// applied. A well-formed live stream writes a `TIMES` frame
    /// before (or with) the `DEMANDS` it stamps, so consumption never
    /// has to wait.
    pub fn record_times(&mut self, times: &[f64], cfg: &ServeConfig) {
        self.times_in.extend(times.iter().copied());
        // Degenerate streams (timestamps without demands) must not grow
        // without bound: force-consume the excess. This only fires when
        // the pairing contract is already broken.
        let cap = cfg
            .times_window
            .max(2)
            .saturating_mul(2)
            .saturating_add(cfg.session_buffer);
        if self.times_in.len() > cap {
            let over = self.times_in.len() - cap;
            self.consume_times(over, cfg);
        }
    }

    /// Move up to `n` staged timestamps into the sliding window.
    fn consume_times(&mut self, n: usize, cfg: &ServeConfig) {
        let window = cfg.times_window.max(2);
        for _ in 0..n.min(self.times_in.len()) {
            let t = self.times_in.pop_front().expect("bounded by len");
            self.times.push_back(t);
            self.times_used += 1;
            while self.times.len() > window {
                self.times.pop_front();
            }
        }
    }

    /// Apply every pending demand: extend the spine, feed the monitor,
    /// and run a refresh (fold + rebind + admission) at each
    /// `refresh_every`-event boundary. Returns new violations caused.
    pub fn apply_pending(&mut self, cfg: &ServeConfig) -> u64 {
        let mut fresh = 0u64;
        let every = cfg.refresh_every.max(1);
        let mut chunk: Vec<u64> = Vec::new();
        while !self.pending.is_empty() {
            let room = usize::try_from(every - self.since_refresh).unwrap_or(usize::MAX);
            let n = self.pending.len().min(room);
            chunk.clear();
            chunk.extend(self.pending.drain(..n));
            self.spine.extend_from_slice(&chunk);
            if let Some(m) = self.monitor.as_mut() {
                fresh += m.observe_all(chunk.iter().copied()) as u64;
            }
            self.events += n as u64;
            self.since_refresh += n as u64;
            // Consume the timestamps of exactly the events applied so
            // far (catching up if earlier times arrived late).
            let due = usize::try_from(self.events.saturating_sub(self.times_used))
                .unwrap_or(usize::MAX);
            self.consume_times(due, cfg);
            if self.since_refresh >= every {
                self.refresh(cfg);
                self.since_refresh = 0;
            }
        }
        self.violations += fresh;
        fresh
    }

    /// Fold the spine, rebind the monitor to the fresh envelope and
    /// recompute the eq.-9 admission verdict. Returns `true` when the
    /// verdict flipped (admit ↔ reject).
    pub fn refresh(&mut self, cfg: &ServeConfig) -> bool {
        let _span = wcm_obs::span("serve.refresh");
        self.refreshes += 1;
        let curve = self.spine.curve();
        let (Some(up), Some(lo)) = (curve.dense_max(), curve.dense_min()) else {
            return false; // warming: fewer than k_max events
        };
        let k_eff = up.len();
        let bounds = match (UpperWorkloadCurve::new(up), LowerWorkloadCurve::new(lo)) {
            (Ok(upper), Ok(lower)) => WorkloadBounds { upper, lower },
            _ => {
                self.errors += 1;
                return false;
            }
        };
        self.wcet = bounds.upper.value(1).get();
        self.gamma_k = bounds.upper.value(k_eff).get();
        self.k_eff = k_eff;
        if cfg.monitor {
            match self.monitor.as_mut() {
                Some(m) => {
                    if m.rebind_with_k_max(&bounds, k_eff).is_err() {
                        self.errors += 1;
                    }
                }
                None => match EnvelopeMonitor::new(&bounds, k_eff) {
                    Ok(m) => self.monitor = Some(m.with_fast_scan(cfg.fast_scan)),
                    Err(_) => self.errors += 1,
                },
            }
        }
        let verdict = self.decide(&bounds.upper, k_eff, cfg);
        let flipped = matches!(
            (self.admission, verdict),
            (Admission::Admit { .. }, Admission::Reject { .. })
                | (Admission::Reject { .. }, Admission::Admit { .. })
        );
        if flipped {
            self.flips += 1;
            wcm_obs::counter("serve.admission_flips", 1);
        }
        self.admission = verdict;
        flipped
    }

    /// Eq. 9 against the configured PE2: empirical arrival curve when
    /// the stream carries enough timestamps, the configured
    /// periodic-with-jitter model otherwise.
    fn decide(&mut self, gamma_u: &UpperWorkloadCurve, k_eff: usize, cfg: &ServeConfig) -> Admission {
        let alpha = if self.times.len() > k_eff {
            let times: Vec<f64> = self.times.iter().copied().collect();
            Self::empirical_alpha(&times, k_eff, cfg)
        } else {
            PeriodicJitter::new(cfg.period_s.max(f64::MIN_POSITIVE), cfg.jitter_s.max(0.0), 0.0)
                .and_then(|m| m.to_step_upper(cfg.period_s * (k_eff as f64 + 1.0)))
                .ok()
        };
        let Some(alpha) = alpha else {
            self.errors += 1;
            return Admission::Reject {
                f_min_hz: f64::INFINITY,
            };
        };
        match sizing::min_frequency_workload(&alpha, gamma_u, cfg.capacity_events) {
            Ok(f_min_hz) if f_min_hz <= cfg.frequency_hz => Admission::Admit { f_min_hz },
            Ok(f_min_hz) => Admission::Reject { f_min_hz },
            Err(_) => Admission::Reject {
                f_min_hz: f64::INFINITY,
            },
        }
    }

    fn empirical_alpha(
        times: &[f64],
        k_eff: usize,
        cfg: &ServeConfig,
    ) -> Option<wcm_curves::StepCurve> {
        let mut reg = TypeRegistry::new();
        let ty = reg
            .register("event", ExecutionInterval::fixed(Cycles(1)))
            .ok()?;
        let trace = TimedTrace::new(
            reg,
            times.iter().map(|&time| TimedEvent { time, ty }).collect(),
        )
        .ok()?;
        arrival_upper_with(&trace, k_eff, WindowMode::Exact, cfg.par).ok()
    }

    /// Events applied so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events decoded but not yet applied.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total monitor violations so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Events dropped by the overflow policy.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Admission flips so far.
    #[must_use]
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Current admission verdict.
    #[must_use]
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// The monitor, if one is bound yet.
    #[must_use]
    pub fn monitor(&self) -> Option<&EnvelopeMonitor> {
        self.monitor.as_ref()
    }

    /// One stable JSON object describing the session — the byte-level
    /// parity surface between the live and batch paths.
    #[must_use]
    pub fn snapshot_json(&self, name: &str) -> String {
        let (verdict, f_min) = match self.admission {
            Admission::Warming => ("warming", None),
            Admission::Admit { f_min_hz } => ("admit", Some(f_min_hz)),
            Admission::Reject { f_min_hz } => ("reject", Some(f_min_hz)),
        };
        let f_min = match f_min {
            Some(f) if f.is_finite() => format!("{f:.3}"),
            Some(_) => "null".to_string(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"session\":{name:?},\"events\":{events},\"k\":{k},",
                "\"refreshes\":{refreshes},\"wcet\":{wcet},\"gamma_u_k\":{gk},",
                "\"verdict\":\"{verdict}\",\"f_min_hz\":{fmin},",
                "\"violations\":{viol},\"dropped\":{dropped},\"flips\":{flips}}}"
            ),
            name = name,
            events = self.events,
            k = self.k_eff,
            refreshes = self.refreshes,
            wcet = self.wcet,
            gk = self.gamma_k,
            verdict = verdict,
            fmin = f_min,
            viol = self.violations,
            dropped = self.dropped,
            flips = self.flips,
        )
    }
}
