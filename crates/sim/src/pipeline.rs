//! The CBR → PE₁ → FIFO → PE₂ pipeline model (Fig. 5 of the paper).
//!
//! One transaction per macroblock:
//!
//! 1. compressed bits arrive at the constant channel rate; macroblock `i`
//!    is parseable once all its bits (cumulative prefix) have arrived;
//! 2. PE₁ decodes macroblocks in order (VLD+IQ, `pe1_cycles/F₁` seconds
//!    each) and pushes each into the FIFO as it finishes — these push
//!    timestamps are the paper's measured macroblock arrival process `ᾱ`;
//! 3. PE₂ pops in order (IDCT+MC, `pe2_cycles/F₂` each); a macroblock
//!    occupies its FIFO slot from push until PE₂ *finishes* it (the
//!    in-service transaction still holds its buffer).
//!
//! The FIFO is unbounded; the experiment checks a-posteriori whether the
//! observed maximum backlog stays within the provisioned capacity `b`, as
//! in Fig. 7.

use crate::engine::EventQueue;
use crate::stats::max_occupancy;
use crate::SimError;
use wcm_mpeg::ClipWorkload;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Channel rate in bits per second.
    pub bitrate_bps: f64,
    /// PE₁ clock in Hz.
    pub pe1_hz: f64,
    /// PE₂ clock in Hz.
    pub pe2_hz: f64,
}

/// Result of one pipeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Time each macroblock entered the FIFO (PE₁ completion, or the later
    /// un-blocking instant under backpressure), seconds.
    pub fifo_in_times: Vec<f64>,
    /// Time each macroblock left the FIFO (PE₂ completion), seconds.
    pub fifo_out_times: Vec<f64>,
    /// Maximum FIFO occupancy in macroblocks (including the one in
    /// service at PE₂).
    pub max_backlog: u64,
    /// Total PE₁ busy time, seconds.
    pub pe1_busy: f64,
    /// Total PE₂ busy time, seconds.
    pub pe2_busy: f64,
    /// Time PE₁ spent blocked on a full FIFO (0 without backpressure).
    pub pe1_stalled: f64,
    /// Completion time of the last macroblock.
    pub makespan: f64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// All bits of macroblock `i` have arrived from the channel.
    BitsReady(usize),
    /// PE₁ finished macroblock `i`.
    Pe1Done(usize),
    /// PE₂ finished macroblock `i`.
    Pe2Done(usize),
}

/// Simulates the clip through the pipeline with an unbounded FIFO
/// (the paper's measurement setup: capacity is checked a posteriori).
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for non-positive rates and
/// [`SimError::EmptyWorkload`] for a clip without macroblocks.
pub fn simulate_pipeline(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, SimError> {
    simulate_with_capacity(clip, cfg, None)
}

/// Simulates the clip with a *bounded* FIFO of `capacity` macroblocks and
/// blocking-write backpressure: PE₁ stalls when the FIFO (including the
/// macroblock in service at PE₂) is full, resuming as PE₂ frees slots.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] if `capacity` is 0 or the rates
/// are invalid, [`SimError::EmptyWorkload`] for an empty clip.
pub fn simulate_pipeline_bounded(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    capacity: u64,
) -> Result<PipelineResult, SimError> {
    if capacity == 0 {
        return Err(SimError::InvalidParameter { name: "capacity" });
    }
    simulate_with_capacity(clip, cfg, Some(capacity))
}

/// How compressed bits reach PE₁.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceModel {
    /// Continuous constant-bit-rate channel at `PipelineConfig::bitrate_bps`
    /// — the paper's setup and the default of [`simulate_pipeline`].
    Cbr,
    /// Frame-burst delivery (VBR-style transport): each picture's bits
    /// become available starting at its release instant (one frame period
    /// apart) and stream in at `peak_bps` — idle gaps between pictures
    /// instead of a smooth channel.
    FrameBurst {
        /// Peak delivery rate within a burst, bits per second.
        peak_bps: f64,
    },
}

/// [`simulate_pipeline`] with an explicit [`SourceModel`].
///
/// # Errors
///
/// Same conditions as [`simulate_pipeline`], plus
/// [`SimError::InvalidParameter`] for a non-positive `peak_bps`.
pub fn simulate_pipeline_with_source(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    source: SourceModel,
) -> Result<PipelineResult, SimError> {
    if let SourceModel::FrameBurst { peak_bps } = source {
        if !(peak_bps.is_finite() && peak_bps > 0.0) {
            return Err(SimError::InvalidParameter { name: "peak_bps" });
        }
    }
    simulate_full(clip, cfg, None, source)
}

fn simulate_with_capacity(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    capacity: Option<u64>,
) -> Result<PipelineResult, SimError> {
    simulate_full(clip, cfg, capacity, SourceModel::Cbr)
}

fn simulate_full(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    capacity: Option<u64>,
    source: SourceModel,
) -> Result<PipelineResult, SimError> {
    if !(cfg.bitrate_bps.is_finite() && cfg.bitrate_bps > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "bitrate_bps",
        });
    }
    if !(cfg.pe1_hz.is_finite() && cfg.pe1_hz > 0.0) {
        return Err(SimError::InvalidParameter { name: "pe1_hz" });
    }
    if !(cfg.pe2_hz.is_finite() && cfg.pe2_hz > 0.0) {
        return Err(SimError::InvalidParameter { name: "pe2_hz" });
    }
    let bits = clip.mb_bits();
    let pe1_cycles = clip.pe1_demands();
    let pe2_cycles = clip.pe2_demands();
    let n = bits.len();
    if n == 0 {
        return Err(SimError::EmptyWorkload);
    }

    let mut queue: EventQueue<Event> = EventQueue::new();
    match source {
        SourceModel::Cbr => {
            // Bits arrive continuously; MB i is complete at cum_bits/rate.
            let mut cum = 0.0f64;
            for (i, &b) in bits.iter().enumerate() {
                cum += b as f64;
                queue.push(cum / cfg.bitrate_bps, Event::BitsReady(i));
            }
        }
        SourceModel::FrameBurst { peak_bps } => {
            // Each picture's bits stream in at the peak rate from its
            // release instant (or the end of the previous burst, whichever
            // is later).
            let period = clip.params().frame_period();
            let mut i = 0usize;
            let mut channel_free = 0.0f64;
            for (f, frame) in clip.frames().iter().enumerate() {
                let mut t = channel_free.max(f as f64 * period);
                for mb in frame.macroblocks() {
                    t += f64::from(mb.bits.max(1)) / peak_bps;
                    queue.push(t, Event::BitsReady(i));
                    i += 1;
                }
                channel_free = t;
            }
        }
    }

    let mut available = vec![false; n];
    let mut next_pe1 = 0usize; // next MB index PE1 will start
    let mut pe1_idle = true;
    // A finished macroblock PE1 could not push (full FIFO) and its finish
    // time: PE1 is stalled while this is occupied.
    let mut pe1_held: Option<(usize, f64)> = None;
    let mut fifo: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut pe2_busy_now = false;
    let mut fifo_in = vec![0.0f64; n];
    let mut fifo_out = vec![0.0f64; n];
    let mut pe1_busy = 0.0f64;
    let mut pe2_busy = 0.0f64;
    let mut pe1_stalled = 0.0f64;
    let mut makespan = 0.0f64;

    while let Some((now, ev)) = queue.pop() {
        // Resident macroblocks: queued plus the one in service at PE2.
        let resident = |fifo: &std::collections::VecDeque<usize>, pe2_busy_now: bool| {
            fifo.len() as u64 + u64::from(pe2_busy_now)
        };
        match ev {
            Event::BitsReady(i) => {
                available[i] = true;
                if pe1_idle && pe1_held.is_none() && i == next_pe1 {
                    pe1_idle = false;
                    let dt = pe1_cycles[i] as f64 / cfg.pe1_hz;
                    pe1_busy += dt;
                    queue.push(now + dt, Event::Pe1Done(i));
                }
            }
            Event::Pe1Done(i) => {
                next_pe1 = i + 1;
                if capacity.is_some_and(|c| resident(&fifo, pe2_busy_now) >= c) {
                    // Backpressure: hold the macroblock; PE1 stalls.
                    pe1_held = Some((i, now));
                    pe1_idle = true;
                } else {
                    fifo_in[i] = now;
                    fifo.push_back(i);
                    if next_pe1 < n && available[next_pe1] {
                        let dt = pe1_cycles[next_pe1] as f64 / cfg.pe1_hz;
                        pe1_busy += dt;
                        queue.push(now + dt, Event::Pe1Done(next_pe1));
                    } else {
                        pe1_idle = true;
                    }
                    if !pe2_busy_now {
                        let j = fifo.pop_front().expect("just pushed");
                        pe2_busy_now = true;
                        let dt = pe2_cycles[j] as f64 / cfg.pe2_hz;
                        pe2_busy += dt;
                        queue.push(now + dt, Event::Pe2Done(j));
                    }
                }
            }
            Event::Pe2Done(i) => {
                fifo_out[i] = now;
                makespan = makespan.max(now);
                pe2_busy_now = false;
                // A freed slot first admits the held macroblock, if any.
                if let Some((h, since)) = pe1_held.take() {
                    pe1_stalled += now - since;
                    fifo_in[h] = now;
                    fifo.push_back(h);
                    // PE1 resumes with the next macroblock.
                    if next_pe1 < n && available[next_pe1] {
                        pe1_idle = false;
                        let dt = pe1_cycles[next_pe1] as f64 / cfg.pe1_hz;
                        pe1_busy += dt;
                        queue.push(now + dt, Event::Pe1Done(next_pe1));
                    }
                }
                if let Some(j) = fifo.pop_front() {
                    pe2_busy_now = true;
                    let dt = pe2_cycles[j] as f64 / cfg.pe2_hz;
                    pe2_busy += dt;
                    queue.push(now + dt, Event::Pe2Done(j));
                }
            }
        }
    }

    let max_backlog = max_occupancy(&fifo_in, &fifo_out);
    Ok(PipelineResult {
        fifo_in_times: fifo_in,
        fifo_out_times: fifo_out,
        max_backlog,
        pe1_busy,
        pe2_busy,
        pe1_stalled,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_mpeg::demand::{Pe1Model, Pe2Model};
    use wcm_mpeg::mb::{Macroblock, MacroblockClass};
    use wcm_mpeg::params::{FrameKind, GopStructure, VideoParams};
    use wcm_mpeg::workload::FrameWorkload;

    /// A hand-sized workload: `n` identical intra macroblocks of 100 bits.
    fn tiny_clip(n: usize) -> ClipWorkload {
        let params =
            VideoParams::new(16, 16, 25.0, 1.0e4, GopStructure::new(1, 1).unwrap()).unwrap();
        let mbs: Vec<Macroblock> = (0..n)
            .map(|_| Macroblock {
                frame: FrameKind::I,
                class: MacroblockClass::Intra { coded_blocks: 2 },
                bits: 100,
            })
            .collect();
        let frames = vec![FrameWorkload::new(FrameKind::I, mbs)];
        ClipWorkload::new(
            "tiny".into(),
            params,
            Pe1Model {
                base: 0,
                cycles_per_bit: 1.0,
                iq_per_block: 0,
            },
            Pe2Model {
                base: 1000,
                idct_per_block: 0,
                mc_single: 0,
                mc_single_field: 0,
                mc_bidirectional: 0,
                mc_bidirectional_field: 0,
                skip_copy: 0,
            },
            frames,
        )
    }

    #[test]
    fn hand_computed_timeline() {
        // 3 MBs × 100 bits at 100 bit/s → bits ready at 1, 2, 3 s.
        // PE1: 100 cycles at 100 Hz → 1 s per MB, but always waits for
        // bits: finishes at 2, 3, 4 s.
        // PE2: 1000 cycles at 1000 Hz → 1 s per MB: finishes at 3, 4, 5 s.
        let clip = tiny_clip(3);
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 100.0,
                pe1_hz: 100.0,
                pe2_hz: 1000.0,
            },
        )
        .unwrap();
        let expect_in = [2.0, 3.0, 4.0];
        let expect_out = [3.0, 4.0, 5.0];
        for i in 0..3 {
            assert!((r.fifo_in_times[i] - expect_in[i]).abs() < 1e-9, "in {i}");
            assert!(
                (r.fifo_out_times[i] - expect_out[i]).abs() < 1e-9,
                "out {i}"
            );
        }
        assert_eq!(r.max_backlog, 1);
        assert!((r.makespan - 5.0).abs() < 1e-9);
        assert!((r.pe1_busy - 3.0).abs() < 1e-9);
        assert!((r.pe2_busy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn slow_pe2_accumulates_backlog() {
        // PE2 at 250 Hz → 4 s per MB while PE1 emits one per second.
        let clip = tiny_clip(5);
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 100.0,
                pe1_hz: 100.0,
                pe2_hz: 250.0,
            },
        )
        .unwrap();
        assert!(r.max_backlog >= 3, "backlog {}", r.max_backlog);
        // FIFO discipline: out times strictly increasing.
        for w in r.fifo_out_times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn fast_pe2_keeps_backlog_at_one() {
        let clip = tiny_clip(10);
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 100.0,
                pe1_hz: 100.0,
                pe2_hz: 1.0e6,
            },
        )
        .unwrap();
        assert_eq!(r.max_backlog, 1);
    }

    #[test]
    fn conservation_and_ordering_on_synthetic_clip() {
        let params = VideoParams::new(
            160,
            128,
            25.0,
            1.0e6,
            GopStructure::broadcast(),
        )
        .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[4], 1)
            .unwrap();
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 1.0e6,
                pe1_hz: 20.0e6,
                pe2_hz: 50.0e6,
            },
        )
        .unwrap();
        let n = clip.macroblock_count();
        assert_eq!(r.fifo_in_times.len(), n);
        assert_eq!(r.fifo_out_times.len(), n);
        for i in 0..n {
            assert!(r.fifo_out_times[i] >= r.fifo_in_times[i]);
        }
        for w in r.fifo_in_times.windows(2) {
            assert!(w[1] >= w[0], "PE1 output must be in order");
        }
        // Work conservation: busy times equal total demand / frequency.
        let pe2_total: u64 = clip.pe2_demands().iter().sum();
        assert!((r.pe2_busy - pe2_total as f64 / 50.0e6).abs() < 1e-9);
    }

    #[test]
    fn higher_pe2_clock_reduces_backlog() {
        let params = VideoParams::new(
            160,
            128,
            25.0,
            1.0e6,
            GopStructure::broadcast(),
        )
        .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[10], 1)
            .unwrap();
        let base = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 10.0e6,
        };
        let slow = simulate_pipeline(&clip, &base).unwrap();
        let fast = simulate_pipeline(
            &clip,
            &PipelineConfig {
                pe2_hz: 100.0e6,
                ..base
            },
        )
        .unwrap();
        assert!(fast.max_backlog <= slow.max_backlog);
    }

    #[test]
    fn frame_burst_source_is_burstier_than_cbr() {
        // Same clip, same long-run bits: the frame-burst source delivers
        // each picture fast then idles, so PE1's input is available earlier
        // within each frame and the FIFO sees sharper bursts.
        let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast())
            .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[12], 1)
            .unwrap();
        let cfg = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 30.0e6,
        };
        let cbr = simulate_pipeline(&clip, &cfg).unwrap();
        let burst = simulate_pipeline_with_source(
            &clip,
            &cfg,
            SourceModel::FrameBurst { peak_bps: 4.0e6 },
        )
        .unwrap();
        assert!(burst.max_backlog >= cbr.max_backlog);
        // Conservation still holds.
        assert_eq!(burst.fifo_out_times.len(), clip.macroblock_count());
        for w in burst.fifo_in_times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn frame_burst_validates_peak() {
        let clip = tiny_clip(2);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 100.0,
        };
        assert!(simulate_pipeline_with_source(
            &clip,
            &cfg,
            SourceModel::FrameBurst { peak_bps: 0.0 }
        )
        .is_err());
    }

    #[test]
    fn cbr_source_model_matches_default() {
        let clip = tiny_clip(6);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 500.0,
        };
        let a = simulate_pipeline(&clip, &cfg).unwrap();
        let b = simulate_pipeline_with_source(&clip, &cfg, SourceModel::Cbr).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backpressure_caps_occupancy() {
        // PE2 4× slower than PE1's output: unbounded backlog grows, the
        // bounded run must stay within capacity.
        let clip = tiny_clip(12);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let unbounded = simulate_pipeline(&clip, &cfg).unwrap();
        assert!(unbounded.max_backlog > 2);
        assert_eq!(unbounded.pe1_stalled, 0.0);
        let bounded = simulate_pipeline_bounded(&clip, &cfg, 2).unwrap();
        assert!(bounded.max_backlog <= 2);
        assert!(bounded.pe1_stalled > 0.0, "PE1 must have stalled");
        // Work conservation: every macroblock still processed, in order.
        for w in bounded.fifo_out_times.windows(2) {
            assert!(w[1] > w[0]);
        }
        // PE2 does the same total work either way.
        assert!((bounded.pe2_busy - unbounded.pe2_busy).abs() < 1e-9);
    }

    #[test]
    fn large_capacity_matches_unbounded() {
        let clip = tiny_clip(10);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let unbounded = simulate_pipeline(&clip, &cfg).unwrap();
        let bounded =
            simulate_pipeline_bounded(&clip, &cfg, unbounded.max_backlog).unwrap();
        assert_eq!(bounded, unbounded);
    }

    #[test]
    fn bounded_rejects_zero_capacity() {
        let clip = tiny_clip(1);
        let cfg = PipelineConfig {
            bitrate_bps: 1.0,
            pe1_hz: 1.0,
            pe2_hz: 1.0,
        };
        assert!(simulate_pipeline_bounded(&clip, &cfg, 0).is_err());
    }

    #[test]
    fn validates_config() {
        let clip = tiny_clip(1);
        let ok = PipelineConfig {
            bitrate_bps: 1.0,
            pe1_hz: 1.0,
            pe2_hz: 1.0,
        };
        assert!(simulate_pipeline(&clip, &PipelineConfig { bitrate_bps: 0.0, ..ok }).is_err());
        assert!(simulate_pipeline(&clip, &PipelineConfig { pe1_hz: -1.0, ..ok }).is_err());
        assert!(simulate_pipeline(&clip, &PipelineConfig { pe2_hz: f64::NAN, ..ok }).is_err());
    }
}
