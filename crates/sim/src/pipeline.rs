//! The CBR → PE₁ → FIFO → PE₂ pipeline model (Fig. 5 of the paper).
//!
//! One transaction per macroblock:
//!
//! 1. compressed bits arrive at the constant channel rate; macroblock `i`
//!    is parseable once all its bits (cumulative prefix) have arrived;
//! 2. PE₁ decodes macroblocks in order (VLD+IQ, `pe1_cycles/F₁` seconds
//!    each) and pushes each into the FIFO as it finishes — these push
//!    timestamps are the paper's measured macroblock arrival process `ᾱ`;
//! 3. PE₂ pops in order (IDCT+MC, `pe2_cycles/F₂` each); a macroblock
//!    occupies its FIFO slot from push until PE₂ *finishes* it (the
//!    in-service transaction still holds its buffer).
//!
//! The FIFO can run unbounded (the paper's measurement setup, capacity
//! checked a posteriori as in Fig. 7) or bounded with an explicit
//! [`OverflowPolicy`] so overload degrades gracefully: blocking-write
//! backpressure, rejection of the incoming macroblock, or priority
//! dropping that sacrifices B-frame macroblocks before P before I.
//!
//! [`simulate_pipeline_robust`] additionally threads a seeded
//! [`FaultPlan`] through the stream and can feed every macroblock PE₂
//! consumes into an online [`EnvelopeMonitor`], turning the a-posteriori
//! backlog check into a live verdict against `γᵘ/γˡ`.
//!
//! # Hot path
//!
//! The event loop does not use a binary heap. At any instant at most one
//! `Pe1Done` and one `Pe2Done` event are outstanding, and every `BitsReady`
//! time is known up front, so the next event is the minimum of a sorted
//! arrival arena cursor and two slots — O(1) per event, no per-event
//! allocation. Tie-breaking replicates the former heap's `(time, seq)`
//! order exactly: arrivals were pushed first (seq `0..n`, so a stable sort
//! by time preserves their index order and ranks them before same-time PE
//! completions), and PE completions take increasing sequence numbers at
//! schedule time. [`SimScratch`] makes all per-run buffers reusable so a
//! design-space sweep can evaluate thousands of points without touching
//! the allocator; [`simulate_faulted`] is the scratch-aware entry point
//! over a shared, read-only [`FaultedWorkload`].

use crate::faults::{FaultPlan, FaultReport, FaultedWorkload};
use crate::SimError;
use std::collections::VecDeque;
use wcm_core::monitor::EnvelopeMonitor;
use wcm_mpeg::params::FrameKind;
use wcm_mpeg::ClipWorkload;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Channel rate in bits per second.
    pub bitrate_bps: f64,
    /// PE₁ clock in Hz.
    pub pe1_hz: f64,
    /// PE₂ clock in Hz.
    pub pe2_hz: f64,
}

/// What a bounded FIFO does when a push would exceed its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Blocking write: PE₁ stalls until PE₂ frees a slot (lossless).
    #[default]
    Backpressure,
    /// The incoming macroblock is discarded; PE₁ keeps decoding.
    Reject,
    /// The lowest-priority macroblock among the queued ones and the
    /// incoming one is discarded — B-frame macroblocks before P before I,
    /// newest first within a priority class. The macroblock in service at
    /// PE₂ is never dropped.
    DropByPriority,
}

/// FIFO sizing and overflow behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FifoConfig {
    /// Capacity in macroblocks, counting the one in service at PE₂;
    /// `None` = unbounded (the overflow policy is then irrelevant).
    pub capacity: Option<u64>,
    /// Behavior when a push finds the FIFO full.
    pub policy: OverflowPolicy,
}

impl FifoConfig {
    /// An unbounded FIFO (the paper's measurement setup).
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A bounded FIFO with the given policy.
    #[must_use]
    pub fn bounded(capacity: u64, policy: OverflowPolicy) -> Self {
        Self {
            capacity: Some(capacity),
            policy,
        }
    }
}

/// MPEG drop priority: B is most expendable, I least (reference frames).
fn frame_priority(kind: FrameKind) -> u8 {
    match kind {
        FrameKind::B => 0,
        FrameKind::P => 1,
        FrameKind::I => 2,
    }
}

/// Result of one pipeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Time each macroblock entered the FIFO (PE₁ completion, or the later
    /// un-blocking instant under backpressure), seconds. A dropped
    /// macroblock carries its drop instant.
    pub fifo_in_times: Vec<f64>,
    /// Time each macroblock left the FIFO (PE₂ completion, or the drop
    /// instant for discarded macroblocks), seconds.
    pub fifo_out_times: Vec<f64>,
    /// Maximum FIFO occupancy in macroblocks (including the one in
    /// service at PE₂).
    pub max_backlog: u64,
    /// Total PE₁ busy time, seconds.
    pub pe1_busy: f64,
    /// Total PE₂ busy time, seconds.
    pub pe2_busy: f64,
    /// Time PE₁ spent blocked on a full FIFO (0 without backpressure).
    pub pe1_stalled: f64,
    /// Completion time of the last macroblock PE₂ processed.
    pub makespan: f64,
    /// Stream indices of macroblocks discarded by `Reject` /
    /// `DropByPriority` (empty for lossless runs), in drop order.
    pub dropped: Vec<usize>,
}

/// Result of [`simulate_pipeline_robust`]: the pipeline outcome plus what
/// the fault plan did to the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustPipelineResult {
    /// The simulation outcome over the (possibly faulted) stream.
    pub pipeline: PipelineResult,
    /// Injection counters (all zero without a fault plan).
    pub faults: FaultReport,
    /// Length of the stream actually simulated (drops/duplications change
    /// it relative to `clip.macroblock_count()`).
    pub stream_len: usize,
}

/// Reusable per-run buffers for the pipeline simulator. A sweep worker
/// creates one and passes it to [`simulate_faulted`] for every point it
/// evaluates: after the first run no allocation happens (buffers are
/// cleared, not freed), and workers share no state.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// `(bits-ready time, stream index)`, sorted by `(time, index)`.
    ready: Vec<(f64, usize)>,
    available: Vec<bool>,
    fifo: VecDeque<usize>,
    fifo_in: Vec<f64>,
    fifo_out: Vec<f64>,
    dropped: Vec<usize>,
}

impl SimScratch {
    /// Empty scratch; buffers grow on first use and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.ready.clear();
        self.ready.reserve(n);
        self.available.clear();
        self.available.resize(n, false);
        self.fifo.clear();
        self.fifo_in.clear();
        self.fifo_in.resize(n, 0.0);
        self.fifo_out.clear();
        self.fifo_out.resize(n, 0.0);
        self.dropped.clear();
    }
}

/// Allocation-free digest of one pipeline run — what a design-space sweep
/// needs from a point without materializing per-macroblock time vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSummary {
    /// Maximum FIFO occupancy in macroblocks (including the one in service).
    pub max_backlog: u64,
    /// Whether any push found the FIFO full (a backpressure stall or a
    /// drop, depending on the policy). Always `false` for an unbounded run.
    pub overflowed: bool,
    /// Number of macroblocks discarded by `Reject`/`DropByPriority`.
    pub dropped: usize,
    /// Time PE₁ spent blocked on a full FIFO (0 without backpressure).
    pub pe1_stalled: f64,
    /// Total PE₂ busy time, seconds.
    pub pe2_busy: f64,
    /// Completion time of the last macroblock PE₂ processed.
    pub makespan: f64,
}

/// Simulates the clip through the pipeline with an unbounded FIFO
/// (the paper's measurement setup: capacity is checked a posteriori).
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for non-positive rates and
/// [`SimError::EmptyWorkload`] for a clip without macroblocks.
pub fn simulate_pipeline(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, SimError> {
    let w = FaultedWorkload::clean(clip)?;
    run_full(
        &w,
        cfg,
        &FifoConfig::unbounded(),
        SourceModel::Cbr,
        clip.params().frame_period(),
        None,
    )
}

/// Simulates the clip with a *bounded* FIFO of `capacity` macroblocks and
/// blocking-write backpressure: PE₁ stalls when the FIFO (including the
/// macroblock in service at PE₂) is full, resuming as PE₂ frees slots.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] if `capacity` is 0 or the rates
/// are invalid, [`SimError::EmptyWorkload`] for an empty clip.
pub fn simulate_pipeline_bounded(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    capacity: u64,
) -> Result<PipelineResult, SimError> {
    let fifo = FifoConfig::bounded(capacity, OverflowPolicy::Backpressure);
    validate_fifo(&fifo)?;
    let w = FaultedWorkload::clean(clip)?;
    run_full(
        &w,
        cfg,
        &fifo,
        SourceModel::Cbr,
        clip.params().frame_period(),
        None,
    )
}

/// How compressed bits reach PE₁.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceModel {
    /// Continuous constant-bit-rate channel at `PipelineConfig::bitrate_bps`
    /// — the paper's setup and the default of [`simulate_pipeline`].
    Cbr,
    /// Frame-burst delivery (VBR-style transport): each picture's bits
    /// become available starting at its release instant (one frame period
    /// apart) and stream in at `peak_bps` — idle gaps between pictures
    /// instead of a smooth channel.
    FrameBurst {
        /// Peak delivery rate within a burst, bits per second.
        peak_bps: f64,
    },
}

/// [`simulate_pipeline`] with an explicit [`SourceModel`].
///
/// # Errors
///
/// Same conditions as [`simulate_pipeline`], plus
/// [`SimError::InvalidParameter`] for a non-positive `peak_bps`.
pub fn simulate_pipeline_with_source(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    source: SourceModel,
) -> Result<PipelineResult, SimError> {
    validate_source(&source)?;
    let w = FaultedWorkload::clean(clip)?;
    run_full(
        &w,
        cfg,
        &FifoConfig::unbounded(),
        source,
        clip.params().frame_period(),
        None,
    )
}

/// The full-control entry point: seeded fault injection, bounded FIFO with
/// an explicit overflow policy, and optional online envelope monitoring of
/// the demand stream PE₂ consumes.
///
/// With `plan` absent (or a clean plan), `FifoConfig::unbounded()` and no
/// monitor, the [`PipelineResult`] is bit-identical to
/// [`simulate_pipeline`]'s — the robust path costs nothing on the clean
/// path (regression-tested).
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for invalid rates, a zero
/// capacity or a non-positive `peak_bps`; [`SimError::EmptyWorkload`] for
/// an empty clip; [`SimError::InvalidInjector`] /
/// [`SimError::AllEventsDropped`] from the fault plan.
pub fn simulate_pipeline_robust(
    clip: &ClipWorkload,
    cfg: &PipelineConfig,
    fifo: &FifoConfig,
    source: SourceModel,
    plan: Option<&FaultPlan>,
    monitor: Option<&mut EnvelopeMonitor>,
) -> Result<RobustPipelineResult, SimError> {
    validate_fifo(fifo)?;
    validate_source(&source)?;
    let w = match plan {
        Some(p) => p.apply(clip)?,
        None => FaultedWorkload::clean(clip)?,
    };
    let faults = w.report;
    let stream_len = w.len();
    let pipeline = run_full(
        &w,
        cfg,
        fifo,
        source,
        clip.params().frame_period(),
        monitor,
    )?;
    Ok(RobustPipelineResult {
        pipeline,
        faults,
        stream_len,
    })
}

/// The sweep-facing entry point: simulates a pre-built (possibly faulted)
/// stream with reusable scratch buffers and returns only the
/// [`PipelineSummary`] — no per-macroblock vectors, no allocation after the
/// scratch has warmed up. The `FaultedWorkload` is read-only and can be
/// shared across workers; `frame_period` is the clip's picture period
/// (`ClipWorkload::params().frame_period()`), used by the
/// [`SourceModel::FrameBurst`] release schedule.
///
/// # Errors
///
/// Same conditions as [`simulate_pipeline_robust`].
pub fn simulate_faulted(
    w: &FaultedWorkload,
    cfg: &PipelineConfig,
    fifo: &FifoConfig,
    source: SourceModel,
    frame_period: f64,
    monitor: Option<&mut EnvelopeMonitor>,
    scratch: &mut SimScratch,
) -> Result<PipelineSummary, SimError> {
    validate_fifo(fifo)?;
    validate_source(&source)?;
    let out = simulate_core(w, cfg, fifo, source, frame_period, monitor, scratch)?;
    Ok(PipelineSummary {
        max_backlog: out.max_backlog,
        overflowed: out.overflowed,
        dropped: scratch.dropped.len(),
        pe1_stalled: out.pe1_stalled,
        pe2_busy: out.pe2_busy,
        makespan: out.makespan,
    })
}

/// Runs the core with a one-shot scratch and materializes the full
/// [`PipelineResult`].
fn run_full(
    w: &FaultedWorkload,
    cfg: &PipelineConfig,
    fifo_cfg: &FifoConfig,
    source: SourceModel,
    frame_period: f64,
    monitor: Option<&mut EnvelopeMonitor>,
) -> Result<PipelineResult, SimError> {
    let mut scratch = SimScratch::new();
    let out = simulate_core(w, cfg, fifo_cfg, source, frame_period, monitor, &mut scratch)?;
    Ok(PipelineResult {
        fifo_in_times: std::mem::take(&mut scratch.fifo_in),
        fifo_out_times: std::mem::take(&mut scratch.fifo_out),
        max_backlog: out.max_backlog,
        pe1_busy: out.pe1_busy,
        pe2_busy: out.pe2_busy,
        pe1_stalled: out.pe1_stalled,
        makespan: out.makespan,
        dropped: std::mem::take(&mut scratch.dropped),
    })
}

fn validate_fifo(fifo: &FifoConfig) -> Result<(), SimError> {
    if fifo.capacity == Some(0) {
        return Err(SimError::InvalidParameter { name: "capacity" });
    }
    Ok(())
}

fn validate_source(source: &SourceModel) -> Result<(), SimError> {
    if let SourceModel::FrameBurst { peak_bps } = source {
        if !(peak_bps.is_finite() && *peak_bps > 0.0) {
            return Err(SimError::InvalidParameter { name: "peak_bps" });
        }
    }
    Ok(())
}

/// Small Copy digest the core hands back; vectors live in the scratch.
#[derive(Debug, Clone, Copy)]
struct CoreOut {
    max_backlog: u64,
    overflowed: bool,
    pe1_busy: f64,
    pe2_busy: f64,
    pe1_stalled: f64,
    makespan: f64,
}

/// Which of the three event sources fires next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Next {
    Bits,
    Pe1,
    Pe2,
}

/// `(time, seq)` strictly before the current best? Uses `total_cmp` like
/// the former heap, so ordering is total even at the representation level.
#[inline]
fn beats(t: f64, s: u64, best_t: f64, best_s: u64) -> bool {
    match t.total_cmp(&best_t) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => s < best_s,
        std::cmp::Ordering::Greater => false,
    }
}

/// Rejects the non-finite event times that injected faults or degenerate
/// configs could produce — same contract the old `EventQueue::push` had.
#[inline]
fn finite(time: f64) -> Result<f64, SimError> {
    if time.is_finite() {
        Ok(time)
    } else {
        Err(SimError::NonFiniteTime { time })
    }
}

fn simulate_core(
    w: &FaultedWorkload,
    cfg: &PipelineConfig,
    fifo_cfg: &FifoConfig,
    source: SourceModel,
    frame_period: f64,
    mut monitor: Option<&mut EnvelopeMonitor>,
    scratch: &mut SimScratch,
) -> Result<CoreOut, SimError> {
    let _span = wcm_obs::span("sim.run");
    if !(cfg.bitrate_bps.is_finite() && cfg.bitrate_bps > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "bitrate_bps",
        });
    }
    if !(cfg.pe1_hz.is_finite() && cfg.pe1_hz > 0.0) {
        return Err(SimError::InvalidParameter { name: "pe1_hz" });
    }
    if !(cfg.pe2_hz.is_finite() && cfg.pe2_hz > 0.0) {
        return Err(SimError::InvalidParameter { name: "pe2_hz" });
    }
    let n = w.len();
    if n == 0 {
        return Err(SimError::EmptyWorkload);
    }
    let capacity = fifo_cfg.capacity;
    let policy = fifo_cfg.policy;
    scratch.reset(n);

    match source {
        SourceModel::Cbr => {
            // Bits arrive continuously; MB i is complete at cum_bits/rate,
            // shifted by any injected transport jitter. `x + 0.0 == x`
            // exactly, so a clean stream reproduces the unfaulted times
            // bit-for-bit.
            let mut cum = 0.0f64;
            for i in 0..n {
                cum += w.bits[i] as f64;
                let t = finite(cum / cfg.bitrate_bps + w.arrival_delay_s[i])?;
                scratch.ready.push((t, i));
            }
        }
        SourceModel::FrameBurst { peak_bps } => {
            // Each picture's bits stream in at the peak rate from its
            // release instant (or the end of the previous burst, whichever
            // is later). Faulted streams keep their original frame index,
            // so drops/duplications don't shift later pictures' releases.
            let mut channel_free = 0.0f64;
            let mut current_frame = usize::MAX;
            let mut t = 0.0f64;
            for i in 0..n {
                if w.frame_of[i] != current_frame {
                    current_frame = w.frame_of[i];
                    t = channel_free.max(current_frame as f64 * frame_period);
                }
                t += w.bits[i].max(1) as f64 / peak_bps;
                scratch.ready.push((finite(t + w.arrival_delay_s[i])?, i));
                channel_free = t;
            }
        }
    }
    // Clean streams are already time-sorted; injected jitter may reorder.
    // A *stable* sort by time preserves the index order of ties, which is
    // exactly the former heap's ordering of the seq-`0..n` arrival events.
    if scratch
        .ready
        .windows(2)
        .any(|p| p[1].0.total_cmp(&p[0].0).is_lt())
    {
        scratch.ready.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    // PE service times including injected clock drift (multiplicative) and
    // stalls (additive); both neutral elements are exact in IEEE-754, so
    // the clean path is unchanged bit-for-bit.
    let pe1_time = |i: usize| (w.pe1_cycles[i] as f64 / cfg.pe1_hz) * w.pe1_scale[i] + w.pe1_extra_s[i];
    let pe2_time = |i: usize| (w.pe2_cycles[i] as f64 / cfg.pe2_hz) * w.pe2_scale[i] + w.pe2_extra_s[i];

    let mut next_pe1 = 0usize; // next MB index PE1 will start
    let mut pe1_idle = true;
    // A finished macroblock PE1 could not push (full FIFO) and its finish
    // time: PE1 is stalled while this is occupied (Backpressure only).
    let mut pe1_held: Option<(usize, f64)> = None;
    let mut pe2_busy_now = false;
    let mut cursor = 0usize;
    // Pending PE completions: `(time, seq, mb)`. The former heap assigned
    // seq `0..n` to the arrival events and then incremented per push, so PE
    // completions start at `n` and same-time arrivals always fire first.
    let mut pe1_slot: Option<(f64, u64, usize)> = None;
    let mut pe2_slot: Option<(f64, u64, usize)> = None;
    let mut next_seq = n as u64;
    let mut max_backlog = 0u64;
    let mut overflowed = false;
    let mut pe1_busy = 0.0f64;
    let mut pe2_busy = 0.0f64;
    let mut pe1_stalled = 0.0f64;
    let mut makespan = 0.0f64;

    loop {
        // The next event: minimum (time, seq) among the arrival cursor and
        // the two completion slots.
        let mut best: Option<(f64, u64, Next)> = None;
        if cursor < n {
            let (t, i) = scratch.ready[cursor];
            best = Some((t, i as u64, Next::Bits));
        }
        for (slot, which) in [(&pe1_slot, Next::Pe1), (&pe2_slot, Next::Pe2)] {
            if let Some(&(t, s, _)) = slot.as_ref() {
                if best.is_none_or(|(bt, bs, _)| beats(t, s, bt, bs)) {
                    best = Some((t, s, which));
                }
            }
        }
        let Some((now, _, which)) = best else { break };
        match which {
            Next::Bits => {
                let i = scratch.ready[cursor].1;
                cursor += 1;
                scratch.available[i] = true;
                if pe1_idle && pe1_held.is_none() && i == next_pe1 {
                    pe1_idle = false;
                    let dt = pe1_time(i);
                    pe1_busy += dt;
                    pe1_slot = Some((finite(now + dt)?, next_seq, i));
                    next_seq += 1;
                }
            }
            Next::Pe1 => {
                let i = pe1_slot.take().map(|(_, _, i)| i).unwrap_or(0);
                next_pe1 = i + 1;
                let resident = scratch.fifo.len() as u64 + u64::from(pe2_busy_now);
                let full = capacity.is_some_and(|c| resident >= c);
                overflowed |= full;
                // Occupancy bookkeeping resolves equal-time ties dequeue-
                // first (as the interval sweep in `stats::max_occupancy`
                // does): an in-service MB whose completion is also at `now`
                // has already left for accounting purposes.
                let pe2_live = pe2_busy_now
                    && pe2_slot.is_none_or(|(t, _, _)| t.total_cmp(&now).is_gt());
                if full && policy == OverflowPolicy::Backpressure {
                    // Backpressure: hold the macroblock; PE1 stalls.
                    pe1_held = Some((i, now));
                    pe1_idle = true;
                } else {
                    if !full {
                        scratch.fifo_in[i] = now;
                        scratch.fifo.push_back(i);
                        max_backlog = max_backlog
                            .max(scratch.fifo.len() as u64 + u64::from(pe2_live));
                    } else {
                        match policy {
                            OverflowPolicy::Backpressure => unreachable!("handled above"),
                            OverflowPolicy::Reject => {
                                // Discard the incoming macroblock.
                                scratch.fifo_in[i] = now;
                                scratch.fifo_out[i] = now;
                                scratch.dropped.push(i);
                            }
                            OverflowPolicy::DropByPriority => {
                                // Victim: lowest frame priority among the
                                // queued macroblocks and the incoming one;
                                // ties go to the newest (the incoming one
                                // is newest of all). Scanning back-to-front
                                // with a strict `<` picks exactly that.
                                let mut victim: Option<usize> = None;
                                let mut best = frame_priority(w.kinds[i]);
                                for pos in (0..scratch.fifo.len()).rev() {
                                    let pq = frame_priority(w.kinds[scratch.fifo[pos]]);
                                    if pq < best {
                                        best = pq;
                                        victim = Some(pos);
                                    }
                                }
                                match victim {
                                    None => {
                                        // The incoming macroblock is the victim.
                                        scratch.fifo_in[i] = now;
                                        scratch.fifo_out[i] = now;
                                        scratch.dropped.push(i);
                                    }
                                    Some(pos) => {
                                        let v = scratch.fifo.remove(pos).unwrap_or(i);
                                        scratch.fifo_out[v] = now;
                                        scratch.dropped.push(v);
                                        scratch.fifo_in[i] = now;
                                        scratch.fifo.push_back(i);
                                        max_backlog = max_backlog.max(
                                            scratch.fifo.len() as u64
                                                + u64::from(pe2_live),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    if next_pe1 < n && scratch.available[next_pe1] {
                        let dt = pe1_time(next_pe1);
                        pe1_busy += dt;
                        pe1_slot = Some((finite(now + dt)?, next_seq, next_pe1));
                        next_seq += 1;
                    } else {
                        pe1_idle = true;
                    }
                    if !pe2_busy_now {
                        if let Some(j) = scratch.fifo.pop_front() {
                            pe2_busy_now = true;
                            if let Some(m) = monitor.as_deref_mut() {
                                m.observe(w.pe2_cycles[j]);
                            }
                            let dt = pe2_time(j);
                            pe2_busy += dt;
                            pe2_slot = Some((finite(now + dt)?, next_seq, j));
                            next_seq += 1;
                        }
                    }
                }
            }
            Next::Pe2 => {
                let i = pe2_slot.take().map(|(_, _, i)| i).unwrap_or(0);
                scratch.fifo_out[i] = now;
                makespan = makespan.max(now);
                pe2_busy_now = false;
                // A freed slot first admits the held macroblock, if any.
                if let Some((h, since)) = pe1_held.take() {
                    pe1_stalled += now - since;
                    scratch.fifo_in[h] = now;
                    scratch.fifo.push_back(h);
                    max_backlog =
                        max_backlog.max(scratch.fifo.len() as u64 + u64::from(pe2_busy_now));
                    // PE1 resumes with the next macroblock.
                    if next_pe1 < n && scratch.available[next_pe1] {
                        pe1_idle = false;
                        let dt = pe1_time(next_pe1);
                        pe1_busy += dt;
                        pe1_slot = Some((finite(now + dt)?, next_seq, next_pe1));
                        next_seq += 1;
                    }
                }
                if let Some(j) = scratch.fifo.pop_front() {
                    pe2_busy_now = true;
                    if let Some(m) = monitor.as_deref_mut() {
                        m.observe(w.pe2_cycles[j]);
                    }
                    let dt = pe2_time(j);
                    pe2_busy += dt;
                    pe2_slot = Some((finite(now + dt)?, next_seq, j));
                    next_seq += 1;
                }
            }
        }
    }

    // Post-run digests only: nothing is recorded inside the event loop, so
    // the instrumented hot path costs one branch per simulation when the
    // recorder is disabled.
    if wcm_obs::enabled() {
        wcm_obs::counter("sim.runs", 1);
        wcm_obs::counter("sim.events", n as u64);
        wcm_obs::gauge_max("sim.backlog_high_water", max_backlog);
        if overflowed {
            wcm_obs::counter("sim.overflow_runs", 1);
        }
        if !scratch.dropped.is_empty() {
            wcm_obs::counter("sim.dropped_mbs", scratch.dropped.len() as u64);
        }
    }

    Ok(CoreOut {
        max_backlog,
        overflowed,
        pe1_busy,
        pe2_busy,
        pe1_stalled,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Injector;
    use wcm_mpeg::demand::{Pe1Model, Pe2Model};
    use wcm_mpeg::mb::{Macroblock, MacroblockClass};
    use wcm_mpeg::params::{FrameKind, GopStructure, VideoParams};
    use wcm_mpeg::workload::FrameWorkload;

    /// A hand-sized workload: `n` identical intra macroblocks of 100 bits.
    fn tiny_clip(n: usize) -> ClipWorkload {
        tiny_clip_kinds(&vec![FrameKind::I; n])
    }

    /// Like `tiny_clip`, but one single-macroblock frame per entry of
    /// `kinds` — for exercising the priority-drop policy.
    fn tiny_clip_kinds(kinds: &[FrameKind]) -> ClipWorkload {
        let params =
            VideoParams::new(16, 16, 25.0, 1.0e4, GopStructure::new(1, 1).unwrap()).unwrap();
        let frames: Vec<FrameWorkload> = kinds
            .iter()
            .map(|&kind| {
                let mb = Macroblock {
                    frame: kind,
                    class: MacroblockClass::Intra { coded_blocks: 2 },
                    bits: 100,
                };
                FrameWorkload::new(kind, vec![mb])
            })
            .collect();
        ClipWorkload::new(
            "tiny".into(),
            params,
            Pe1Model {
                base: 0,
                cycles_per_bit: 1.0,
                iq_per_block: 0,
            },
            Pe2Model {
                base: 1000,
                idct_per_block: 0,
                mc_single: 0,
                mc_single_field: 0,
                mc_bidirectional: 0,
                mc_bidirectional_field: 0,
                skip_copy: 0,
            },
            frames,
        )
    }

    #[test]
    fn hand_computed_timeline() {
        // 3 MBs × 100 bits at 100 bit/s → bits ready at 1, 2, 3 s.
        // PE1: 100 cycles at 100 Hz → 1 s per MB, but always waits for
        // bits: finishes at 2, 3, 4 s.
        // PE2: 1000 cycles at 1000 Hz → 1 s per MB: finishes at 3, 4, 5 s.
        let clip = tiny_clip(3);
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 100.0,
                pe1_hz: 100.0,
                pe2_hz: 1000.0,
            },
        )
        .unwrap();
        let expect_in = [2.0, 3.0, 4.0];
        let expect_out = [3.0, 4.0, 5.0];
        for i in 0..3 {
            assert!((r.fifo_in_times[i] - expect_in[i]).abs() < 1e-9, "in {i}");
            assert!(
                (r.fifo_out_times[i] - expect_out[i]).abs() < 1e-9,
                "out {i}"
            );
        }
        assert_eq!(r.max_backlog, 1);
        assert!((r.makespan - 5.0).abs() < 1e-9);
        assert!((r.pe1_busy - 3.0).abs() < 1e-9);
        assert!((r.pe2_busy - 3.0).abs() < 1e-9);
        assert!(r.dropped.is_empty());
    }

    #[test]
    fn slow_pe2_accumulates_backlog() {
        // PE2 at 250 Hz → 4 s per MB while PE1 emits one per second.
        let clip = tiny_clip(5);
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 100.0,
                pe1_hz: 100.0,
                pe2_hz: 250.0,
            },
        )
        .unwrap();
        assert!(r.max_backlog >= 3, "backlog {}", r.max_backlog);
        // FIFO discipline: out times strictly increasing.
        for w in r.fifo_out_times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn fast_pe2_keeps_backlog_at_one() {
        let clip = tiny_clip(10);
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 100.0,
                pe1_hz: 100.0,
                pe2_hz: 1.0e6,
            },
        )
        .unwrap();
        assert_eq!(r.max_backlog, 1);
    }

    #[test]
    fn conservation_and_ordering_on_synthetic_clip() {
        let params = VideoParams::new(
            160,
            128,
            25.0,
            1.0e6,
            GopStructure::broadcast(),
        )
        .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[4], 1)
            .unwrap();
        let r = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: 1.0e6,
                pe1_hz: 20.0e6,
                pe2_hz: 50.0e6,
            },
        )
        .unwrap();
        let n = clip.macroblock_count();
        assert_eq!(r.fifo_in_times.len(), n);
        assert_eq!(r.fifo_out_times.len(), n);
        for i in 0..n {
            assert!(r.fifo_out_times[i] >= r.fifo_in_times[i]);
        }
        for w in r.fifo_in_times.windows(2) {
            assert!(w[1] >= w[0], "PE1 output must be in order");
        }
        // Work conservation: busy times equal total demand / frequency.
        let pe2_total: u64 = clip.pe2_demands().iter().sum();
        assert!((r.pe2_busy - pe2_total as f64 / 50.0e6).abs() < 1e-9);
    }

    #[test]
    fn higher_pe2_clock_reduces_backlog() {
        let params = VideoParams::new(
            160,
            128,
            25.0,
            1.0e6,
            GopStructure::broadcast(),
        )
        .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[10], 1)
            .unwrap();
        let base = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 10.0e6,
        };
        let slow = simulate_pipeline(&clip, &base).unwrap();
        let fast = simulate_pipeline(
            &clip,
            &PipelineConfig {
                pe2_hz: 100.0e6,
                ..base
            },
        )
        .unwrap();
        assert!(fast.max_backlog <= slow.max_backlog);
    }

    #[test]
    fn frame_burst_source_is_burstier_than_cbr() {
        // Same clip, same long-run bits: the frame-burst source delivers
        // each picture fast then idles, so PE1's input is available earlier
        // within each frame and the FIFO sees sharper bursts.
        let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast())
            .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[12], 1)
            .unwrap();
        let cfg = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 30.0e6,
        };
        let cbr = simulate_pipeline(&clip, &cfg).unwrap();
        let burst = simulate_pipeline_with_source(
            &clip,
            &cfg,
            SourceModel::FrameBurst { peak_bps: 4.0e6 },
        )
        .unwrap();
        assert!(burst.max_backlog >= cbr.max_backlog);
        // Conservation still holds.
        assert_eq!(burst.fifo_out_times.len(), clip.macroblock_count());
        for w in burst.fifo_in_times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn frame_burst_validates_peak() {
        let clip = tiny_clip(2);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 100.0,
        };
        assert!(simulate_pipeline_with_source(
            &clip,
            &cfg,
            SourceModel::FrameBurst { peak_bps: 0.0 }
        )
        .is_err());
    }

    #[test]
    fn cbr_source_model_matches_default() {
        let clip = tiny_clip(6);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 500.0,
        };
        let a = simulate_pipeline(&clip, &cfg).unwrap();
        let b = simulate_pipeline_with_source(&clip, &cfg, SourceModel::Cbr).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backpressure_caps_occupancy() {
        // PE2 4× slower than PE1's output: unbounded backlog grows, the
        // bounded run must stay within capacity.
        let clip = tiny_clip(12);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let unbounded = simulate_pipeline(&clip, &cfg).unwrap();
        assert!(unbounded.max_backlog > 2);
        assert_eq!(unbounded.pe1_stalled, 0.0);
        let bounded = simulate_pipeline_bounded(&clip, &cfg, 2).unwrap();
        assert!(bounded.max_backlog <= 2);
        assert!(bounded.pe1_stalled > 0.0, "PE1 must have stalled");
        // Work conservation: every macroblock still processed, in order.
        for w in bounded.fifo_out_times.windows(2) {
            assert!(w[1] > w[0]);
        }
        // PE2 does the same total work either way.
        assert!((bounded.pe2_busy - unbounded.pe2_busy).abs() < 1e-9);
    }

    #[test]
    fn large_capacity_matches_unbounded() {
        let clip = tiny_clip(10);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let unbounded = simulate_pipeline(&clip, &cfg).unwrap();
        let bounded =
            simulate_pipeline_bounded(&clip, &cfg, unbounded.max_backlog).unwrap();
        assert_eq!(bounded, unbounded);
    }

    #[test]
    fn bounded_rejects_zero_capacity() {
        let clip = tiny_clip(1);
        let cfg = PipelineConfig {
            bitrate_bps: 1.0,
            pe1_hz: 1.0,
            pe2_hz: 1.0,
        };
        assert!(simulate_pipeline_bounded(&clip, &cfg, 0).is_err());
        assert!(simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::bounded(0, OverflowPolicy::Reject),
            SourceModel::Cbr,
            None,
            None,
        )
        .is_err());
    }

    #[test]
    fn validates_config() {
        let clip = tiny_clip(1);
        let ok = PipelineConfig {
            bitrate_bps: 1.0,
            pe1_hz: 1.0,
            pe2_hz: 1.0,
        };
        assert!(simulate_pipeline(&clip, &PipelineConfig { bitrate_bps: 0.0, ..ok }).is_err());
        assert!(simulate_pipeline(&clip, &PipelineConfig { pe1_hz: -1.0, ..ok }).is_err());
        assert!(simulate_pipeline(&clip, &PipelineConfig { pe2_hz: f64::NAN, ..ok }).is_err());
    }

    #[test]
    fn robust_clean_run_matches_legacy_bitwise() {
        // The tentpole regression: no faults, unbounded backpressure FIFO,
        // no monitor ⇒ the robust path must reproduce the legacy result
        // bit-for-bit, on both source models.
        let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast())
            .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[3], 1)
            .unwrap();
        let cfg = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 30.0e6,
        };
        for source in [SourceModel::Cbr, SourceModel::FrameBurst { peak_bps: 4.0e6 }] {
            let legacy = simulate_pipeline_with_source(&clip, &cfg, source).unwrap();
            for plan in [None, Some(FaultPlan::new(9))] {
                let robust = simulate_pipeline_robust(
                    &clip,
                    &cfg,
                    &FifoConfig::unbounded(),
                    source,
                    plan.as_ref(),
                    None,
                )
                .unwrap();
                assert_eq!(robust.pipeline, legacy);
                assert!(robust.faults.is_clean());
            }
        }
    }

    #[test]
    fn online_backlog_matches_interval_sweep() {
        // The heap-free core tracks max backlog online; the legacy path
        // derived it from the FIFO entry/exit times with an interval sweep.
        // Both must agree on every policy, capacity, and fault seed.
        let params = VideoParams::new(160, 128, 25.0, 1.0e6, GopStructure::broadcast())
            .unwrap();
        let clip = wcm_mpeg::Synthesizer::new(params)
            .generate(&wcm_mpeg::profile::standard_clips()[5], 1)
            .unwrap();
        let cfg = PipelineConfig {
            bitrate_bps: 1.0e6,
            pe1_hz: 20.0e6,
            pe2_hz: 8.0e6, // slow PE2 so bounded FIFOs actually overflow
        };
        let fifos = [
            FifoConfig::unbounded(),
            FifoConfig::bounded(3, OverflowPolicy::Backpressure),
            FifoConfig::bounded(3, OverflowPolicy::Reject),
            FifoConfig::bounded(3, OverflowPolicy::DropByPriority),
        ];
        for fifo in &fifos {
            for seed in [None, Some(7u64), Some(41)] {
                let plan = seed.map(|s| {
                    FaultPlan::new(s)
                        .with(Injector::JitterBurst {
                            start: 10,
                            len: 200,
                            max_delay_s: 0.01,
                        })
                        .with(Injector::DemandSpike {
                            start: 50,
                            len: 120,
                            factor_pct: 300,
                        })
                });
                let r = simulate_pipeline_robust(
                    &clip,
                    &cfg,
                    fifo,
                    SourceModel::Cbr,
                    plan.as_ref(),
                    None,
                )
                .unwrap()
                .pipeline;
                let swept =
                    crate::stats::max_occupancy(&r.fifo_in_times, &r.fifo_out_times);
                assert_eq!(
                    r.max_backlog, swept,
                    "fifo {fifo:?} seed {seed:?}: online backlog diverged"
                );
            }
        }
    }

    #[test]
    fn reject_policy_never_stalls_and_caps_backlog() {
        let clip = tiny_clip(12);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let r = simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::bounded(2, OverflowPolicy::Reject),
            SourceModel::Cbr,
            None,
            None,
        )
        .unwrap()
        .pipeline;
        assert!(r.max_backlog <= 2);
        assert_eq!(r.pe1_stalled, 0.0);
        assert!(!r.dropped.is_empty(), "overload must reject something");
        // Rejected macroblocks never occupy the FIFO.
        for &d in &r.dropped {
            assert_eq!(r.fifo_in_times[d], r.fifo_out_times[d]);
        }
    }

    #[test]
    fn drop_by_priority_prefers_b_over_p_over_i() {
        // Frames: I P B B P B I B B P B B — overload with capacity 2.
        // Hand trace (bits at 1..12 s, PE1 1 s/MB, PE2 4 s/MB): B(2), B(3)
        // and B(5) arrive at a full FIFO and are sacrificed; at t=8 the
        // incoming I(6) outranks the queued P(4), which is evicted; B(8) is
        // later evicted for the incoming P(9); B(7), B(10), B(11) arrive
        // full and die. No I-frame macroblock is ever lost.
        let kinds = [
            FrameKind::I,
            FrameKind::P,
            FrameKind::B,
            FrameKind::B,
            FrameKind::P,
            FrameKind::B,
            FrameKind::I,
            FrameKind::B,
            FrameKind::B,
            FrameKind::P,
            FrameKind::B,
            FrameKind::B,
        ];
        let clip = tiny_clip_kinds(&kinds);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let r = simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::bounded(2, OverflowPolicy::DropByPriority),
            SourceModel::Cbr,
            None,
            None,
        )
        .unwrap()
        .pipeline;
        assert!(r.max_backlog <= 2);
        assert_eq!(r.dropped, vec![2, 3, 5, 4, 7, 8, 10, 11]);
        let count = |kind| {
            r.dropped
                .iter()
                .filter(|&&d| kinds[d] == kind)
                .count()
        };
        // B is sacrificed first and most (7 of 8); one P falls to protect
        // an I; no I is ever dropped.
        assert_eq!(count(FrameKind::B), 7);
        assert_eq!(count(FrameKind::P), 1);
        assert_eq!(count(FrameKind::I), 0);
        // Every I macroblock was fully processed (out > in).
        for (i, &k) in kinds.iter().enumerate() {
            if k == FrameKind::I {
                assert!(r.fifo_out_times[i] > r.fifo_in_times[i], "lost {k:?} at {i}");
            }
        }
    }

    #[test]
    fn drop_by_priority_sacrifices_incoming_b_over_queued_p() {
        // Queue holds a P, incoming B: the incoming one is the victim (its
        // slot never materializes) and both references are processed.
        let kinds = [FrameKind::I, FrameKind::P, FrameKind::B, FrameKind::B];
        let clip = tiny_clip_kinds(&kinds);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let r = simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::bounded(2, OverflowPolicy::DropByPriority),
            SourceModel::Cbr,
            None,
            None,
        )
        .unwrap()
        .pipeline;
        assert_eq!(r.dropped, vec![2, 3]);
        for i in [0usize, 1] {
            assert!(r.fifo_out_times[i] > r.fifo_in_times[i]);
        }
    }

    #[test]
    fn drop_by_priority_evicts_queued_b_for_incoming_i() {
        // Queue holds a B when an I arrives at a full FIFO: the queued B
        // is evicted and the I takes its slot.
        let kinds = [FrameKind::I, FrameKind::B, FrameKind::I];
        let clip = tiny_clip_kinds(&kinds);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let r = simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::bounded(2, OverflowPolicy::DropByPriority),
            SourceModel::Cbr,
            None,
            None,
        )
        .unwrap()
        .pipeline;
        assert_eq!(r.dropped, vec![1]);
        assert!(r.fifo_out_times[2] > r.fifo_in_times[2], "the I must survive");
    }

    #[test]
    fn capacity_respected_under_faults_any_policy() {
        let clip = tiny_clip(40);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 250.0,
        };
        let plan = FaultPlan::new(21)
            .with(Injector::DuplicateEvents { per_mille: 150 })
            .with(Injector::DemandSpike {
                start: 5,
                len: 10,
                factor_pct: 300,
            })
            .with(Injector::JitterBurst {
                start: 0,
                len: 40,
                max_delay_s: 0.05,
            });
        for policy in [
            OverflowPolicy::Backpressure,
            OverflowPolicy::Reject,
            OverflowPolicy::DropByPriority,
        ] {
            let r = simulate_pipeline_robust(
                &clip,
                &cfg,
                &FifoConfig::bounded(3, policy),
                SourceModel::Cbr,
                Some(&plan),
                None,
            )
            .unwrap();
            assert!(
                r.pipeline.max_backlog <= 3,
                "{policy:?}: backlog {} exceeds capacity",
                r.pipeline.max_backlog
            );
        }
    }

    #[test]
    fn monitor_sees_consumed_demands() {
        use wcm_core::UpperWorkloadCurve;
        let clip = tiny_clip(8);
        let cfg = PipelineConfig {
            bitrate_bps: 100.0,
            pe1_hz: 100.0,
            pe2_hz: 1000.0,
        };
        // Every MB costs 1000 PE2 cycles; a γᵘ of exactly k·1000 is tight.
        let gamma = UpperWorkloadCurve::new((1..=4).map(|k| 1000 * k).collect()).unwrap();
        let mut mon = wcm_core::EnvelopeMonitor::upper_only(&gamma, 4).unwrap();
        let r = simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::unbounded(),
            SourceModel::Cbr,
            None,
            Some(&mut mon),
        )
        .unwrap();
        assert_eq!(mon.events(), 8);
        assert!(mon.is_clean());
        assert_eq!(r.stream_len, 8);
        // A demand spike above the profile must trip the monitor.
        let plan = FaultPlan::new(4).with(Injector::DemandSpike {
            start: 3,
            len: 2,
            factor_pct: 200,
        });
        let mut mon2 = wcm_core::EnvelopeMonitor::upper_only(&gamma, 4).unwrap();
        simulate_pipeline_robust(
            &clip,
            &cfg,
            &FifoConfig::unbounded(),
            SourceModel::Cbr,
            Some(&plan),
            Some(&mut mon2),
        )
        .unwrap();
        assert!(mon2.total_violations() >= 1);
    }
}
