//! Transaction-level simulator of the two-PE streaming architecture.
//!
//! Reproduces the executable side of the paper's case study (Fig. 5): a
//! constant-bit-rate channel feeds compressed video into PE₁ (VLD+IQ);
//! partially decoded macroblocks flow through a FIFO into PE₂ (IDCT+MC).
//! The simulator is the stand-in for the authors' SystemC platform model —
//! one transaction per macroblock, continuous time, deterministic.
//!
//! * [`engine`] — a minimal discrete-event kernel (time-ordered calendar
//!   with deterministic FIFO tie-breaking);
//! * [`pipeline`] — the CBR → PE₁ → FIFO → PE₂ model; reports the
//!   macroblock timestamps at the FIFO input (the measured `ᾱ` of the
//!   paper) and the maximum FIFO backlog (Fig. 7's metric); FIFOs can be
//!   capacity-bounded with an explicit [`pipeline::OverflowPolicy`];
//! * [`faults`] — seeded, composable fault injection (jitter bursts,
//!   drops/duplicates, demand spikes, clock drift, stalls, bit errors)
//!   consumed by [`pipeline::simulate_pipeline_robust`];
//! * [`stats`] — occupancy sweeps over enqueue/dequeue timestamp pairs;
//! * [`sweep`] — parallel design-space exploration over a
//!   `(clip × frequency × capacity × policy × seed)` grid, with an
//!   analytic pre-pass (eqs. 8–10) that proves most points safe or unsafe
//!   without simulating them.
//!
//! # Example
//!
//! ```
//! use wcm_mpeg::{params::VideoParams, profile, Synthesizer};
//! use wcm_sim::pipeline::{simulate_pipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = VideoParams::new(160, 128, 25.0, 1.0e6,
//!     wcm_mpeg::GopStructure::broadcast())?;
//! let clip = Synthesizer::new(params).generate(&profile::standard_clips()[0], 1)?;
//! let result = simulate_pipeline(&clip, &PipelineConfig {
//!     bitrate_bps: 1.0e6,
//!     pe1_hz: 20.0e6,
//!     pe2_hz: 40.0e6,
//! })?;
//! assert!(result.max_backlog > 0);
//! assert_eq!(result.fifo_in_times.len(), clip.macroblock_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod error;
pub mod faults;
pub mod pipeline;
pub mod stats;
pub mod sweep;

pub use error::SimError;
pub use faults::frames::{FrameCorruptionPlan, FrameFaultReport, FrameFaulted, FrameInjector};
pub use faults::{FaultPlan, FaultReport, FaultedWorkload, Injector, ProcessingElement};
pub use pipeline::{
    simulate_pipeline, simulate_pipeline_robust, FifoConfig, OverflowPolicy, PipelineConfig,
    PipelineResult, RobustPipelineResult, SourceModel,
};
pub use sweep::{
    merge_shards, run_frontier, run_sweep, run_sweep_streaming, spec_fingerprint,
    staircase_thresholds, CollectSink, CsvSink, FrontierMethod, FrontierReport, PointRecord,
    ShardRange, SweepError, SweepReport, SweepRunHeader, SweepSink, SweepSpec, SweepSummary,
    Verdict, WcmtShardSink,
};
