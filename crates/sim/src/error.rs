use std::error::Error;
use std::fmt;

/// Error returned by the architecture simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The workload is empty (nothing to simulate).
    EmptyWorkload,
    /// An event was scheduled at a NaN or infinite time.
    NonFiniteTime {
        /// The offending timestamp.
        time: f64,
    },
    /// A fault-injector parameter was invalid.
    InvalidInjector {
        /// Which injector.
        injector: &'static str,
        /// Which of its parameters.
        name: &'static str,
    },
    /// The fault plan removed every macroblock from the stream.
    AllEventsDropped,
    /// The bytes handed to a frame-corruption plan were not a valid WCMT
    /// stream to begin with (corruption is injected into *clean* input so
    /// its ground truth stays exact).
    NotAStream {
        /// Byte offset where the stream header failed to parse.
        offset: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name } => {
                write!(f, "invalid value for parameter `{name}`")
            }
            SimError::EmptyWorkload => write!(f, "workload contains no macroblocks"),
            SimError::NonFiniteTime { time } => {
                write!(f, "event time {time} is not finite")
            }
            SimError::InvalidInjector { injector, name } => {
                write!(f, "injector `{injector}`: invalid value for `{name}`")
            }
            SimError::AllEventsDropped => {
                write!(f, "fault plan dropped every macroblock of the stream")
            }
            SimError::NotAStream { offset } => {
                write!(f, "not a valid WCMT stream (header rejected at byte {offset})")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits() {
        assert!(SimError::EmptyWorkload.to_string().contains("macroblocks"));
        assert!(SimError::NonFiniteTime { time: f64::NAN }
            .to_string()
            .contains("not finite"));
        assert!(SimError::InvalidInjector {
            injector: "jitter",
            name: "max_delay_s"
        }
        .to_string()
        .contains("jitter"));
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}
