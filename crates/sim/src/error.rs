use std::error::Error;
use std::fmt;

/// Error returned by the architecture simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The workload is empty (nothing to simulate).
    EmptyWorkload,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name } => {
                write!(f, "invalid value for parameter `{name}`")
            }
            SimError::EmptyWorkload => write!(f, "workload contains no macroblocks"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits() {
        assert!(SimError::EmptyWorkload.to_string().contains("macroblocks"));
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}
