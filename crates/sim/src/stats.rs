//! Occupancy statistics over enqueue/dequeue timestamp pairs.

/// Maximum number of items simultaneously resident, given per-item
/// enqueue and dequeue times (an item occupies `[enq, deq)`).
///
/// Ties are resolved dequeue-first (an item leaving at `t` frees its slot
/// for an item arriving at `t`), matching a FIFO whose read and write can
/// happen in the same cycle.
///
/// # Panics
///
/// Panics if the slices have different lengths or a dequeue precedes its
/// enqueue.
///
/// # Example
///
/// ```
/// use wcm_sim::stats::max_occupancy;
///
/// // Three overlapping intervals, at most 2 resident at once.
/// let enq = [0.0, 1.0, 2.5];
/// let deq = [2.0, 3.0, 4.0];
/// assert_eq!(max_occupancy(&enq, &deq), 2);
/// ```
#[must_use]
pub fn max_occupancy(enq: &[f64], deq: &[f64]) -> u64 {
    assert_eq!(enq.len(), deq.len(), "enqueue/dequeue length mismatch");
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(enq.len() * 2);
    for (&e, &d) in enq.iter().zip(deq) {
        assert!(d >= e, "dequeue before enqueue");
        events.push((e, 1));
        events.push((d, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))); // -1 before +1 at equal times
    let mut occ: i64 = 0;
    let mut max: i64 = 0;
    for (_, delta) in events {
        occ += delta;
        max = max.max(occ);
    }
    max.max(0) as u64
}

/// Full occupancy timeline as `(time, occupancy)` steps (after applying
/// each event), dequeue-first tie-breaking.
///
/// # Panics
///
/// Same conditions as [`max_occupancy`].
#[must_use]
pub fn occupancy_timeline(enq: &[f64], deq: &[f64]) -> Vec<(f64, u64)> {
    assert_eq!(enq.len(), deq.len(), "enqueue/dequeue length mismatch");
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(enq.len() * 2);
    for (&e, &d) in enq.iter().zip(deq) {
        events.push((e, 1));
        events.push((d, -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut occ: i64 = 0;
    let mut out = Vec::with_capacity(events.len());
    for (t, delta) in events {
        occ += delta;
        out.push((t, occ.max(0) as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(max_occupancy(&[], &[]), 0);
        assert!(occupancy_timeline(&[], &[]).is_empty());
    }

    #[test]
    fn non_overlapping_is_one() {
        let enq = [0.0, 2.0, 4.0];
        let deq = [1.0, 3.0, 5.0];
        assert_eq!(max_occupancy(&enq, &deq), 1);
    }

    #[test]
    fn nested_intervals_stack() {
        let enq = [0.0, 1.0, 2.0];
        let deq = [10.0, 9.0, 8.0];
        assert_eq!(max_occupancy(&enq, &deq), 3);
    }

    #[test]
    fn dequeue_first_at_ties() {
        // Item leaves exactly when the next arrives: never 2 resident.
        let enq = [0.0, 1.0, 2.0];
        let deq = [1.0, 2.0, 3.0];
        assert_eq!(max_occupancy(&enq, &deq), 1);
    }

    #[test]
    fn timeline_matches_max() {
        let enq = [0.0, 0.5, 0.6, 3.0];
        let deq = [1.0, 2.0, 0.9, 4.0];
        let tl = occupancy_timeline(&enq, &deq);
        let max_tl = tl.iter().map(|&(_, o)| o).max().unwrap();
        assert_eq!(max_tl, max_occupancy(&enq, &deq));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = max_occupancy(&[0.0], &[]);
    }

    #[test]
    #[should_panic(expected = "dequeue before enqueue")]
    fn rejects_inverted_interval() {
        let _ = max_occupancy(&[1.0], &[0.5]);
    }
}
