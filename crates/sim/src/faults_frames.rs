//! Seeded frame-level corruption of encoded `.wcmt` byte streams.
//!
//! [`super::FaultPlan`] perturbs the *decoded* workload (jitter, drops,
//! demand spikes). This module attacks one layer below: the encoded wire
//! bytes themselves, exercising exactly the failure modes
//! [`wcm_wire::DecodePolicy::SkipCorrupt`] must survive —
//!
//! * [`FrameInjector::BitFlips`] — independent bit errors at a configured
//!   BER over every data frame's on-wire bytes (noisy link, bad sector);
//! * [`FrameInjector::LengthLies`] — a frame's length field is rewritten
//!   without fixing its CRC (malicious or buggy writer);
//! * [`FrameInjector::DuplicateFrames`] — a frame is re-delivered intact
//!   (retransmission bug: CRC passes, content repeats);
//! * [`FrameInjector::ReorderFrames`] — two intact frames swap places
//!   (out-of-order delivery);
//! * [`FrameInjector::Truncate`] — the tail of the stream is cut off
//!   (interrupted transfer).
//!
//! Every plan is driven by a `ChaCha8Rng` derived from
//! [`FrameCorruptionPlan::seed`] exactly like [`super::FaultPlan`]: a
//! fixed plan applied to fixed bytes produces bit-identical output and a
//! bit-identical [`FrameFaultReport`] on every run. The report is *ground
//! truth* for the decoder's own [`wcm_wire::DecodeReport`]: with the end
//! marker intact, a `SkipCorrupt` decode of the corrupted bytes must show
//! `frames_skipped == damage_runs` and `bytes_lost == damage_wire_bytes`
//! (a mismatch would need a CRC32 collision).
//!
//! Injectors compose in plan order; in-place damage (flips, lies) is
//! tracked by byte offset and re-based across structural edits
//! (duplication, reordering, truncation), and each injector only targets
//! frames that are still intact, so no frame is double-counted.

use crate::SimError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcm_wire::frame::{FrameReader, HEADER_LEN};
use wcm_wire::WireError;

/// One composable frame-level corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameInjector {
    /// Flips each bit of every intact data frame independently with
    /// probability `ber_per_million / 1_000_000` (the paper-relevant
    /// regime is BER ≤ 1e-3, i.e. `ber_per_million ≤ 1000`).
    BitFlips {
        /// Bit-error rate in parts per million (≤ 1 000 000).
        ber_per_million: u32,
    },
    /// Rewrites the length field of `count` randomly chosen intact frames
    /// without fixing their CRCs — the lie is caught by the checksum, not
    /// by trusting the field.
    LengthLies {
        /// How many frames get a lying length field.
        count: usize,
    },
    /// Re-inserts an intact copy of `copies` randomly chosen frames
    /// immediately after the original.
    DuplicateFrames {
        /// How many duplicate insertions to perform.
        copies: usize,
    },
    /// Swaps the on-wire bytes of two randomly chosen intact frames,
    /// `swaps` times. CRCs stay valid; only the order changes.
    ReorderFrames {
        /// How many pairwise swaps to perform.
        swaps: usize,
    },
    /// Keeps the stream header plus the first `keep_pct` percent of the
    /// body, discarding the rest (including the end marker unless
    /// `keep_pct == 100`).
    Truncate {
        /// Percentage of the body to keep (≤ 100).
        keep_pct: u8,
    },
}

impl FrameInjector {
    /// Stable display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FrameInjector::BitFlips { .. } => "bit-flips",
            FrameInjector::LengthLies { .. } => "length-lies",
            FrameInjector::DuplicateFrames { .. } => "duplicate-frames",
            FrameInjector::ReorderFrames { .. } => "reorder-frames",
            FrameInjector::Truncate { .. } => "truncate",
        }
    }

    /// Checks parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInjector`] naming the injector and the
    /// offending parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |name| SimError::InvalidInjector {
            injector: self.name(),
            name,
        };
        match *self {
            FrameInjector::BitFlips { ber_per_million } => {
                if ber_per_million > 1_000_000 {
                    return Err(bad("ber_per_million"));
                }
            }
            FrameInjector::Truncate { keep_pct } => {
                if keep_pct > 100 {
                    return Err(bad("keep_pct"));
                }
            }
            FrameInjector::LengthLies { .. }
            | FrameInjector::DuplicateFrames { .. }
            | FrameInjector::ReorderFrames { .. } => {}
        }
        Ok(())
    }
}

/// Exact ground-truth tally of what a [`FrameCorruptionPlan`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameFaultReport {
    /// Intact non-end frames in the clean input.
    pub frames_seen: u64,
    /// Individual bits flipped by [`FrameInjector::BitFlips`].
    pub bits_flipped: u64,
    /// Distinct frames whose in-place bytes were altered (flips + lies).
    pub frames_damaged: u64,
    /// Maximal runs of *adjacent* damaged frames. Each run costs the
    /// lenient decoder exactly one resynchronisation, so this equals
    /// [`wcm_wire::DecodeReport::frames_skipped`] whenever the end marker
    /// survives.
    pub damage_runs: u64,
    /// Total on-wire bytes of the damaged frames — equals
    /// [`wcm_wire::DecodeReport::bytes_lost`] whenever the end marker
    /// survives.
    pub damage_wire_bytes: u64,
    /// Duplicate insertions performed.
    pub frames_duplicated: u64,
    /// Pairwise frame swaps performed.
    pub frames_reordered: u64,
    /// Length fields rewritten.
    pub length_lies: u64,
    /// Bytes removed from the tail by [`FrameInjector::Truncate`].
    pub bytes_truncated: u64,
}

/// The corrupted bytes plus their ground-truth accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameFaulted {
    /// The stream after corruption.
    pub bytes: Vec<u8>,
    /// What was done to it.
    pub report: FrameFaultReport,
}

/// A seeded, reproducible sequence of frame-level corruptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameCorruptionPlan {
    seed: u64,
    injectors: Vec<FrameInjector>,
}

/// `(start, wire_len)` of one intact frame in the current buffer.
type Extent = (usize, usize);

fn scan_intact(bytes: &[u8]) -> Result<Vec<Extent>, SimError> {
    let map_err = |e: WireError| SimError::NotAStream { offset: e.offset };
    let mut reader = FrameReader::new(bytes).map_err(map_err)?;
    let mut extents = Vec::new();
    loop {
        match reader.next_lenient() {
            wcm_wire::frame::Step::Frame(f) => extents.push((f.start, f.wire_len)),
            wcm_wire::frame::Step::Damage { .. } => {}
            wcm_wire::frame::Step::End { .. } | wcm_wire::frame::Step::Eof { .. } => break,
        }
    }
    Ok(extents)
}

impl FrameCorruptionPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            injectors: Vec::new(),
        }
    }

    /// Appends an injector (builder style).
    #[must_use]
    pub fn with(mut self, injector: FrameInjector) -> Self {
        self.injectors.push(injector);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injectors in application order.
    #[must_use]
    pub fn injectors(&self) -> &[FrameInjector] {
        &self.injectors
    }

    /// Validates every injector.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInjector`] for the first invalid one.
    pub fn validate(&self) -> Result<(), SimError> {
        self.injectors.iter().try_for_each(FrameInjector::validate)
    }

    /// Applies the plan to a *clean* encoded stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInjector`] for invalid parameters and
    /// [`SimError::NotAStream`] when `clean` does not start with a valid
    /// WCMT header (ground truth is only exact against clean input).
    pub fn apply(&self, clean: &[u8]) -> Result<FrameFaulted, SimError> {
        self.validate()?;
        let mut out = clean.to_vec();
        let mut report = FrameFaultReport {
            frames_seen: scan_intact(clean)?.len() as u64,
            ..FrameFaultReport::default()
        };
        // Damaged frames by (start, wire_len) in the *current* buffer;
        // re-based whenever a structural injector moves bytes around.
        let mut damaged: Vec<Extent> = Vec::new();

        for (i, injector) in self.injectors.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(
                self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            match *injector {
                FrameInjector::BitFlips { ber_per_million } => {
                    let p = f64::from(ber_per_million) / 1e6;
                    for (start, wire_len) in scan_intact(&out)? {
                        let mut hit = false;
                        for slot in out.iter_mut().skip(start).take(wire_len) {
                            for bit in 0..8u8 {
                                if rng.gen_bool(p) {
                                    *slot ^= 1 << bit;
                                    report.bits_flipped += 1;
                                    hit = true;
                                }
                            }
                        }
                        if hit {
                            damaged.push((start, wire_len));
                            report.frames_damaged += 1;
                            report.damage_wire_bytes += wire_len as u64;
                        }
                    }
                }
                FrameInjector::LengthLies { count } => {
                    for _ in 0..count {
                        let intact = scan_intact(&out)?;
                        if intact.is_empty() {
                            break;
                        }
                        let (start, wire_len) = intact[rng.gen_range(0..intact.len())];
                        // XOR a nonzero mask into the length field; the CRC
                        // (which covers the field) is left stale.
                        let mask = rng.gen_range(1..=u32::from(u16::MAX));
                        let old = u32::from_le_bytes([
                            out[start + 2],
                            out[start + 3],
                            out[start + 4],
                            out[start + 5],
                        ]);
                        out[start + 2..start + 6].copy_from_slice(&(old ^ mask).to_le_bytes());
                        damaged.push((start, wire_len));
                        report.length_lies += 1;
                        report.frames_damaged += 1;
                        report.damage_wire_bytes += wire_len as u64;
                    }
                }
                FrameInjector::DuplicateFrames { copies } => {
                    for _ in 0..copies {
                        let intact = scan_intact(&out)?;
                        if intact.is_empty() {
                            break;
                        }
                        let (start, wire_len) = intact[rng.gen_range(0..intact.len())];
                        let copy = out[start..start + wire_len].to_vec();
                        let insert_at = start + wire_len;
                        out.splice(insert_at..insert_at, copy);
                        for d in &mut damaged {
                            if d.0 >= insert_at {
                                d.0 += wire_len;
                            }
                        }
                        report.frames_duplicated += 1;
                    }
                }
                FrameInjector::ReorderFrames { swaps } => {
                    for _ in 0..swaps {
                        let intact = scan_intact(&out)?;
                        if intact.len() < 2 {
                            break;
                        }
                        let a = rng.gen_range(0..intact.len());
                        let mut b = rng.gen_range(0..intact.len() - 1);
                        if b >= a {
                            b += 1;
                        }
                        let ((a_start, a_len), (b_start, b_len)) = if intact[a].0 < intact[b].0 {
                            (intact[a], intact[b])
                        } else {
                            (intact[b], intact[a])
                        };
                        let mut next = Vec::with_capacity(out.len());
                        next.extend_from_slice(&out[..a_start]);
                        next.extend_from_slice(&out[b_start..b_start + b_len]);
                        next.extend_from_slice(&out[a_start + a_len..b_start]);
                        next.extend_from_slice(&out[a_start..a_start + a_len]);
                        next.extend_from_slice(&out[b_start + b_len..]);
                        out = next;
                        // Damaged frames strictly between the pair shift by
                        // the length difference; the swapped frames
                        // themselves are intact by construction.
                        let delta = b_len as isize - a_len as isize;
                        for d in &mut damaged {
                            if d.0 > a_start && d.0 < b_start {
                                d.0 = (d.0 as isize + delta) as usize;
                            }
                        }
                        report.frames_reordered += 1;
                    }
                }
                FrameInjector::Truncate { keep_pct } => {
                    if out.len() > HEADER_LEN {
                        let body = out.len() - HEADER_LEN;
                        let new_len = HEADER_LEN + body * usize::from(keep_pct) / 100;
                        report.bytes_truncated += (out.len() - new_len) as u64;
                        out.truncate(new_len);
                        damaged.retain(|d| d.0 + d.1 <= new_len);
                    }
                }
            }
        }

        damaged.sort_unstable();
        let mut runs = 0u64;
        let mut next_adjacent = usize::MAX;
        for &(start, wire_len) in &damaged {
            if start != next_adjacent {
                runs += 1;
            }
            next_adjacent = start + wire_len;
        }
        report.damage_runs = runs;
        Ok(FrameFaulted { bytes: out, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_wire::{decode, encode_demands, DecodePolicy};

    fn sample_stream() -> Vec<u8> {
        // > CHUNK (4096) demands so the stream carries several data frames.
        let demands: Vec<u64> = (0..10_000u64).map(|i| 1_500 + i * 7).collect();
        encode_demands("corruption-target", &demands)
    }

    #[test]
    fn same_seed_same_bytes_and_report() {
        let clean = sample_stream();
        let plan = FrameCorruptionPlan::new(42)
            .with(FrameInjector::BitFlips {
                ber_per_million: 500,
            })
            .with(FrameInjector::LengthLies { count: 1 });
        let a = plan.apply(&clean).unwrap();
        let b = plan.apply(&clean).unwrap();
        assert_eq!(a, b);
        assert!(a.report.bits_flipped > 0);
        // A different seed produces different corruption.
        let c = FrameCorruptionPlan::new(43)
            .with(FrameInjector::BitFlips {
                ber_per_million: 500,
            })
            .with(FrameInjector::LengthLies { count: 1 })
            .apply(&clean)
            .unwrap();
        assert_ne!(a.bytes, c.bytes);
    }

    #[test]
    fn ground_truth_matches_decode_report_at_ber_1e3() {
        let clean = sample_stream();
        for seed in 0..20 {
            let plan = FrameCorruptionPlan::new(seed).with(FrameInjector::BitFlips {
                ber_per_million: 1000,
            });
            let faulted = plan.apply(&clean).unwrap();
            let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
            assert_eq!(out.report.frames_skipped, faulted.report.damage_runs);
            assert_eq!(out.report.bytes_lost, faulted.report.damage_wire_bytes);
            assert!(out.report.clean_end, "end marker is never flipped away");
        }
    }

    #[test]
    fn surviving_demand_chunks_are_bit_identical() {
        let clean = sample_stream();
        let original = decode(&clean, DecodePolicy::Strict).unwrap();
        let plan = FrameCorruptionPlan::new(7).with(FrameInjector::BitFlips {
            ber_per_million: 800,
        });
        let faulted = plan.apply(&clean).unwrap();
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert!(out.report.frames_skipped > 0, "seed 7 at 8e-4 damages frames");
        // Every surviving demand appears in the original at the same
        // residue: the survivors are a concatenation of whole original
        // chunks, so they form a subsequence of the original demands.
        let mut it = original.demands.iter();
        for d in &out.demands {
            assert!(it.any(|o| o == d), "decoded demand {d} not in original order");
        }
    }

    #[test]
    fn length_lies_cost_exactly_the_lied_frames() {
        let clean = sample_stream();
        let plan = FrameCorruptionPlan::new(99).with(FrameInjector::LengthLies { count: 2 });
        let faulted = plan.apply(&clean).unwrap();
        assert_eq!(faulted.report.length_lies, 2);
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert_eq!(out.report.frames_skipped, faulted.report.damage_runs);
        assert_eq!(out.report.bytes_lost, faulted.report.damage_wire_bytes);
    }

    #[test]
    fn duplication_and_reordering_keep_the_stream_decodable() {
        let clean = sample_stream();
        let plan = FrameCorruptionPlan::new(5)
            .with(FrameInjector::DuplicateFrames { copies: 2 })
            .with(FrameInjector::ReorderFrames { swaps: 2 });
        let faulted = plan.apply(&clean).unwrap();
        assert_eq!(faulted.report.frames_duplicated, 2);
        assert_eq!(faulted.report.frames_reordered, 2);
        // Every frame still passes its CRC, so even strict framing holds;
        // the decoded *content* differs (that is the point).
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert_eq!(out.report.frames_skipped, 0);
        assert!(out.demands.len() >= 10_000);
    }

    #[test]
    fn truncation_is_reported_by_the_decoder() {
        let clean = sample_stream();
        let plan = FrameCorruptionPlan::new(1).with(FrameInjector::Truncate { keep_pct: 60 });
        let faulted = plan.apply(&clean).unwrap();
        assert!(faulted.report.bytes_truncated > 0);
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        assert!(out.report.truncated);
        assert!(!out.report.clean_end);
        assert!(out.demands.len() < 10_000);
    }

    #[test]
    fn invalid_parameters_and_inputs_are_rejected() {
        let err = FrameCorruptionPlan::new(0)
            .with(FrameInjector::BitFlips {
                ber_per_million: 1_000_001,
            })
            .apply(&sample_stream())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidInjector { .. }));
        let err = FrameCorruptionPlan::new(0)
            .with(FrameInjector::Truncate { keep_pct: 101 })
            .validate()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidInjector { .. }));
        let err = FrameCorruptionPlan::new(0)
            .with(FrameInjector::LengthLies { count: 1 })
            .apply(b"not a wcmt stream")
            .unwrap_err();
        assert!(matches!(err, SimError::NotAStream { .. }));
    }
}
