//! Seeded, composable fault injection for the pipeline simulator.
//!
//! The paper's workload curves are *hard* bounds: they must hold for every
//! window of every admissible trace. This module provides the adversarial
//! side of that claim — deterministic, reproducible perturbations of the
//! CBR → PE₁ → FIFO → PE₂ pipeline that push traces outside (or to the
//! edge of) the admissible set:
//!
//! * [`Injector::JitterBurst`] — bounded extra delay on bit arrival for a
//!   window of macroblocks (transport jitter);
//! * [`Injector::DropEvents`] / [`Injector::DuplicateEvents`] — the channel
//!   loses or re-delivers macroblocks;
//! * [`Injector::DemandSpike`] — PE₂ cycle demand scaled up for a window
//!   of macroblocks, deliberately exceeding the clip profile (and hence
//!   potentially `γᵘ`);
//! * [`Injector::ClockDrift`] — a PE runs slow for a window of macroblocks
//!   (thermal throttling, DVS undershoot);
//! * [`Injector::Stall`] — a one-off PE stall of fixed duration (cache
//!   refill, bus contention burst);
//! * [`Injector::BitErrors`] — seeded corruption of the compressed channel:
//!   a corrupted macroblock's size is re-drawn and its VLD (PE₁) cost
//!   doubles (resynchronisation penalty).
//!
//! All randomness comes from a `ChaCha8Rng` derived from
//! [`FaultPlan::seed`]; a fixed plan applied to a fixed clip produces a
//! bit-identical [`FaultedWorkload`] on every run. Injectors compose in
//! plan order: each transforms the stream left by the previous one.

use crate::SimError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wcm_mpeg::params::FrameKind;
use wcm_mpeg::ClipWorkload;

#[path = "faults_frames.rs"]
pub mod frames;

/// Which processing element a timing fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessingElement {
    /// PE₁ (VLD + IQ).
    Pe1,
    /// PE₂ (IDCT + MC).
    Pe2,
}

/// One composable fault injector.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Injector {
    /// Adds `U[0, max_delay_s]` of seeded delay to the bit-arrival instant
    /// of each macroblock in `[start, start + len)`.
    JitterBurst {
        /// First affected stream position.
        start: usize,
        /// Number of affected macroblocks.
        len: usize,
        /// Upper jitter bound in seconds (0 disables the injector).
        max_delay_s: f64,
    },
    /// Drops each macroblock independently with probability
    /// `per_mille / 1000` (the channel loses it before PE₁).
    DropEvents {
        /// Drop probability in 1/1000 units (0 disables, ≤ 1000).
        per_mille: u16,
    },
    /// Re-delivers each macroblock independently with probability
    /// `per_mille / 1000` (the duplicate follows its original).
    DuplicateEvents {
        /// Duplication probability in 1/1000 units (0 disables, ≤ 1000).
        per_mille: u16,
    },
    /// Scales the PE₂ cycle demand of macroblocks in `[start, start + len)`
    /// by `factor_pct / 100` — above 100 this exceeds the clip profile and
    /// can push windows over `γᵘ`.
    DemandSpike {
        /// First affected stream position.
        start: usize,
        /// Number of affected macroblocks.
        len: usize,
        /// Demand multiplier in percent (100 disables).
        factor_pct: u32,
    },
    /// Stretches the service time of one PE by `factor_pct / 100` for the
    /// macroblocks in `[start, start + len)` (clock drift / throttling).
    ClockDrift {
        /// The affected processing element.
        pe: ProcessingElement,
        /// First affected stream position.
        start: usize,
        /// Number of affected macroblocks.
        len: usize,
        /// Service-time multiplier in percent (100 disables, ≥ 100).
        factor_pct: u32,
    },
    /// Adds a one-off stall of `extra_s` seconds to the service of the
    /// macroblock at stream position `at` on one PE.
    Stall {
        /// The affected processing element.
        pe: ProcessingElement,
        /// Stream position of the stalled macroblock.
        at: usize,
        /// Stall duration in seconds (0 disables).
        extra_s: f64,
    },
    /// Corrupts each macroblock of the compressed channel independently
    /// with probability `per_mille / 1000`: its bit size is re-drawn
    /// uniformly in `[1, 2·bits]` and its PE₁ cost doubles.
    BitErrors {
        /// Corruption probability in 1/1000 units (0 disables, ≤ 1000).
        per_mille: u16,
    },
}

impl Injector {
    /// A short stable name for error messages and CLI specs.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Injector::JitterBurst { .. } => "jitter",
            Injector::DropEvents { .. } => "drop",
            Injector::DuplicateEvents { .. } => "dup",
            Injector::DemandSpike { .. } => "spike",
            Injector::ClockDrift { .. } => "drift",
            Injector::Stall { .. } => "stall",
            Injector::BitErrors { .. } => "biterr",
        }
    }

    /// Checks parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInjector`] naming the injector and the
    /// offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |name| SimError::InvalidInjector {
            injector: self.name(),
            name,
        };
        match *self {
            Injector::JitterBurst { max_delay_s, .. } => {
                if !(max_delay_s.is_finite() && max_delay_s >= 0.0) {
                    return Err(bad("max_delay_s"));
                }
            }
            Injector::DropEvents { per_mille } | Injector::DuplicateEvents { per_mille } => {
                if per_mille > 1000 {
                    return Err(bad("per_mille"));
                }
            }
            Injector::DemandSpike { factor_pct, .. } => {
                if factor_pct == 0 {
                    return Err(bad("factor_pct"));
                }
            }
            Injector::ClockDrift { factor_pct, .. } => {
                if factor_pct < 100 {
                    return Err(bad("factor_pct"));
                }
            }
            Injector::Stall { extra_s, .. } => {
                if !(extra_s.is_finite() && extra_s >= 0.0) {
                    return Err(bad("extra_s"));
                }
            }
            Injector::BitErrors { per_mille } => {
                if per_mille > 1000 {
                    return Err(bad("per_mille"));
                }
            }
        }
        Ok(())
    }
}

/// Counters of what a [`FaultPlan`] actually did to a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Macroblocks removed from the stream.
    pub dropped_events: usize,
    /// Macroblocks re-delivered by the channel.
    pub duplicated_events: usize,
    /// Macroblocks whose bits were corrupted.
    pub corrupted_events: usize,
    /// Macroblocks whose PE₂ demand was scaled.
    pub spiked_events: usize,
    /// Macroblocks whose bit arrival was delayed.
    pub jittered_events: usize,
    /// Macroblocks whose service was slowed or stalled.
    pub slowed_events: usize,
}

impl FaultReport {
    /// Whether the plan changed anything at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }
}

/// A seeded, ordered list of [`Injector`]s.
///
/// # Example
///
/// ```
/// use wcm_sim::faults::{FaultPlan, Injector};
///
/// let plan = FaultPlan::new(42)
///     .with(Injector::DemandSpike { start: 100, len: 50, factor_pct: 300 })
///     .with(Injector::DropEvents { per_mille: 5 });
/// assert_eq!(plan.injectors().len(), 2);
/// assert_eq!(plan.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    injectors: Vec<Injector>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            injectors: Vec::new(),
        }
    }

    /// Appends an injector (applied after all earlier ones).
    #[must_use]
    pub fn with(mut self, injector: Injector) -> Self {
        self.injectors.push(injector);
        self
    }

    /// The injectors in application order.
    #[must_use]
    pub fn injectors(&self) -> &[Injector] {
        &self.injectors
    }

    /// The master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Validates every injector's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInjector`] naming the injector and the
    /// offending parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        for inj in &self.injectors {
            inj.validate()?;
        }
        Ok(())
    }

    /// Applies the plan to a clip, producing the faulted per-macroblock
    /// stream the simulator consumes. Deterministic: the same plan on the
    /// same clip yields a bit-identical result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInjector`] for invalid parameters,
    /// [`SimError::EmptyWorkload`] for an empty clip and
    /// [`SimError::AllEventsDropped`] if drop faults empty the stream.
    pub fn apply(&self, clip: &ClipWorkload) -> Result<FaultedWorkload, SimError> {
        self.validate()?;
        let mut w = FaultedWorkload::clean(clip)?;
        for (i, inj) in self.injectors.iter().enumerate() {
            // One independent, deterministic sub-stream per injector, so
            // reordering-insensitive draws do not couple injectors.
            let mut rng = ChaCha8Rng::seed_from_u64(
                self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            w.inject(inj, &mut rng);
        }
        if w.is_empty() {
            return Err(SimError::AllEventsDropped);
        }
        Ok(w)
    }
}

/// The per-macroblock stream after fault injection — what the simulator
/// actually runs. Parallel vectors, one entry per (possibly duplicated)
/// macroblock in delivery order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedWorkload {
    /// Compressed bits per macroblock (post bit-error corruption).
    pub bits: Vec<u64>,
    /// PE₁ cycle demand per macroblock.
    pub pe1_cycles: Vec<u64>,
    /// PE₂ cycle demand per macroblock (post demand spikes).
    pub pe2_cycles: Vec<u64>,
    /// Enclosing picture kind per macroblock (drop priority: B before P
    /// before I).
    pub kinds: Vec<FrameKind>,
    /// Original frame index per macroblock (burst-source grouping).
    pub frame_of: Vec<usize>,
    /// Extra seconds added to the bit-arrival instant (jitter).
    pub arrival_delay_s: Vec<f64>,
    /// PE₁ service-time multiplier (clock drift; 1.0 = nominal).
    pub pe1_scale: Vec<f64>,
    /// PE₂ service-time multiplier.
    pub pe2_scale: Vec<f64>,
    /// One-off extra PE₁ service seconds (stalls).
    pub pe1_extra_s: Vec<f64>,
    /// One-off extra PE₂ service seconds.
    pub pe2_extra_s: Vec<f64>,
    /// What was injected.
    pub report: FaultReport,
}

impl FaultedWorkload {
    /// The unfaulted stream of a clip.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyWorkload`] for a clip without macroblocks.
    pub fn clean(clip: &ClipWorkload) -> Result<Self, SimError> {
        let n = clip.macroblock_count();
        if n == 0 {
            return Err(SimError::EmptyWorkload);
        }
        let mut kinds = Vec::with_capacity(n);
        let mut frame_of = Vec::with_capacity(n);
        for (f, frame) in clip.frames().iter().enumerate() {
            for mb in frame.macroblocks() {
                kinds.push(mb.frame);
                frame_of.push(f);
            }
        }
        Ok(Self {
            bits: clip.mb_bits(),
            pe1_cycles: clip.pe1_demands(),
            pe2_cycles: clip.pe2_demands(),
            kinds,
            frame_of,
            arrival_delay_s: vec![0.0; n],
            pe1_scale: vec![1.0; n],
            pe2_scale: vec![1.0; n],
            pe1_extra_s: vec![0.0; n],
            pe2_extra_s: vec![0.0; n],
            report: FaultReport::default(),
        })
    }

    /// Number of macroblocks currently in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the stream is empty (only after catastrophic drop faults).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    fn inject(&mut self, inj: &Injector, rng: &mut ChaCha8Rng) {
        let n = self.len();
        match *inj {
            Injector::JitterBurst {
                start,
                len,
                max_delay_s,
            } => {
                for i in start..(start + len).min(n) {
                    let d = if max_delay_s > 0.0 {
                        rng.gen_range(0.0..max_delay_s)
                    } else {
                        0.0
                    };
                    self.arrival_delay_s[i] += d;
                    if d > 0.0 {
                        self.report.jittered_events += 1;
                    }
                }
            }
            Injector::DropEvents { per_mille } => {
                let p = f64::from(per_mille) / 1000.0;
                let keep: Vec<bool> = (0..n).map(|_| !rng.gen_bool(p)).collect();
                let dropped = keep.iter().filter(|&&k| !k).count();
                if dropped > 0 {
                    self.retain(&keep);
                    self.report.dropped_events += dropped;
                }
            }
            Injector::DuplicateEvents { per_mille } => {
                let p = f64::from(per_mille) / 1000.0;
                let dup: Vec<bool> = (0..n).map(|_| rng.gen_bool(p)).collect();
                let count = dup.iter().filter(|&&d| d).count();
                if count > 0 {
                    self.duplicate(&dup);
                    self.report.duplicated_events += count;
                }
            }
            Injector::DemandSpike {
                start,
                len,
                factor_pct,
            } => {
                for i in start..(start + len).min(n) {
                    if factor_pct != 100 {
                        let scaled =
                            (u128::from(self.pe2_cycles[i]) * u128::from(factor_pct)) / 100;
                        self.pe2_cycles[i] = u64::try_from(scaled).unwrap_or(u64::MAX);
                        self.report.spiked_events += 1;
                    }
                }
            }
            Injector::ClockDrift {
                pe,
                start,
                len,
                factor_pct,
            } => {
                let factor = f64::from(factor_pct) / 100.0;
                for i in start..(start + len).min(n) {
                    if factor_pct != 100 {
                        match pe {
                            ProcessingElement::Pe1 => self.pe1_scale[i] *= factor,
                            ProcessingElement::Pe2 => self.pe2_scale[i] *= factor,
                        }
                        self.report.slowed_events += 1;
                    }
                }
            }
            Injector::Stall { pe, at, extra_s } => {
                if at < n && extra_s > 0.0 {
                    match pe {
                        ProcessingElement::Pe1 => self.pe1_extra_s[at] += extra_s,
                        ProcessingElement::Pe2 => self.pe2_extra_s[at] += extra_s,
                    }
                    self.report.slowed_events += 1;
                }
            }
            Injector::BitErrors { per_mille } => {
                let p = f64::from(per_mille) / 1000.0;
                for i in 0..n {
                    if rng.gen_bool(p) {
                        let max = 2 * self.bits[i].max(1);
                        self.bits[i] = rng.gen_range(1..=max);
                        // VLD loses sync on a corrupted macroblock and
                        // re-scans: double the PE1 cost.
                        self.pe1_cycles[i] = self.pe1_cycles[i].saturating_mul(2);
                        self.report.corrupted_events += 1;
                    }
                }
            }
        }
    }

    /// Keeps entry `i` iff `keep[i]` across every parallel vector.
    fn retain(&mut self, keep: &[bool]) {
        let mut it = keep.iter();
        self.bits.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.pe1_cycles.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.pe2_cycles.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.kinds.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.frame_of.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.arrival_delay_s.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.pe1_scale.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.pe2_scale.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.pe1_extra_s.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.pe2_extra_s.retain(|_| *it.next().unwrap_or(&true));
    }

    /// Inserts a copy of entry `i` right after it for every `dup[i]`.
    fn duplicate(&mut self, dup: &[bool]) {
        fn dup_vec<T: Copy>(v: &[T], dup: &[bool]) -> Vec<T> {
            let mut out = Vec::with_capacity(v.len() + dup.iter().filter(|&&d| d).count());
            for (i, &x) in v.iter().enumerate() {
                out.push(x);
                if dup[i] {
                    out.push(x);
                }
            }
            out
        }
        self.bits = dup_vec(&self.bits, dup);
        self.pe1_cycles = dup_vec(&self.pe1_cycles, dup);
        self.pe2_cycles = dup_vec(&self.pe2_cycles, dup);
        self.kinds = dup_vec(&self.kinds, dup);
        self.frame_of = dup_vec(&self.frame_of, dup);
        self.arrival_delay_s = dup_vec(&self.arrival_delay_s, dup);
        self.pe1_scale = dup_vec(&self.pe1_scale, dup);
        self.pe2_scale = dup_vec(&self.pe2_scale, dup);
        self.pe1_extra_s = dup_vec(&self.pe1_extra_s, dup);
        self.pe2_extra_s = dup_vec(&self.pe2_extra_s, dup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_mpeg::demand::{Pe1Model, Pe2Model};
    use wcm_mpeg::mb::{Macroblock, MacroblockClass};
    use wcm_mpeg::params::{GopStructure, VideoParams};
    use wcm_mpeg::workload::FrameWorkload;

    fn clip(n: usize) -> ClipWorkload {
        let params =
            VideoParams::new(16, 16, 25.0, 1.0e4, GopStructure::new(1, 1).unwrap()).unwrap();
        let mbs: Vec<Macroblock> = (0..n)
            .map(|_| Macroblock {
                frame: FrameKind::I,
                class: MacroblockClass::Intra { coded_blocks: 2 },
                bits: 100,
            })
            .collect();
        ClipWorkload::new(
            "faulty".into(),
            params,
            Pe1Model {
                base: 0,
                cycles_per_bit: 1.0,
                iq_per_block: 0,
            },
            Pe2Model {
                base: 1000,
                idct_per_block: 0,
                mc_single: 0,
                mc_single_field: 0,
                mc_bidirectional: 0,
                mc_bidirectional_field: 0,
                skip_copy: 0,
            },
            vec![FrameWorkload::new(wcm_mpeg::FrameKind::I, mbs)],
        )
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let c = clip(200);
        let plan = FaultPlan::new(7)
            .with(Injector::DropEvents { per_mille: 50 })
            .with(Injector::DuplicateEvents { per_mille: 50 })
            .with(Injector::BitErrors { per_mille: 100 })
            .with(Injector::JitterBurst {
                start: 0,
                len: 200,
                max_delay_s: 0.001,
            });
        let a = plan.apply(&c).unwrap();
        let b = plan.apply(&c).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let c = clip(500);
        let mk = |seed| {
            FaultPlan::new(seed)
                .with(Injector::DropEvents { per_mille: 100 })
                .apply(&c)
                .unwrap()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn zero_intensity_is_noop() {
        let c = clip(100);
        let clean = FaultedWorkload::clean(&c).unwrap();
        let plan = FaultPlan::new(3)
            .with(Injector::JitterBurst {
                start: 0,
                len: 100,
                max_delay_s: 0.0,
            })
            .with(Injector::DropEvents { per_mille: 0 })
            .with(Injector::DuplicateEvents { per_mille: 0 })
            .with(Injector::DemandSpike {
                start: 0,
                len: 100,
                factor_pct: 100,
            })
            .with(Injector::ClockDrift {
                pe: ProcessingElement::Pe2,
                start: 0,
                len: 100,
                factor_pct: 100,
            })
            .with(Injector::Stall {
                pe: ProcessingElement::Pe1,
                at: 5,
                extra_s: 0.0,
            })
            .with(Injector::BitErrors { per_mille: 0 });
        let faulted = plan.apply(&c).unwrap();
        assert_eq!(faulted, clean);
        assert!(faulted.report.is_clean());
    }

    #[test]
    fn spike_scales_demands() {
        let c = clip(10);
        let w = FaultPlan::new(0)
            .with(Injector::DemandSpike {
                start: 2,
                len: 3,
                factor_pct: 250,
            })
            .apply(&c)
            .unwrap();
        assert_eq!(w.pe2_cycles[1], 1000);
        assert_eq!(w.pe2_cycles[2], 2500);
        assert_eq!(w.pe2_cycles[4], 2500);
        assert_eq!(w.pe2_cycles[5], 1000);
        assert_eq!(w.report.spiked_events, 3);
    }

    #[test]
    fn drop_and_duplicate_change_length() {
        let c = clip(1000);
        let dropped = FaultPlan::new(11)
            .with(Injector::DropEvents { per_mille: 200 })
            .apply(&c)
            .unwrap();
        assert!(dropped.len() < 1000);
        assert_eq!(dropped.len(), 1000 - dropped.report.dropped_events);
        let duped = FaultPlan::new(11)
            .with(Injector::DuplicateEvents { per_mille: 200 })
            .apply(&c)
            .unwrap();
        assert!(duped.len() > 1000);
        assert_eq!(duped.len(), 1000 + duped.report.duplicated_events);
        // Parallel vectors stay aligned.
        for w in [&dropped, &duped] {
            assert_eq!(w.bits.len(), w.len());
            assert_eq!(w.pe2_cycles.len(), w.len());
            assert_eq!(w.kinds.len(), w.len());
            assert_eq!(w.frame_of.len(), w.len());
            assert_eq!(w.arrival_delay_s.len(), w.len());
        }
    }

    #[test]
    fn bit_errors_double_pe1_cost() {
        let c = clip(400);
        let w = FaultPlan::new(5)
            .with(Injector::BitErrors { per_mille: 500 })
            .apply(&c)
            .unwrap();
        assert!(w.report.corrupted_events > 0);
        let doubled = w.pe1_cycles.iter().filter(|&&c| c == 200).count();
        assert_eq!(doubled, w.report.corrupted_events);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad = [
            Injector::JitterBurst {
                start: 0,
                len: 1,
                max_delay_s: f64::NAN,
            },
            Injector::DropEvents { per_mille: 1001 },
            Injector::DemandSpike {
                start: 0,
                len: 1,
                factor_pct: 0,
            },
            Injector::ClockDrift {
                pe: ProcessingElement::Pe1,
                start: 0,
                len: 1,
                factor_pct: 50,
            },
            Injector::Stall {
                pe: ProcessingElement::Pe2,
                at: 0,
                extra_s: -1.0,
            },
        ];
        for inj in bad {
            let err = FaultPlan::new(0).with(inj).validate().unwrap_err();
            assert!(matches!(err, SimError::InvalidInjector { .. }));
        }
    }

    #[test]
    fn total_drop_is_reported() {
        let c = clip(5);
        let err = FaultPlan::new(0)
            .with(Injector::DropEvents { per_mille: 1000 })
            .apply(&c)
            .unwrap_err();
        assert_eq!(err, SimError::AllEventsDropped);
    }
}
