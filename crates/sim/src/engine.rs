//! A minimal deterministic discrete-event kernel.
//!
//! Events are `(time, payload)` pairs in a calendar queue; pops come out in
//! time order with FIFO tie-breaking (insertion order within equal
//! timestamps), which keeps simulations deterministic regardless of float
//! coincidences.

use crate::SimError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq). `total_cmp` is a total
        // order, so the comparison itself can never fail; `push` rejects
        // non-finite times before they reach the heap.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event calendar.
///
/// # Example
///
/// ```
/// use wcm_sim::engine::EventQueue;
///
/// # fn main() -> Result<(), wcm_sim::SimError> {
/// let mut q = EventQueue::new();
/// q.push(2.0, "late")?;
/// q.push(1.0, "early")?;
/// q.push(1.0, "early-second")?;
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-second")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NonFiniteTime`] for NaN or infinite `time` —
    /// the queue only ever holds orderable, finite timestamps, so no
    /// comparison inside the heap can fail later.
    pub fn push(&mut self, time: f64, payload: E) -> Result<(), SimError> {
        if !time.is_finite() {
            return Err(SimError::NonFiniteTime { time });
        }
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        Ok(())
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(3.0, 3).unwrap();
        q.push(1.0, 1).unwrap();
        q.push(2.0, 2).unwrap();
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
    }

    #[test]
    fn fifo_within_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5.0, i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7.0, ()).unwrap();
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn rejects_non_finite_times() {
        let mut q = EventQueue::new();
        assert!(matches!(
            q.push(f64::NAN, ()),
            Err(SimError::NonFiniteTime { .. })
        ));
        assert!(matches!(
            q.push(f64::INFINITY, ()),
            Err(SimError::NonFiniteTime { .. })
        ));
        assert!(matches!(
            q.push(f64::NEG_INFINITY, ()),
            Err(SimError::NonFiniteTime { .. })
        ));
        // The queue stays usable after a rejected push.
        assert!(q.is_empty());
        q.push(1.0, ()).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn negative_times_are_orderable() {
        let mut q = EventQueue::new();
        q.push(-1.0, "before").unwrap();
        q.push(0.0, "origin").unwrap();
        assert_eq!(q.pop(), Some((-1.0, "before")));
        assert_eq!(q.pop(), Some((0.0, "origin")));
    }
}
