//! Parallel design-space exploration with analytic pruning.
//!
//! The paper's sizing question — *how slow may PE₂ be clocked, and how
//! small may the FIFO be, before the decoder drops macroblocks?* — is a
//! sweep over a `(clip × frequency × capacity × policy × fault-seed)`
//! grid. Simulating every point is wasteful: eqs. 8–10 already decide
//! most of them analytically.
//!
//! For each clip the engine builds, **once**, the measured arrival curve
//! `ᾱᵘ` at the FIFO input, the PE₂ workload bounds `γᵘ/γˡ`, and the exact
//! minimal spans of the arrival process. A pre-pass then classifies every
//! clean grid point:
//!
//! * **provably safe** — `F ≥ F^γ_min(ᾱᵘ, γᵘ, b)` (eq. 9): the
//!   no-overflow constraint of eq. 8 holds, no simulation needed;
//! * **provably unsafe** — [`wcm_core::sizing::provably_overflows`]
//!   certifies via `γˡ` that some `k`-event burst must exceed the
//!   capacity at this frequency;
//! * **uncertain** — only the band between the WCET bound and the
//!   workload-curve bound (the paper's ≈710 MHz vs ≈340 MHz gap) is
//!   actually simulated, on the heap-free hot path of [`crate::pipeline`]
//!   with one reusable [`SimScratch`] per worker.
//!
//! **Fault-seeded points prune too** when the seed's PE₂ fault shape
//! keeps the analytic model exact: the FIFO-input recurrence replays the
//! seed's jitter/drift/stall on PE₁ bit-for-bit, per-seed `ᾱᵘ`/`γᵘ` are
//! derived from the *faulted* stream, and the demand curves reuse the
//! clean stream's mergeable chunk summaries
//! ([`wcm_events::summary::CurveSummary`]) over the unperturbed prefix —
//! only the injector-touched suffix is re-summarized. The safe bound
//! (eq. 9) requires PE₂ service to scale exactly as `c/F`
//! (`pe2_scale ≡ 1`, `pe2_extra ≡ 0`); the overflow certificate only
//! needs service to be *no faster* (`pe2_scale ≥ 1`, `pe2_extra ≥ 0`).
//! Seeds outside those envelopes fall back to simulation.
//!
//! Evaluation runs on [`wcm_par::par_map_init`]: dynamic block dispatch
//! over the grid, results placed by index, so the report is **bit
//! identical for any `--threads` setting**. The report deliberately
//! carries no wall-clock fields for the same reason.

use crate::faults::{FaultPlan, FaultedWorkload, Injector};
use crate::pipeline::{
    simulate_faulted, FifoConfig, OverflowPolicy, PipelineConfig, SimScratch, SourceModel,
};
use crate::SimError;
use wcm_core::build::arrival_upper_with;
use wcm_core::curve::{LowerWorkloadCurve, UpperWorkloadCurve};
use wcm_core::sizing;
use wcm_core::WorkloadError;
use wcm_events::summary::{CurveSummary, Sides};
use wcm_events::window::{min_spans_with, WindowMode};
use wcm_events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm_mpeg::ClipWorkload;
use wcm_par::Parallelism;
use wcm_sched::{rms, PeriodicTask, TaskSet};

/// Relative safety margin applied to `F^γ_min` before a point is declared
/// provably safe: absorbs the float rounding between the analytic bound
/// and the simulator's arithmetic without giving up real pruning.
pub const SAFE_MARGIN: f64 = 1e-6;

/// The grid and analysis parameters of one sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// PE₁ clock in Hz (fixed across the sweep; PE₁ paces the FIFO input).
    pub pe1_hz: f64,
    /// Candidate PE₂ clock frequencies in Hz.
    pub frequencies_hz: Vec<f64>,
    /// Candidate FIFO capacities in macroblocks (in-service one included).
    pub capacities: Vec<u64>,
    /// Overflow policies to evaluate.
    pub policies: Vec<OverflowPolicy>,
    /// Fault seeds; `None` is the clean stream. Seeded points also go
    /// through the analytic pre-pass when the seed's PE₂ faults keep the
    /// model sound (see the module docs); otherwise they simulate.
    pub seeds: Vec<Option<u64>>,
    /// Injectors applied under each `Some` seed.
    pub injectors: Vec<Injector>,
    /// Analysis window (events) for `ᾱᵘ` and `γᵘ`.
    pub k_max: usize,
    /// Window mode for the `k_max`-deep curves.
    pub mode: WindowMode,
    /// Depth (events) of the span/`γˡ` analysis feeding the overflow
    /// certificate. The certificate only uses exactly-computed grid
    /// windows (gap-filled strided spans would be unsound there), so deep
    /// certificates stay cheap: cost grows with `cert_depth / stride`,
    /// not `cert_depth` itself. Must exceed the largest capacity for the
    /// unsafe pre-pass to be able to fire at all.
    pub cert_depth: usize,
    /// Run the analytic pre-pass (`false` simulates every point).
    pub prune: bool,
}

/// How a grid point was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// eq. 8 holds at this frequency/capacity: cannot overflow.
    ProvablySafe,
    /// A `γˡ` burst certificate shows the capacity must be exceeded.
    ProvablyUnsafe,
    /// Simulated; no overflow event occurred.
    SimOk,
    /// Simulated; the FIFO hit capacity (stall or drop, per policy).
    SimOverflow,
}

impl Verdict {
    /// Whether the point overflows (analytically or in simulation).
    #[must_use]
    pub fn overflowed(self) -> bool {
        matches!(self, Verdict::ProvablyUnsafe | Verdict::SimOverflow)
    }

    /// Whether the verdict came from an actual simulation run.
    #[must_use]
    pub fn simulated(self) -> bool {
        matches!(self, Verdict::SimOk | Verdict::SimOverflow)
    }

    /// Stable lower-snake label used in the JSON/CSV reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::ProvablySafe => "provably_safe",
            Verdict::ProvablyUnsafe => "provably_unsafe",
            Verdict::SimOk => "sim_ok",
            Verdict::SimOverflow => "sim_overflow",
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// Clip name.
    pub clip: String,
    /// PE₂ clock in Hz.
    pub frequency_hz: f64,
    /// FIFO capacity in macroblocks.
    pub capacity: u64,
    /// Overflow policy.
    pub policy: OverflowPolicy,
    /// Fault seed (`None` = clean).
    pub seed: Option<u64>,
    /// The decision.
    pub verdict: Verdict,
    /// Peak FIFO occupancy (simulated points only).
    pub max_backlog: Option<u64>,
    /// Dropped macroblocks (simulated points only).
    pub dropped: Option<usize>,
    /// Seconds PE₁ spent blocked on a full FIFO (simulated points only).
    pub pe1_stalled_s: Option<f64>,
}

/// Lehoczky RMS advisory for one `(clip, frequency)` column: whether a
/// rate-monotonic PE₂ task with the clip's `γᵘ` attached passes the
/// workload-curve test of eq. 4. Advisory only — the pipeline is not
/// scheduled RMS — but a useful cross-check against the sweep verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsAdvisory {
    /// Clip name.
    pub clip: String,
    /// PE₂ clock in Hz.
    pub frequency_hz: f64,
    /// `L ≤ 1` under the workload-curve Lehoczky test.
    pub schedulable: bool,
    /// The load factor `L` itself.
    pub l_factor: f64,
}

/// Aggregate counters of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Grid points in total.
    pub total: usize,
    /// Points decided safe analytically (no simulation).
    pub pruned_safe: usize,
    /// Points decided unsafe analytically (no simulation).
    pub pruned_unsafe: usize,
    /// Points actually simulated.
    pub simulated: usize,
    /// Points that overflow (any verdict source).
    pub overflowed: usize,
}

impl SweepStats {
    /// Fraction of points skipped by the analytic pre-pass.
    #[must_use]
    pub fn pruned_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.pruned_safe + self.pruned_unsafe) as f64 / self.total as f64
    }
}

/// The full result of [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Every grid point, in deterministic grid order
    /// (clip-major, then frequency, capacity, policy, seed).
    pub points: Vec<PointReport>,
    /// Per-`(clip, frequency)` RMS advisories.
    pub advisories: Vec<RmsAdvisory>,
    /// Aggregate counters.
    pub stats: SweepStats,
    /// Frequency/capacity Pareto frontier: the non-dominated
    /// `(frequency_hz, capacity)` pairs for which **no** clean point of
    /// any clip/policy overflows, sorted by frequency then capacity.
    /// One-axis ties survive (domination is strict), exactly-equal pairs
    /// from duplicate axis values are collapsed to one entry — see
    /// `nondominated` for the full tie contract.
    pub pareto: Vec<(f64, u64)>,
}

/// Errors of the sweep engine.
#[derive(Debug)]
pub enum SweepError {
    /// A simulation failed.
    Sim(SimError),
    /// Curve construction or sizing failed.
    Analysis(WorkloadError),
    /// The spec itself is unusable.
    Invalid(&'static str),
    /// A [`SweepSink`] failed to accept a result (I/O on the underlying
    /// writer).
    Io(std::io::Error),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Sim(e) => write!(f, "simulation: {e}"),
            SweepError::Analysis(e) => write!(f, "analysis: {e}"),
            SweepError::Invalid(what) => write!(f, "invalid sweep spec: {what}"),
            SweepError::Io(e) => write!(f, "sweep sink I/O: {e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Sim(e) => Some(e),
            SweepError::Analysis(e) => Some(e),
            SweepError::Invalid(_) => None,
            SweepError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<SimError> for SweepError {
    fn from(e: SimError) -> Self {
        SweepError::Sim(e)
    }
}

impl From<WorkloadError> for SweepError {
    fn from(e: WorkloadError) -> Self {
        SweepError::Analysis(e)
    }
}

impl From<wcm_events::EventError> for SweepError {
    fn from(e: wcm_events::EventError) -> Self {
        SweepError::Analysis(WorkloadError::from(e))
    }
}

/// Per-seed analytic prune data. Absent (`None` in
/// [`ClipContext::prune`]) when the seed's PE₂ fault shape invalidates
/// both analytic bounds — then every point of that seed simulates.
struct SeedPrune {
    /// `F^γ_min` per capacity index, from the seed's own `ᾱᵘ`/`γᵘ`
    /// (`None` when eq. 9 is infeasible or the safe gate failed — then
    /// the point cannot be proven safe).
    f_min: Vec<Option<f64>>,
    /// Exact minimal spans `(k, d(k))` of the seed's FIFO-input times on
    /// the certificate grid (empty when the unsafe gate failed).
    cert_spans: Vec<(u64, f64)>,
    /// `γˡ` of the seed's demand to the certificate depth (`None` when
    /// the unsafe gate failed).
    cert_gamma_l: Option<LowerWorkloadCurve>,
    /// Largest single-event demand — in-service credit of the overflow
    /// certificate.
    gamma_u1: Cycles,
}

/// Everything the evaluator needs about one clip, computed once and
/// shared read-only across all workers and grid points.
struct ClipContext {
    name: String,
    bitrate_bps: f64,
    frame_period: f64,
    /// `streams[seed_idx]` — the (possibly faulted) workload per seed.
    streams: Vec<FaultedWorkload>,
    /// `prune[seed_idx]` — analytic prune data per seed.
    prune: Vec<Option<SeedPrune>>,
    /// Lehoczky advisory per frequency index.
    rms: Vec<Option<(bool, f64)>>,
}

/// The FIFO-input instants of a (possibly faulted) stream in O(N):
/// without backpressure the PE₁ output obeys
/// `done_i = max(done_{i-1}, ready_i) + (c₁ᵢ/F₁)·scaleᵢ + extraᵢ` with
/// `ready_i = cum_bits/rate + delayᵢ` — PE₁ serves macroblocks in stream
/// order regardless of arrival reordering, so this is exactly the
/// recurrence the event loop executes. Clean streams multiply by 1.0 and
/// add 0.0, both exact in IEEE-754, so the times stay bit-identical to a
/// simulated run.
fn push_times_of(w: &FaultedWorkload, bitrate_bps: f64, pe1_hz: f64) -> Vec<f64> {
    let n = w.len();
    let mut push_times = Vec::with_capacity(n);
    let mut cum_bits = 0.0f64;
    let mut done = 0.0f64;
    for i in 0..n {
        cum_bits += w.bits[i] as f64;
        let ready = cum_bits / bitrate_bps + w.arrival_delay_s[i];
        done = done.max(ready) + (w.pe1_cycles[i] as f64 / pe1_hz) * w.pe1_scale[i]
            + w.pe1_extra_s[i];
        push_times.push(done);
    }
    push_times
}

/// Chunked [`CurveSummary`]s of the clean demand stream on one grid —
/// the memo that lets every fault seed re-summarize only the
/// injector-touched suffix of its demand vector.
struct DemandMemo {
    grid: Vec<usize>,
    chunk: usize,
    chunks: Vec<CurveSummary>,
    sides: Sides,
}

impl DemandMemo {
    fn build(clean: &[u64], grid: Vec<usize>, sides: Sides, par: Parallelism) -> Self {
        // Chunk length is a pure function of the grid so every thread
        // count sees identical chunks (merging is exact either way; this
        // just keeps the memo itself deterministic). 4·k_max keeps the
        // O(k_max) boundary arrays a small fraction of each chunk.
        let k_max = *grid.last().expect("grid is non-empty");
        let chunk = (4 * k_max).max(256);
        let ranges: Vec<(usize, usize)> = (0..clean.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(clean.len())))
            .collect();
        let cost = clean.len() as u64 * grid.len() as u64;
        let chunks = wcm_par::par_map(par, &ranges, cost, |_, &(s, e)| {
            CurveSummary::from_values(&clean[s..e], &grid, sides)
        });
        Self {
            grid,
            chunk,
            chunks,
            sides,
        }
    }

    /// Dense window-sum table of `demand` on `grid`, reusing every memo
    /// chunk that lies fully inside the common prefix of `demand` and the
    /// clean stream. Exact-merge associativity makes the result
    /// bit-identical to a from-scratch scan of `demand`.
    fn dense_for(&self, demand: &[u64], clean: &[u64], grid: &[usize]) -> Vec<u64> {
        let summary = if grid == self.grid {
            let lcp = demand
                .iter()
                .zip(clean)
                .take_while(|(a, b)| a == b)
                .count();
            let full = (lcp / self.chunk).min(self.chunks.len());
            if full > 0 {
                let shared = full * self.chunk;
                // In-place fold: one accumulator reused across all chunk
                // merges instead of a fresh summary per merge.
                let mut acc = self.chunks[0].clone();
                for c in &self.chunks[1..full] {
                    acc.merge_in_place(c);
                }
                acc.merge_in_place(&CurveSummary::from_values(
                    &demand[shared..],
                    grid,
                    self.sides,
                ));
                acc
            } else {
                CurveSummary::from_values(demand, grid, self.sides)
            }
        } else {
            // Drop/duplication faults changed the stream length enough to
            // change the grid: no sharing possible.
            CurveSummary::from_values(demand, grid, self.sides)
        };
        match self.sides {
            Sides::Min => summary.dense_min().expect("len ≥ k_max by construction"),
            _ => summary.dense_max().expect("len ≥ k_max by construction"),
        }
    }
}

impl ClipContext {
    fn build(
        clip: &ClipWorkload,
        spec: &SweepSpec,
        par: Parallelism,
    ) -> Result<Self, SweepError> {
        let clean = FaultedWorkload::clean(clip)?;
        let n = clean.len();
        let k_max = spec.k_max.min(n);
        let cert_depth = spec.cert_depth.min(n).max(1);

        // The certificate needs *exact* spans — a strided gap-fill
        // under-approximates the span and would claim overflow where none
        // exists — but it does not need *every* window size: each grid
        // `k` yields an independent, individually sound certificate, and
        // the certificate is only useful for `k > capacity` anyway. So
        // compute spans on a coarse grid (every `stride`-th window) and
        // keep only the exactly-computed entries. The strided `γˡ`
        // gap-fill under-approximates demand, which merely weakens the
        // certificate — sound as-is.
        let cert_stride = match spec.mode {
            WindowMode::Exact => 1,
            WindowMode::Strided { stride, .. } => stride.max(1),
        };
        let cert_mode = WindowMode::Strided {
            exact_upto: 1,
            stride: cert_stride,
        };

        // Clean-demand chunk summaries, shared by every seed whose demand
        // vector keeps a common prefix with the clean stream.
        let upper_memo = DemandMemo::build(
            &clean.pe2_cycles,
            spec.mode.grid(k_max),
            Sides::Max,
            par,
        );
        let lower_memo = DemandMemo::build(
            &clean.pe2_cycles,
            cert_mode.grid(cert_depth),
            Sides::Min,
            par,
        );

        let mut streams = Vec::with_capacity(spec.seeds.len());
        for seed in &spec.seeds {
            streams.push(match seed {
                None => FaultedWorkload::clean(clip)?,
                Some(s) => {
                    let mut plan = FaultPlan::new(*s);
                    for inj in &spec.injectors {
                        plan = plan.with(inj.clone());
                    }
                    plan.apply(clip)?
                }
            });
        }

        let mut prune = Vec::with_capacity(streams.len());
        let mut clean_gamma_u: Option<UpperWorkloadCurve> = None;
        for w in &streams {
            let sp = Self::seed_prune(
                w,
                &clean,
                spec,
                par,
                clip.params().bitrate_bps(),
                cert_mode,
                &upper_memo,
                &lower_memo,
                &mut clean_gamma_u,
            )?;
            prune.push(sp);
        }

        // Advisory column: one RMS task per clip, one macroblock per
        // period, the clip's (clean) γᵘ as its demand curve.
        let gamma_u = match clean_gamma_u {
            Some(g) => g,
            None => UpperWorkloadCurve::new(upper_memo.dense_for(
                &clean.pe2_cycles,
                &clean.pe2_cycles,
                &upper_memo.grid,
            ))?,
        };
        let rms = {
            let period = 1.0 / clip.params().mb_rate();
            let task_set = PeriodicTask::new(clip.name(), period, gamma_u.wcet())
                .and_then(|t| t.with_curve(gamma_u.clone()))
                .and_then(|t| TaskSet::new(vec![t]));
            spec.frequencies_hz
                .iter()
                .map(|&f| {
                    task_set.as_ref().ok().and_then(|set| {
                        rms::lehoczky_workload(set, f)
                            .ok()
                            .map(|a| (a.schedulable(), a.l))
                    })
                })
                .collect()
        };

        Ok(ClipContext {
            name: clip.name().to_string(),
            bitrate_bps: clip.params().bitrate_bps(),
            frame_period: clip.params().frame_period(),
            streams,
            prune,
            rms,
        })
    }

    /// Analytic prune data for one seed's stream, or `None` when its PE₂
    /// fault shape escapes both analytic models.
    #[allow(clippy::too_many_arguments)]
    fn seed_prune(
        w: &FaultedWorkload,
        clean: &FaultedWorkload,
        spec: &SweepSpec,
        par: Parallelism,
        bitrate_bps: f64,
        cert_mode: WindowMode,
        upper_memo: &DemandMemo,
        lower_memo: &DemandMemo,
        clean_gamma_u: &mut Option<UpperWorkloadCurve>,
    ) -> Result<Option<SeedPrune>, SweepError> {
        let n = w.len();
        if n == 0 {
            return Ok(None);
        }
        // Safe bound (eq. 9): PE₂ service must be exactly `c/F` so the
        // frequency threshold transfers. Overflow certificate: service
        // must be *no faster* than `c/F` so the cycle budget `F·d` stays
        // an over-approximation of what PE₂ can retire.
        let safe_ok = w.pe2_scale.iter().all(|&s| s == 1.0)
            && w.pe2_extra_s.iter().all(|&e| e == 0.0);
        let unsafe_ok = w.pe2_scale.iter().all(|&s| s >= 1.0)
            && w.pe2_extra_s.iter().all(|&e| e >= 0.0);
        if !safe_ok && !unsafe_ok {
            return Ok(None);
        }

        let k_max = spec.k_max.min(n);
        let cert_depth = spec.cert_depth.min(n).max(1);
        let push_times = push_times_of(w, bitrate_bps, spec.pe1_hz);

        let f_min = if safe_ok {
            let gamma_u = UpperWorkloadCurve::new(upper_memo.dense_for(
                &w.pe2_cycles,
                &clean.pe2_cycles,
                &spec.mode.grid(k_max),
            ))?;
            let trace = times_to_trace(&push_times)?;
            let alpha = arrival_upper_with(&trace, k_max, spec.mode, par)?;
            let out = spec
                .capacities
                .iter()
                .map(|&cap| sizing::min_frequency_workload(&alpha, &gamma_u, cap).ok())
                .collect();
            if std::ptr::eq(w, clean) || w.pe2_cycles == clean.pe2_cycles {
                *clean_gamma_u = clean_gamma_u.take().or(Some(gamma_u));
            }
            out
        } else {
            vec![None; spec.capacities.len()]
        };

        let (cert_spans, cert_gamma_l) = if unsafe_ok {
            let span_table = min_spans_with(&push_times, cert_depth, cert_mode, par)?;
            let spans: Vec<(u64, f64)> = cert_mode
                .grid(cert_depth)
                .into_iter()
                .map(|k| (k as u64, span_table[k - 1]))
                .collect();
            let gamma_l = LowerWorkloadCurve::new(lower_memo.dense_for(
                &w.pe2_cycles,
                &clean.pe2_cycles,
                &cert_mode.grid(cert_depth),
            ))?;
            (spans, Some(gamma_l))
        } else {
            (Vec::new(), None)
        };

        // In-service credit: the largest single-event demand of *this*
        // stream (over-crediting only weakens the certificate).
        let gamma_u1 = Cycles(w.pe2_cycles.iter().copied().max().unwrap_or(0));

        Ok(Some(SeedPrune {
            f_min,
            cert_spans,
            cert_gamma_l,
            gamma_u1,
        }))
    }
}

/// One grid point by axis indices.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    clip: usize,
    freq: usize,
    cap: usize,
    policy: usize,
    seed: usize,
}

/// Simulation extras of a point: `(max_backlog, dropped, pe1_stalled_s)`.
type SimDigest = (u64, usize, f64);

/// Counter name for a verdict (`sweep.verdict.<label>`).
fn verdict_counter(v: Verdict) -> &'static str {
    match v {
        Verdict::ProvablySafe => "sweep.verdict.provably_safe",
        Verdict::ProvablyUnsafe => "sweep.verdict.provably_unsafe",
        Verdict::SimOk => "sweep.verdict.sim_ok",
        Verdict::SimOverflow => "sweep.verdict.sim_overflow",
    }
}

/// Analytic verdicts for the whole grid, computed **before** point
/// evaluation starts: for each `(clip, seed, capacity)` the contiguous
/// run of frequencies goes through
/// [`sizing::provably_overflows_batch`] in one autovectorizable pass
/// over the seed's shared prefix summaries, then the eq. 9 safe bound is
/// overlaid (safe wins on overlap, matching the order the scalar path
/// checked them in). Point evaluation degrades to a table lookup.
///
/// The table is a pure function of `(ctxs, spec)` — policies don't enter
/// the analytic bounds, thread counts don't enter the table — so reports
/// stay bit-identical to the per-point pruning it replaces.
struct AnalyticTable {
    n_freq: usize,
    n_cap: usize,
    n_seed: usize,
    /// `((clip·S + seed)·C + cap)·F + freq`; empty when pruning is off.
    verdicts: Vec<Option<Verdict>>,
}

impl AnalyticTable {
    fn build(ctxs: &[ClipContext], spec: &SweepSpec) -> Self {
        let n_freq = spec.frequencies_hz.len();
        let n_cap = spec.capacities.len();
        let n_seed = spec.seeds.len();
        if !spec.prune {
            return Self {
                n_freq,
                n_cap,
                n_seed,
                verdicts: Vec::new(),
            };
        }
        let _span = wcm_obs::span("sweep.analytic_table");
        let mut verdicts = vec![None; ctxs.len() * n_seed * n_cap * n_freq];
        let mut unsafe_run = vec![false; n_freq];
        for (ci, ctx) in ctxs.iter().enumerate() {
            for (si, pr) in ctx.prune.iter().enumerate() {
                let Some(pr) = pr else { continue };
                for (bi, &cap) in spec.capacities.iter().enumerate() {
                    let base = ((ci * n_seed + si) * n_cap + bi) * n_freq;
                    let run = &mut verdicts[base..base + n_freq];
                    if let Some(gamma_l) = &pr.cert_gamma_l {
                        sizing::provably_overflows_batch(
                            &pr.cert_spans,
                            gamma_l,
                            pr.gamma_u1,
                            &spec.frequencies_hz,
                            cap,
                            &mut unsafe_run,
                        );
                        for (v, &u) in run.iter_mut().zip(&unsafe_run) {
                            if u {
                                *v = Some(Verdict::ProvablyUnsafe);
                            }
                        }
                    }
                    // Overlaid last: the scalar path tested the safe
                    // bound first, so on overlap safe must win here too.
                    if let Some(f_min) = pr.f_min[bi] {
                        for (v, &freq) in run.iter_mut().zip(&spec.frequencies_hz) {
                            if freq >= f_min * (1.0 + SAFE_MARGIN) {
                                *v = Some(Verdict::ProvablySafe);
                            }
                        }
                    }
                }
            }
        }
        Self {
            n_freq,
            n_cap,
            n_seed,
            verdicts,
        }
    }

    fn verdict(&self, p: GridPoint) -> Option<Verdict> {
        if self.verdicts.is_empty() {
            return None;
        }
        self.verdicts
            [((p.clip * self.n_seed + p.seed) * self.n_cap + p.cap) * self.n_freq + p.freq]
    }
}

/// [`eval_point_inner`] plus observability: per-verdict counters and
/// time-in-prune vs time-in-sim histograms. Timing happens only with the
/// recorder enabled and never influences the returned value, so reports stay
/// bit-identical whether or not a recorder is live.
fn eval_point(
    p: GridPoint,
    ctxs: &[ClipContext],
    spec: &SweepSpec,
    table: &AnalyticTable,
    scratch: &mut SimScratch,
) -> Result<(Verdict, Option<SimDigest>), SimError> {
    if !wcm_obs::enabled() {
        return eval_point_inner(p, ctxs, spec, table, scratch);
    }
    let t0 = wcm_obs::now_ns();
    let out = eval_point_inner(p, ctxs, spec, table, scratch);
    let dt = wcm_obs::now_ns().saturating_sub(t0);
    match &out {
        Ok((verdict, sim)) => {
            wcm_obs::counter(verdict_counter(*verdict), 1);
            if sim.is_some() {
                wcm_obs::histogram("sweep.sim_ns", dt);
            } else {
                wcm_obs::histogram("sweep.prune_ns", dt);
            }
        }
        Err(_) => wcm_obs::counter("sweep.verdict.error", 1),
    }
    out
}

fn eval_point_inner(
    p: GridPoint,
    ctxs: &[ClipContext],
    spec: &SweepSpec,
    table: &AnalyticTable,
    scratch: &mut SimScratch,
) -> Result<(Verdict, Option<SimDigest>), SimError> {
    let ctx = &ctxs[p.clip];
    let freq = spec.frequencies_hz[p.freq];
    let cap = spec.capacities[p.cap];

    if let Some(verdict) = table.verdict(p) {
        return Ok((verdict, None));
    }

    let cfg = PipelineConfig {
        bitrate_bps: ctx.bitrate_bps,
        pe1_hz: spec.pe1_hz,
        pe2_hz: freq,
    };
    let fifo = FifoConfig::bounded(cap, spec.policies[p.policy]);
    let summary = simulate_faulted(
        &ctx.streams[p.seed],
        &cfg,
        &fifo,
        SourceModel::Cbr,
        ctx.frame_period,
        None,
        scratch,
    )?;
    let verdict = if summary.overflowed {
        Verdict::SimOverflow
    } else {
        Verdict::SimOk
    };
    Ok((
        verdict,
        Some((summary.max_backlog, summary.dropped, summary.pe1_stalled)),
    ))
}

/// Runs the sweep over `clips × spec` with the given parallelism.
///
/// The returned report is deterministic: identical for every `par`
/// setting, including the order of `points`.
///
/// # Errors
///
/// [`SweepError::Invalid`] for an empty grid axis or non-positive PE₁
/// clock; otherwise propagates simulation/analysis errors.
pub fn run_sweep(
    clips: &[ClipWorkload],
    spec: &SweepSpec,
    par: Parallelism,
) -> Result<SweepReport, SweepError> {
    validate(clips, spec)?;

    let _span = wcm_obs::span("sweep.run");

    // Phase 1: per-clip analysis, memoized once (the window scans inside
    // already honour `par`).
    let ctxs: Vec<ClipContext> = {
        let _span = wcm_obs::span("sweep.clip_analysis");
        clips
            .iter()
            .map(|c| ClipContext::build(c, spec, par))
            .collect::<Result<_, _>>()?
    };

    // Phase 2: enumerate the grid in deterministic nested order.
    let mut grid = Vec::new();
    for clip in 0..clips.len() {
        for freq in 0..spec.frequencies_hz.len() {
            for cap in 0..spec.capacities.len() {
                for policy in 0..spec.policies.len() {
                    for seed in 0..spec.seeds.len() {
                        grid.push(GridPoint {
                            clip,
                            freq,
                            cap,
                            policy,
                            seed,
                        });
                    }
                }
            }
        }
    }

    // Phase 3: batch-classify the grid analytically (one vectorized pass
    // per (clip, seed, capacity) over the frequency run), then
    // classify/simulate the rest in parallel, one reusable scratch per
    // worker. Results land by index: grid order in, grid order out.
    let table = AnalyticTable::build(&ctxs, spec);
    let events_per_point = clips.iter().map(ClipWorkload::macroblock_count).sum::<usize>()
        / clips.len();
    let cost = (grid.len() as u64) * (events_per_point as u64).max(1) * 16;
    wcm_obs::counter("sweep.points", grid.len() as u64);
    let evaluated = {
        let _span = wcm_obs::span("sweep.eval");
        wcm_par::par_map_init(par, &grid, cost, SimScratch::new, |scratch, _, p| {
            eval_point(*p, &ctxs, spec, &table, scratch)
        })
    };

    let mut points = Vec::with_capacity(grid.len());
    let mut stats = SweepStats {
        total: grid.len(),
        ..SweepStats::default()
    };
    for (p, out) in grid.iter().zip(evaluated) {
        let (verdict, sim) = out?;
        match verdict {
            Verdict::ProvablySafe => stats.pruned_safe += 1,
            Verdict::ProvablyUnsafe => stats.pruned_unsafe += 1,
            Verdict::SimOk | Verdict::SimOverflow => stats.simulated += 1,
        }
        if verdict.overflowed() {
            stats.overflowed += 1;
        }
        if let Some((b, _, _)) = sim {
            wcm_obs::gauge_max("sweep.max_backlog", b);
        }
        points.push(PointReport {
            clip: ctxs[p.clip].name.clone(),
            frequency_hz: spec.frequencies_hz[p.freq],
            capacity: spec.capacities[p.cap],
            policy: spec.policies[p.policy],
            seed: spec.seeds[p.seed],
            verdict,
            max_backlog: sim.map(|(b, _, _)| b),
            dropped: sim.map(|(_, d, _)| d),
            pe1_stalled_s: sim.map(|(_, _, s)| s),
        });
    }

    let advisories = ctxs
        .iter()
        .flat_map(|ctx| {
            spec.frequencies_hz
                .iter()
                .zip(&ctx.rms)
                .filter_map(|(&f, r)| {
                    r.map(|(schedulable, l)| RmsAdvisory {
                        clip: ctx.name.clone(),
                        frequency_hz: f,
                        schedulable,
                        l_factor: l,
                    })
                })
        })
        .collect();

    let pareto = pareto_frontier(&points, spec);
    Ok(SweepReport {
        points,
        advisories,
        stats,
        pareto,
    })
}

/// Axis-validity checks shared by [`run_sweep`] and [`run_frontier`].
fn validate(clips: &[ClipWorkload], spec: &SweepSpec) -> Result<(), SweepError> {
    if clips.is_empty() {
        return Err(SweepError::Invalid("no clips"));
    }
    if spec.frequencies_hz.is_empty()
        || spec.capacities.is_empty()
        || spec.policies.is_empty()
        || spec.seeds.is_empty()
    {
        return Err(SweepError::Invalid("an axis of the grid is empty"));
    }
    if !(spec.pe1_hz.is_finite() && spec.pe1_hz > 0.0) {
        return Err(SweepError::Invalid("pe1_hz must be positive and finite"));
    }
    if spec.k_max == 0 {
        return Err(SweepError::Invalid("k_max must be at least 1"));
    }
    if spec
        .frequencies_hz
        .iter()
        .any(|f| !(f.is_finite() && *f > 0.0))
    {
        return Err(SweepError::Invalid(
            "frequencies must be positive and finite",
        ));
    }
    Ok(())
}

/// Non-dominated `(frequency, capacity)` pairs where no clean point of
/// any clip/policy overflows.
fn pareto_frontier(points: &[PointReport], spec: &SweepSpec) -> Vec<(f64, u64)> {
    pareto_frontier_values(points, &spec.frequencies_hz, &spec.capacities)
}

/// [`pareto_frontier`] against explicit axis vectors — the form
/// [`merge_shards`] uses, where the axes come off the wire instead of a
/// [`SweepSpec`]. Cells are compared **by axis value**: a `(f, c)` cell
/// is safe only if *no* clean point with that frequency value and
/// capacity value overflows, so duplicate axis entries share one fate.
fn pareto_frontier_values(
    points: &[PointReport],
    frequencies_hz: &[f64],
    capacities: &[u64],
) -> Vec<(f64, u64)> {
    // One pass over the points instead of one scan per cell: mark
    // clean-seed overflows on a cell bitmap at *canonical* axis
    // positions (duplicate axis values share one cell), then enumerate
    // only canonical cells. O(points + cells) where the naive by-value
    // scan is O(cells x points) — the difference between seconds and
    // hours on a million-point grid — and hands `nondominated` a
    // duplicate-free safe set. Bit-pattern map keys are value-exact
    // here: axis validation rejects NaN and non-positive frequencies,
    // and even a ±0.0 pair would collapse through `canonical_positions`
    // (which compares by `==`) before the keys are consulted.
    let f_canon = canonical_positions(frequencies_hz);
    let c_canon = canonical_positions(capacities);
    let f_at: std::collections::HashMap<u64, usize> = frequencies_hz
        .iter()
        .enumerate()
        .map(|(i, f)| (f.to_bits(), f_canon[i]))
        .collect();
    let c_at: std::collections::HashMap<u64, usize> = capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, c_canon[i]))
        .collect();
    let mut overflow = vec![false; frequencies_hz.len() * capacities.len()];
    for p in points {
        if p.seed.is_none() && p.verdict.overflowed() {
            if let (Some(&fi), Some(&ci)) =
                (f_at.get(&p.frequency_hz.to_bits()), c_at.get(&p.capacity))
            {
                overflow[fi * capacities.len() + ci] = true;
            }
        }
    }
    let mut safe: Vec<(f64, u64)> = Vec::new();
    for (fi, &f) in frequencies_hz.iter().enumerate() {
        if f_canon[fi] != fi {
            continue;
        }
        for (ci, &c) in capacities.iter().enumerate() {
            if c_canon[ci] != ci {
                continue;
            }
            if !overflow[fi * capacities.len() + ci] {
                safe.push((f, c));
            }
        }
    }
    nondominated(&safe)
}

/// Strict-domination filter + canonical sort shared by the dense
/// [`pareto_frontier`], [`run_frontier`] and the streaming online
/// accumulator of [`run_sweep_streaming`] — one implementation so the
/// paths cannot drift apart on ties or duplicate axis values.
///
/// Tie/duplicate contract (also the contract of [`SweepReport::pareto`]):
///
/// * two *distinct* pairs that tie on one axis (e.g. `(f, 4)` and
///   `(f, 8)`) do **not** dominate each other — domination is strict in
///   at least one axis — so both survive when nothing else dominates
///   them;
/// * *exactly equal* pairs (duplicate axis values produce the same
///   `(f, c)` cell twice) are collapsed to a single entry after the
///   canonical sort, compared bitwise on the frequency so `-0.0` and
///   `0.0` stay the distinct values `total_cmp` says they are.
fn nondominated(safe: &[(f64, u64)]) -> Vec<(f64, u64)> {
    let mut frontier: Vec<(f64, u64)> = safe
        .iter()
        .copied()
        .filter(|&(f, c)| {
            !safe
                .iter()
                .any(|&(f2, c2)| (f2 <= f && c2 <= c) && (f2 < f || c2 < c))
        })
        .collect();
    frontier.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    frontier.dedup_by(|a, b| a.0.to_bits() == b.0.to_bits() && a.1 == b.1);
    frontier
}

/// How [`run_frontier`] locates the Pareto frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierMethod {
    /// Evaluate every `(frequency, capacity)` cell of the grid.
    Dense,
    /// Adaptive bisection of the monotone safe/unsafe staircase:
    /// O(log |frequencies|) cell evaluations per capacity instead of the
    /// full product, with a frontier identical to [`FrontierMethod::Dense`].
    Bisect,
}

/// The Pareto frontier of a spec plus how much of the grid finding it
/// took — the artifact [`FrontierMethod::Bisect`] exists to shrink.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierReport {
    /// Non-dominated safe `(frequency_hz, capacity)` pairs, sorted by
    /// frequency then capacity — same contract as
    /// [`SweepReport::pareto`].
    pub frontier: Vec<(f64, u64)>,
    /// Cells of the `frequency × capacity` grid.
    pub grid_cells: usize,
    /// Cells whose safety was actually established by evaluating points
    /// (analytic table lookups and simulations both count — the point is
    /// the *cell* count bisection saves, not what deciding a cell costs).
    pub evaluated_cells: usize,
}

/// Memoizing safety oracle over `(frequency, capacity)` cells: a cell is
/// safe iff no clean-seed point of any clip/policy at that cell
/// overflows — exactly the predicate of the dense [`pareto_frontier`].
struct CellOracle<'a> {
    ctxs: &'a [ClipContext],
    spec: &'a SweepSpec,
    table: &'a AnalyticTable,
    clean_seeds: &'a [usize],
    scratch: SimScratch,
    cache: Vec<Option<bool>>,
    evaluated: usize,
    error: Option<SimError>,
}

impl CellOracle<'_> {
    fn safe(&mut self, fi: usize, ci: usize) -> bool {
        let idx = fi * self.spec.capacities.len() + ci;
        if let Some(v) = self.cache[idx] {
            return v;
        }
        if self.error.is_some() {
            return false; // unwinding: the answer no longer matters
        }
        self.evaluated += 1;
        let mut ok = true;
        'all: for clip in 0..self.ctxs.len() {
            for policy in 0..self.spec.policies.len() {
                for &seed in self.clean_seeds {
                    let p = GridPoint {
                        clip,
                        freq: fi,
                        cap: ci,
                        policy,
                        seed,
                    };
                    match eval_point(p, self.ctxs, self.spec, self.table, &mut self.scratch) {
                        Ok((v, _)) if v.overflowed() => {
                            ok = false;
                            break 'all;
                        }
                        Ok(_) => {}
                        Err(e) => {
                            self.error = Some(e);
                            return false;
                        }
                    }
                }
            }
        }
        self.cache[idx] = Some(ok);
        ok
    }
}

/// First-safe frequency thresholds of a monotone safety staircase, by
/// divide-and-conquer bisection.
///
/// `safe(f, c)` is queried at *sorted* axis positions (frequency and
/// capacity both ascending) and must be monotone: safe at `(f, c)`
/// implies safe at `(f+1, c)` and `(f, c+1)`. Returns, per capacity
/// position, the smallest frequency position that is safe (`n_freq` when
/// none is). The middle capacity is solved by binary search, then each
/// half recurses with the frequency window its neighbour's threshold
/// pins — O((n_cap + log n_cap) · log n_freq) queries overall instead of
/// `n_freq · n_cap`.
///
/// Public for property tests against brute-forced randomized monotone
/// grids; sweep users want [`run_frontier`].
pub fn staircase_thresholds(
    n_freq: usize,
    n_cap: usize,
    safe: &mut dyn FnMut(usize, usize) -> bool,
) -> Vec<usize> {
    let mut t = vec![n_freq; n_cap];
    solve_staircase(&mut t, 0, n_cap, 0, n_freq, safe);
    t
}

/// Solves capacity positions `[clo, chi)` whose thresholds are known to
/// lie in `[flo, fhi]` (monotonicity pins the window; a collapsed window
/// answers without queries).
fn solve_staircase(
    t: &mut [usize],
    clo: usize,
    chi: usize,
    flo: usize,
    fhi: usize,
    safe: &mut dyn FnMut(usize, usize) -> bool,
) {
    if clo >= chi {
        return;
    }
    let cmid = clo + (chi - clo) / 2;
    let (mut lo, mut hi) = (flo, fhi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if safe(mid, cmid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    t[cmid] = lo;
    // Smaller capacities need at least this frequency; larger ones at most.
    solve_staircase(t, clo, cmid, lo, fhi, safe);
    solve_staircase(t, cmid + 1, chi, flo, lo, safe);
}

/// Computes the Pareto frontier of `spec` without materializing a full
/// [`SweepReport`] — and, with [`FrontierMethod::Bisect`], without even
/// *visiting* most of the `frequency × capacity` grid.
///
/// The safe/unsafe boundary is monotone in both axes (a faster PE or a
/// bigger FIFO never turns a safe cell unsafe — eq. 8's two sides move
/// the right way), so the frontier is a staircase that
/// [`staircase_thresholds`] locates with O(log grid) cell evaluations
/// per capacity. The safe set is then rebuilt from the thresholds and
/// pushed through the **same** non-domination filter in the **same**
/// enumeration order as the dense path, so the result is bit-identical
/// to [`SweepReport::pareto`] — duplicates and ties included.
///
/// # Errors
///
/// Same contract as [`run_sweep`].
pub fn run_frontier(
    clips: &[ClipWorkload],
    spec: &SweepSpec,
    par: Parallelism,
    method: FrontierMethod,
) -> Result<FrontierReport, SweepError> {
    validate(clips, spec)?;
    let _span = wcm_obs::span("sweep.frontier");

    let ctxs: Vec<ClipContext> = {
        let _span = wcm_obs::span("sweep.clip_analysis");
        clips
            .iter()
            .map(|c| ClipContext::build(c, spec, par))
            .collect::<Result<_, _>>()?
    };
    let table = AnalyticTable::build(&ctxs, spec);

    let n_freq = spec.frequencies_hz.len();
    let n_cap = spec.capacities.len();
    let clean_seeds: Vec<usize> = spec
        .seeds
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();

    // Stable ascending permutations of both axes: bisection runs in
    // value order whatever order the spec lists them in, and stability
    // keeps duplicate values deterministic.
    let mut freq_order: Vec<usize> = (0..n_freq).collect();
    freq_order.sort_by(|&a, &b| spec.frequencies_hz[a].total_cmp(&spec.frequencies_hz[b]));
    let mut cap_order: Vec<usize> = (0..n_cap).collect();
    cap_order.sort_by_key(|&i| spec.capacities[i]);
    let mut fpos = vec![0usize; n_freq];
    for (p, &i) in freq_order.iter().enumerate() {
        fpos[i] = p;
    }
    let mut cpos = vec![0usize; n_cap];
    for (p, &i) in cap_order.iter().enumerate() {
        cpos[i] = p;
    }

    let mut oracle = CellOracle {
        ctxs: &ctxs,
        spec,
        table: &table,
        clean_seeds: &clean_seeds,
        scratch: SimScratch::new(),
        cache: vec![None; n_freq * n_cap],
        evaluated: 0,
        error: None,
    };

    let thresholds = match method {
        FrontierMethod::Bisect => staircase_thresholds(n_freq, n_cap, &mut |fp, cp| {
            oracle.safe(freq_order[fp], cap_order[cp])
        }),
        FrontierMethod::Dense => Vec::new(),
    };

    let mut safe: Vec<(f64, u64)> = Vec::new();
    for (fi, &f) in spec.frequencies_hz.iter().enumerate() {
        for (ci, &c) in spec.capacities.iter().enumerate() {
            let is_safe = match method {
                FrontierMethod::Bisect => fpos[fi] >= thresholds[cpos[ci]],
                FrontierMethod::Dense => oracle.safe(fi, ci),
            };
            if is_safe {
                safe.push((f, c));
            }
        }
    }
    if let Some(e) = oracle.error {
        return Err(e.into());
    }
    wcm_obs::counter("sweep.frontier_cells_evaluated", oracle.evaluated as u64);
    Ok(FrontierReport {
        frontier: nondominated(&safe),
        grid_cells: n_freq * n_cap,
        evaluated_cells: oracle.evaluated,
    })
}

impl SweepReport {
    /// Serializes the report as deterministic JSON (stable key order,
    /// shortest-round-trip float formatting, no timing fields).
    ///
    /// Floats go through [`wcm_obs::json::fmt_f64`], which maps NaN/±∞ to
    /// `null` — a fault-seeded point with a non-finite stat used to render
    /// as the bare token `NaN`, producing an unparseable document. Clip
    /// names are escaped with [`wcm_obs::json::quote`]. For finite floats
    /// and quote-free names the output is byte-identical to before.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.points.len() * 160);
        s.push_str(&json_head(&self.stats));
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&json_point_row(&PointRecord::from_report(p, i as u64)));
            if i + 1 < self.points.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str(&json_tail(&self.advisories, &self.pareto));
        s
    }

    /// Serializes the per-point table as CSV (same order as `points`).
    ///
    /// Fields are quoted per RFC 4180 via [`wcm_obs::csv::field`] when they
    /// contain commas, quotes or line breaks — a clip name with a `,` used
    /// to shift every later column of its row. Plain fields stay unquoted,
    /// so reports for ordinary names are byte-identical to before.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::from(CSV_HEADER);
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&csv_point_row(&PointRecord::from_report(p, i as u64)));
        }
        s
    }
}

/// Header line of [`SweepReport::to_csv`] (trailing newline included).
pub const CSV_HEADER: &str =
    "clip,frequency_hz,capacity,policy,seed,verdict,max_backlog,dropped,pe1_stalled_s\n";

/// Opening of the [`SweepReport::to_json`] document up to and including
/// the `"points": [` line — the stats block precedes the rows, which is
/// why the streaming CLI path composes its JSON from a row temp file
/// instead of writing head-to-tail.
#[must_use]
pub fn json_head(stats: &SweepStats) -> String {
    use wcm_obs::json::fmt_f64;
    let mut s = String::with_capacity(256);
    s.push_str("{\n  \"stats\": {");
    s.push_str(&format!(
        "\"total\": {}, \"pruned_safe\": {}, \"pruned_unsafe\": {}, \
         \"simulated\": {}, \"overflowed\": {}, \"pruned_fraction\": {}",
        stats.total,
        stats.pruned_safe,
        stats.pruned_unsafe,
        stats.simulated,
        stats.overflowed,
        fmt_f64(stats.pruned_fraction()),
    ));
    s.push_str("},\n  \"points\": [\n");
    s
}

/// One `points[]` row of [`SweepReport::to_json`], indented, without the
/// separating comma or newline (the caller knows whether a row follows).
#[must_use]
pub fn json_point_row(p: &PointRecord<'_>) -> String {
    use wcm_obs::json::{fmt_f64, quote};
    let mut s = String::with_capacity(160);
    s.push_str("    {");
    s.push_str(&format!(
        "\"clip\": {}, \"frequency_hz\": {}, \"capacity\": {}, \
         \"policy\": \"{}\", \"seed\": {}, \"verdict\": \"{}\"",
        quote(p.clip),
        fmt_f64(p.frequency_hz),
        p.capacity,
        policy_str(p.policy),
        p.seed.map_or("null".to_string(), |s| s.to_string()),
        p.verdict.as_str(),
    ));
    if let (Some(b), Some(d), Some(st)) = (p.max_backlog, p.dropped, p.pe1_stalled_s) {
        s.push_str(&format!(
            ", \"max_backlog\": {b}, \"dropped\": {d}, \"pe1_stalled_s\": {}",
            fmt_f64(st)
        ));
    }
    s.push('}');
    s
}

/// Everything of [`SweepReport::to_json`] after the last point row: the
/// advisory and Pareto sections plus the closing braces.
#[must_use]
pub fn json_tail(advisories: &[RmsAdvisory], pareto: &[(f64, u64)]) -> String {
    use wcm_obs::json::{fmt_f64, quote};
    let mut s = String::with_capacity(128 + advisories.len() * 96);
    s.push_str("  ],\n  \"rms_advisories\": [\n");
    for (i, a) in advisories.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clip\": {}, \"frequency_hz\": {}, \
             \"schedulable\": {}, \"l_factor\": {}}}",
            quote(&a.clip),
            fmt_f64(a.frequency_hz),
            a.schedulable,
            fmt_f64(a.l_factor)
        ));
        if i + 1 < advisories.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n  \"pareto\": [");
    for (i, &(f, c)) in pareto.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"frequency_hz\": {}, \"capacity\": {c}}}",
            fmt_f64(f)
        ));
    }
    s.push_str("]\n}\n");
    s
}

/// One data row of [`SweepReport::to_csv`] (trailing newline included).
#[must_use]
pub fn csv_point_row(p: &PointRecord<'_>) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{}\n",
        wcm_obs::csv::field(p.clip),
        p.frequency_hz,
        p.capacity,
        policy_str(p.policy),
        p.seed.map_or(String::new(), |x| x.to_string()),
        p.verdict.as_str(),
        p.max_backlog.map_or(String::new(), |x| x.to_string()),
        p.dropped.map_or(String::new(), |x| x.to_string()),
        p.pe1_stalled_s.map_or(String::new(), |x| x.to_string()),
    )
}

/// Stable lower-case policy label for reports.
#[must_use]
pub fn policy_str(p: OverflowPolicy) -> &'static str {
    match p {
        OverflowPolicy::Backpressure => "backpressure",
        OverflowPolicy::Reject => "reject",
        OverflowPolicy::DropByPriority => "drop-priority",
    }
}

// ---------------------------------------------------------------------------
// Streaming evaluation: sinks, shards, merge
// ---------------------------------------------------------------------------

/// Points evaluated per pool job in [`run_sweep_streaming`] — the
/// constant that bounds peak memory: the pipeline ever holds one chunk
/// of verdicts, never the grid.
const STREAM_CHUNK: usize = 16_384;

/// Stable wire code of a [`Verdict`]
/// (`0..=`[`wcm_wire::sweep::MAX_VERDICT_CODE`]).
#[must_use]
pub fn verdict_code(v: Verdict) -> u8 {
    match v {
        Verdict::ProvablySafe => 0,
        Verdict::ProvablyUnsafe => 1,
        Verdict::SimOk => 2,
        Verdict::SimOverflow => 3,
    }
}

/// Inverse of [`verdict_code`].
#[must_use]
pub fn verdict_from_code(code: u8) -> Option<Verdict> {
    match code {
        0 => Some(Verdict::ProvablySafe),
        1 => Some(Verdict::ProvablyUnsafe),
        2 => Some(Verdict::SimOk),
        3 => Some(Verdict::SimOverflow),
        _ => None,
    }
}

/// Stable wire code of a policy: the index of its [`policy_str`] label
/// in `backpressure`, `reject`, `drop-priority` order.
#[must_use]
pub fn policy_code(p: OverflowPolicy) -> u8 {
    match p {
        OverflowPolicy::Backpressure => 0,
        OverflowPolicy::Reject => 1,
        OverflowPolicy::DropByPriority => 2,
    }
}

/// Inverse of [`policy_code`].
#[must_use]
pub fn policy_from_code(code: u8) -> Option<OverflowPolicy> {
    match code {
        0 => Some(OverflowPolicy::Backpressure),
        1 => Some(OverflowPolicy::Reject),
        2 => Some(OverflowPolicy::DropByPriority),
        _ => None,
    }
}

/// Borrowed view of one evaluated grid point, pushed to a [`SweepSink`]
/// the moment it is decided — the streaming counterpart of
/// [`PointReport`], carrying its global grid index so shard outputs can
/// be stitched back into grid order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRecord<'a> {
    /// Global grid index (clip-major, then frequency, capacity, policy,
    /// seed — the order of [`SweepReport::points`]).
    pub index: u64,
    /// Clip name.
    pub clip: &'a str,
    /// PE₂ clock in Hz.
    pub frequency_hz: f64,
    /// FIFO capacity in macroblocks.
    pub capacity: u64,
    /// Overflow policy.
    pub policy: OverflowPolicy,
    /// Fault seed (`None` = clean).
    pub seed: Option<u64>,
    /// The decision.
    pub verdict: Verdict,
    /// Peak FIFO occupancy (simulated points only).
    pub max_backlog: Option<u64>,
    /// Dropped macroblocks (simulated points only).
    pub dropped: Option<usize>,
    /// Seconds PE₁ spent blocked on a full FIFO (simulated points only).
    pub pe1_stalled_s: Option<f64>,
}

impl<'a> PointRecord<'a> {
    /// Borrows a materialized report row as a record.
    #[must_use]
    pub fn from_report(p: &'a PointReport, index: u64) -> Self {
        Self {
            index,
            clip: &p.clip,
            frequency_hz: p.frequency_hz,
            capacity: p.capacity,
            policy: p.policy,
            seed: p.seed,
            verdict: p.verdict,
            max_backlog: p.max_backlog,
            dropped: p.dropped,
            pe1_stalled_s: p.pe1_stalled_s,
        }
    }

    /// Materializes the record (the collecting sink's storage step).
    #[must_use]
    pub fn to_report(&self) -> PointReport {
        PointReport {
            clip: self.clip.to_string(),
            frequency_hz: self.frequency_hz,
            capacity: self.capacity,
            policy: self.policy,
            seed: self.seed,
            verdict: self.verdict,
            max_backlog: self.max_backlog,
            dropped: self.dropped,
            pe1_stalled_s: self.pe1_stalled_s,
        }
    }
}

/// Everything a [`SweepReport`] carries except the point vector:
/// what [`run_sweep_streaming`] returns after the last point has been
/// pushed to the sink. For a full-grid run (`ShardRange::FULL`) every
/// field is **byte-identical** to the corresponding [`run_sweep`]
/// fields; for a shard run, `stats` and `pareto` cover only the shard's
/// slice of the grid (the merge step recomputes them globally).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Per-`(clip, frequency)` RMS advisories (always the full set —
    /// they depend on the clip analysis, not the shard range).
    pub advisories: Vec<RmsAdvisory>,
    /// Aggregate counters over the evaluated range.
    pub stats: SweepStats,
    /// Pareto frontier over the evaluated range.
    pub pareto: Vec<(f64, u64)>,
}

/// The coordinates of one streaming run: which contiguous slice of the
/// grid it evaluates and the axes every shard must agree on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRunHeader<'a> {
    /// This shard's index (`0` for a full run).
    pub shard: u32,
    /// Total shard count (`1` for a full run).
    pub shards: u32,
    /// First global grid index of this shard's slice.
    pub start: u64,
    /// Points in this shard's slice.
    pub len: u64,
    /// Total grid points across all shards.
    pub total: u64,
    /// [`spec_fingerprint`] of the clip set and spec.
    pub fingerprint: u64,
    /// Clip names, in grid (clip-major) order.
    pub clips: &'a [String],
    /// Frequency axis of the spec.
    pub frequencies_hz: &'a [f64],
    /// Capacity axis of the spec.
    pub capacities: &'a [u64],
    /// Policy axis of the spec.
    pub policies: &'a [OverflowPolicy],
    /// Seed axis of the spec.
    pub seeds: &'a [Option<u64>],
    /// Full advisory set (computed before point evaluation starts).
    pub advisories: &'a [RmsAdvisory],
}

/// Consumer of a streaming sweep: receives the run header once, then
/// every evaluated point in global grid-index order, then the summary.
/// Any error aborts the sweep immediately — remaining points are never
/// evaluated.
pub trait SweepSink {
    /// Called once before the first point, with the run coordinates.
    ///
    /// # Errors
    ///
    /// Propagated out of [`run_sweep_streaming`] verbatim.
    fn begin(&mut self, header: &SweepRunHeader<'_>) -> Result<(), SweepError> {
        let _ = header;
        Ok(())
    }

    /// Called for every evaluated point, in grid-index order.
    ///
    /// # Errors
    ///
    /// Propagated out of [`run_sweep_streaming`] verbatim.
    fn point(&mut self, rec: &PointRecord<'_>) -> Result<(), SweepError>;

    /// Called once after the last point, with the run summary.
    ///
    /// # Errors
    ///
    /// Propagated out of [`run_sweep_streaming`] verbatim.
    fn finish(&mut self, summary: &SweepSummary) -> Result<(), SweepError> {
        let _ = summary;
        Ok(())
    }
}

/// In-process aggregating sink: collects the streamed points so
/// [`CollectSink::into_report`] can rebuild the exact [`SweepReport`] of
/// the materializing path — the equivalence witness used by the tests
/// and benches, and the bridge for callers that want streaming
/// evaluation but a materialized result.
#[derive(Debug, Default)]
pub struct CollectSink {
    points: Vec<PointReport>,
}

impl CollectSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected points plus `summary`, as a full report.
    #[must_use]
    pub fn into_report(self, summary: &SweepSummary) -> SweepReport {
        SweepReport {
            points: self.points,
            advisories: summary.advisories.clone(),
            stats: summary.stats,
            pareto: summary.pareto.clone(),
        }
    }
}

impl SweepSink for CollectSink {
    fn point(&mut self, rec: &PointRecord<'_>) -> Result<(), SweepError> {
        self.points.push(rec.to_report());
        Ok(())
    }
}

/// Row-streaming CSV sink: writes [`CSV_HEADER`] at `begin` and one
/// [`csv_point_row`] per point straight to `W` — for a full-grid run the
/// bytes written equal [`SweepReport::to_csv`] exactly.
#[derive(Debug)]
pub struct CsvSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> CsvSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// The underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> SweepSink for CsvSink<W> {
    fn begin(&mut self, _header: &SweepRunHeader<'_>) -> Result<(), SweepError> {
        self.out.write_all(CSV_HEADER.as_bytes())?;
        Ok(())
    }

    fn point(&mut self, rec: &PointRecord<'_>) -> Result<(), SweepError> {
        self.out.write_all(csv_point_row(rec).as_bytes())?;
        Ok(())
    }

    fn finish(&mut self, _summary: &SweepSummary) -> Result<(), SweepError> {
        self.out.flush()?;
        Ok(())
    }
}

/// `.wcmt` shard sink: one `KIND_SWEEP_META` frame carrying the run
/// coordinates and axes (so the merge step needs no side-channel), then
/// `KIND_SWEEP_POINTS` frames of up to 4096 verdict records, written
/// incrementally through [`wcm_wire::FrameSink`] — peak memory is one
/// frame, whatever the shard size. Call [`WcmtShardSink::finish_stream`]
/// after the sweep returns to seal the stream with its end marker.
#[derive(Debug)]
pub struct WcmtShardSink<W: std::io::Write> {
    sink: wcm_wire::FrameSink<W>,
    buf: Vec<wcm_wire::SweepPointRec>,
}

impl<W: std::io::Write> WcmtShardSink<W> {
    /// Points buffered before a `KIND_SWEEP_POINTS` frame is flushed.
    const FLUSH_AT: usize = 4096;

    /// A sink writing a fresh `.wcmt` stream to `out` (the stream header
    /// is written immediately).
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] from the writer.
    pub fn new(out: W) -> Result<Self, SweepError> {
        Ok(Self {
            sink: wcm_wire::FrameSink::new(out)?,
            buf: Vec::with_capacity(Self::FLUSH_AT),
        })
    }

    fn flush_points(&mut self) -> Result<(), SweepError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        for chunk in wcm_wire::sweep::points_chunks(&self.buf) {
            self.sink.push(
                wcm_wire::frame::KIND_SWEEP_POINTS,
                &wcm_wire::sweep::encode_sweep_points(chunk),
            )?;
        }
        wcm_obs::counter("sweep.stream.flushes", 1);
        self.buf.clear();
        Ok(())
    }

    /// Flushes any buffered points and seals the stream with its end
    /// marker, returning the writer. A sink dropped without this call
    /// leaves a truncated stream that strict readers (and the merge
    /// step) refuse — the honest outcome for an interrupted shard.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] from the writer.
    pub fn finish_stream(mut self) -> Result<W, SweepError> {
        self.flush_points()?;
        Ok(self.sink.finish()?)
    }
}

impl<W: std::io::Write> SweepSink for WcmtShardSink<W> {
    fn begin(&mut self, header: &SweepRunHeader<'_>) -> Result<(), SweepError> {
        let meta = wcm_wire::SweepShardMeta {
            shard: header.shard,
            shards: header.shards,
            start: header.start,
            len: header.len,
            total: header.total,
            fingerprint: header.fingerprint,
            clips: header.clips.to_vec(),
            frequencies_hz: header.frequencies_hz.to_vec(),
            capacities: header.capacities.to_vec(),
            policies: header.policies.iter().map(|&p| policy_code(p)).collect(),
            seeds: header.seeds.to_vec(),
            advisories: header
                .advisories
                .iter()
                .map(|a| {
                    let clip = header
                        .clips
                        .iter()
                        .position(|c| c == &a.clip)
                        .unwrap_or_default();
                    wcm_wire::SweepAdvisoryRec {
                        clip: clip as u32,
                        frequency_hz: a.frequency_hz,
                        schedulable: a.schedulable,
                        l_factor: a.l_factor,
                    }
                })
                .collect(),
        };
        self.sink.push(
            wcm_wire::frame::KIND_SWEEP_META,
            &wcm_wire::sweep::encode_sweep_meta(&meta),
        )?;
        Ok(())
    }

    fn point(&mut self, rec: &PointRecord<'_>) -> Result<(), SweepError> {
        self.buf.push(wcm_wire::SweepPointRec {
            verdict: verdict_code(rec.verdict),
            sim: match (rec.max_backlog, rec.dropped, rec.pe1_stalled_s) {
                (Some(b), Some(d), Some(s)) => Some(wcm_wire::SweepSimRec {
                    max_backlog: b,
                    dropped: d as u64,
                    pe1_stalled_s: s,
                }),
                _ => None,
            },
        });
        if self.buf.len() >= Self::FLUSH_AT {
            self.flush_points()?;
        }
        Ok(())
    }

    fn finish(&mut self, _summary: &SweepSummary) -> Result<(), SweepError> {
        self.flush_points()
    }
}

/// Which contiguous slice of the grid a streaming run evaluates:
/// shard `index` of `count` balanced slices
/// (`start = index·total/count`, `end = (index+1)·total/count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Shard index, `< count`.
    pub index: u32,
    /// Total shard count, `≥ 1`.
    pub count: u32,
}

impl ShardRange {
    /// The whole grid in one run.
    pub const FULL: ShardRange = ShardRange { index: 0, count: 1 };
}

/// FNV-1a over every input that shapes a sweep's results: clip
/// identities, all grid axes, injectors, analysis windows and the prune
/// switch. Shards stamp it into their metadata so [`merge_shards`] can
/// refuse to fold outputs of different runs — a cheap guard against
/// mixing shard files, not a cryptographic commitment.
#[must_use]
pub fn spec_fingerprint(clips: &[ClipWorkload], spec: &SweepSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for clip in clips {
        eat(clip.name().as_bytes());
        eat(&(clip.macroblock_count() as u64).to_le_bytes());
    }
    eat(&spec.pe1_hz.to_bits().to_le_bytes());
    for &f in &spec.frequencies_hz {
        eat(&f.to_bits().to_le_bytes());
    }
    for &c in &spec.capacities {
        eat(&c.to_le_bytes());
    }
    for &p in &spec.policies {
        eat(&[policy_code(p)]);
    }
    for s in &spec.seeds {
        match s {
            None => eat(&[0]),
            Some(v) => {
                eat(&[1]);
                eat(&v.to_le_bytes());
            }
        }
    }
    for inj in &spec.injectors {
        eat(format!("{inj:?}").as_bytes());
    }
    eat(&(spec.k_max as u64).to_le_bytes());
    eat(format!("{:?}", spec.mode).as_bytes());
    eat(&(spec.cert_depth as u64).to_le_bytes());
    eat(&[u8::from(spec.prune)]);
    h
}

/// Decomposes a global grid index into axis indices — the arithmetic
/// inverse of the nested enumeration in [`run_sweep`], so the streaming
/// path never materializes the grid vector.
fn grid_point_at(mut idx: u64, n_freq: usize, n_cap: usize, n_pol: usize, n_seed: usize) -> GridPoint {
    let seed = (idx % n_seed as u64) as usize;
    idx /= n_seed as u64;
    let policy = (idx % n_pol as u64) as usize;
    idx /= n_pol as u64;
    let cap = (idx % n_cap as u64) as usize;
    idx /= n_cap as u64;
    let freq = (idx % n_freq as u64) as usize;
    idx /= n_freq as u64;
    GridPoint {
        clip: idx as usize,
        freq,
        cap,
        policy,
        seed,
    }
}

/// Canonical axis-index map: each position maps to the first position
/// holding an equal value, so duplicate axis values share one frontier
/// cell — the index-space mirror of the by-value matching in
/// `pareto_frontier_values`.
fn canonical_positions<T: PartialEq>(axis: &[T]) -> Vec<usize> {
    axis.iter()
        .map(|v| axis.iter().position(|w| w == v).expect("v is in axis"))
        .collect()
}

/// Streaming counterpart of [`run_sweep`]: evaluates the shard's slice
/// of the grid and pushes every point to `sink` in grid-index order
/// instead of collecting a vector. Peak memory is **independent of the
/// grid size** — one bounded chunk of verdicts in flight, the per-clip
/// analysis contexts, and the analytic table's one slot per
/// `(clip, seed, capacity, frequency)` cell.
///
/// Determinism carries over from [`run_sweep`] wholesale: points arrive
/// in grid order for every `par` setting, and for a full-grid run
/// (`ShardRange::FULL`) the returned [`SweepSummary`] — stats, advisory
/// set and Pareto frontier, ties included — is **byte-identical** to the
/// corresponding fields of [`run_sweep`]'s report. The frontier is
/// tracked online: clean-seed overflows mark their
/// `(frequency, capacity)` cell (by canonical value, so duplicate axis
/// entries share one cell exactly like the by-value filter of the
/// materializing path) and the safe cells are enumerated in the same
/// axis order at the end.
///
/// # Errors
///
/// [`SweepError::Invalid`] for a bad spec or an out-of-range shard;
/// sink errors verbatim; otherwise as [`run_sweep`].
pub fn run_sweep_streaming(
    clips: &[ClipWorkload],
    spec: &SweepSpec,
    par: Parallelism,
    shard: ShardRange,
    sink: &mut dyn SweepSink,
) -> Result<SweepSummary, SweepError> {
    validate(clips, spec)?;
    if shard.count == 0 || shard.index >= shard.count {
        return Err(SweepError::Invalid("shard index out of range"));
    }
    let _span = wcm_obs::span("sweep.stream");

    let ctxs: Vec<ClipContext> = {
        let _span = wcm_obs::span("sweep.clip_analysis");
        clips
            .iter()
            .map(|c| ClipContext::build(c, spec, par))
            .collect::<Result<_, _>>()?
    };
    let table = AnalyticTable::build(&ctxs, spec);

    let n_freq = spec.frequencies_hz.len();
    let n_cap = spec.capacities.len();
    let n_pol = spec.policies.len();
    let n_seed = spec.seeds.len();
    let total = clips.len() as u64 * n_freq as u64 * n_cap as u64 * n_pol as u64 * n_seed as u64;
    let start = u64::from(shard.index) * total / u64::from(shard.count);
    let end = (u64::from(shard.index) + 1) * total / u64::from(shard.count);
    let len = (end - start) as usize;

    let advisories: Vec<RmsAdvisory> = ctxs
        .iter()
        .flat_map(|ctx| {
            spec.frequencies_hz
                .iter()
                .zip(&ctx.rms)
                .filter_map(|(&f, r)| {
                    r.map(|(schedulable, l)| RmsAdvisory {
                        clip: ctx.name.clone(),
                        frequency_hz: f,
                        schedulable,
                        l_factor: l,
                    })
                })
        })
        .collect();
    let clip_names: Vec<String> = ctxs.iter().map(|c| c.name.clone()).collect();
    sink.begin(&SweepRunHeader {
        shard: shard.index,
        shards: shard.count,
        start,
        len: len as u64,
        total,
        fingerprint: spec_fingerprint(clips, spec),
        clips: &clip_names,
        frequencies_hz: &spec.frequencies_hz,
        capacities: &spec.capacities,
        policies: &spec.policies,
        seeds: &spec.seeds,
        advisories: &advisories,
    })?;

    let freq_canon = canonical_positions(&spec.frequencies_hz);
    let cap_canon = canonical_positions(&spec.capacities);
    let mut overflow_cells = vec![false; n_freq * n_cap];
    let mut stats = SweepStats {
        total: len,
        ..SweepStats::default()
    };

    let events_per_point = clips.iter().map(ClipWorkload::macroblock_count).sum::<usize>()
        / clips.len();
    let cost = (len as u64) * (events_per_point as u64).max(1) * 16;
    wcm_obs::counter("sweep.stream.points", len as u64);
    {
        let _span = wcm_obs::span("sweep.eval");
        wcm_par::par_map_stream(
            par,
            len,
            cost,
            STREAM_CHUNK,
            SimScratch::new,
            |scratch, i| {
                let p = grid_point_at(start + i as u64, n_freq, n_cap, n_pol, n_seed);
                eval_point(p, &ctxs, spec, &table, scratch)
            },
            |chunk_start, vals| -> Result<(), SweepError> {
                for (j, out) in vals.drain(..).enumerate() {
                    let idx = start + (chunk_start + j) as u64;
                    let p = grid_point_at(idx, n_freq, n_cap, n_pol, n_seed);
                    let (verdict, sim) = out?;
                    match verdict {
                        Verdict::ProvablySafe => stats.pruned_safe += 1,
                        Verdict::ProvablyUnsafe => stats.pruned_unsafe += 1,
                        Verdict::SimOk | Verdict::SimOverflow => stats.simulated += 1,
                    }
                    if verdict.overflowed() {
                        stats.overflowed += 1;
                        if spec.seeds[p.seed].is_none() {
                            overflow_cells[freq_canon[p.freq] * n_cap + cap_canon[p.cap]] = true;
                        }
                    }
                    if let Some((b, _, _)) = sim {
                        wcm_obs::gauge_max("sweep.max_backlog", b);
                    }
                    sink.point(&PointRecord {
                        index: idx,
                        clip: &ctxs[p.clip].name,
                        frequency_hz: spec.frequencies_hz[p.freq],
                        capacity: spec.capacities[p.cap],
                        policy: spec.policies[p.policy],
                        seed: spec.seeds[p.seed],
                        verdict,
                        max_backlog: sim.map(|(b, _, _)| b),
                        dropped: sim.map(|(_, d, _)| d),
                        pe1_stalled_s: sim.map(|(_, _, s)| s),
                    })?;
                }
                Ok(())
            },
        )?;
    }

    // Canonical cells only: duplicate axis values share one cell, and
    // `nondominated` must see each cell once — both for the tie
    // contract and because its strict-domination filter is quadratic in
    // the safe-set size. Same enumeration as `pareto_frontier_values`,
    // so the streamed frontier stays byte-identical to the dense one.
    let mut safe: Vec<(f64, u64)> = Vec::new();
    for (fi, &f) in spec.frequencies_hz.iter().enumerate() {
        if freq_canon[fi] != fi {
            continue;
        }
        for (ci, &c) in spec.capacities.iter().enumerate() {
            if cap_canon[ci] != ci {
                continue;
            }
            if !overflow_cells[fi * n_cap + ci] {
                safe.push((f, c));
            }
        }
    }
    let summary = SweepSummary {
        advisories,
        stats,
        pareto: nondominated(&safe),
    };
    sink.finish(&summary)?;
    Ok(summary)
}

/// Bitwise equality for float-bearing advisory records — shard
/// consistency must not be fooled by `NaN != NaN`.
fn advisory_recs_equal(a: &[wcm_wire::SweepAdvisoryRec], b: &[wcm_wire::SweepAdvisoryRec]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.clip == y.clip
                && x.frequency_hz.to_bits() == y.frequency_hz.to_bits()
                && x.schedulable == y.schedulable
                && x.l_factor.to_bits() == y.l_factor.to_bits()
        })
}

/// Folds decoded shard streams (one per `wcm sweep --shard i/N` process)
/// into the [`SweepReport`] a single-process [`run_sweep`] of the same
/// spec produces — **byte-for-byte**, including `to_json`/`to_csv`
/// output: points are stitched back into global grid order, stats are
/// recounted from the verdicts, advisories come from the (validated
/// identical) shard metadata, and the frontier goes through the same
/// by-value filter as the dense path.
///
/// # Errors
///
/// [`SweepError::Invalid`] when the shard set is not exactly the output
/// of one run: a stream without sweep metadata, fingerprint/axis/
/// advisory disagreement, duplicate/missing/unbalanced shard ranges, or
/// a point count that does not match a shard's declared range.
pub fn merge_shards(shards: &[wcm_wire::Decoded]) -> Result<SweepReport, SweepError> {
    let _span = wcm_obs::span("sweep.merge");
    let mut parts: Vec<(&wcm_wire::SweepShardMeta, &[wcm_wire::SweepPointRec])> = shards
        .iter()
        .map(|d| {
            d.sweep_meta
                .as_ref()
                .map(|m| (m, d.sweep_points.as_slice()))
                .ok_or(SweepError::Invalid("shard stream carries no sweep metadata"))
        })
        .collect::<Result<_, _>>()?;
    let Some(&(first, _)) = parts.first() else {
        return Err(SweepError::Invalid("no shard streams to merge"));
    };
    if parts.len() != first.shards as usize {
        return Err(SweepError::Invalid(
            "shard file count does not match the declared shard count",
        ));
    }
    for &(m, pts) in &parts {
        if m.fingerprint != first.fingerprint {
            return Err(SweepError::Invalid(
                "shard fingerprints disagree (outputs of different runs?)",
            ));
        }
        let axes_equal = m.shards == first.shards
            && m.total == first.total
            && m.clips == first.clips
            && m.frequencies_hz.len() == first.frequencies_hz.len()
            && m.frequencies_hz
                .iter()
                .zip(&first.frequencies_hz)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && m.capacities == first.capacities
            && m.policies == first.policies
            && m.seeds == first.seeds;
        if !axes_equal {
            return Err(SweepError::Invalid("shard grid axes disagree"));
        }
        if !advisory_recs_equal(&m.advisories, &first.advisories) {
            return Err(SweepError::Invalid("shard advisories disagree"));
        }
        if pts.len() as u64 != m.len {
            return Err(SweepError::Invalid(
                "shard point count does not match its declared range",
            ));
        }
    }
    parts.sort_by_key(|&(m, _)| m.shard);
    let count = u64::from(first.shards);
    for (i, &(m, _)) in parts.iter().enumerate() {
        if m.shard as usize != i {
            return Err(SweepError::Invalid("duplicate or missing shard index"));
        }
        let expect_start = i as u64 * first.total / count;
        let expect_end = (i as u64 + 1) * first.total / count;
        if m.start != expect_start || m.start + m.len != expect_end {
            return Err(SweepError::Invalid("shard range is not the balanced split"));
        }
    }

    let n_freq = first.frequencies_hz.len();
    let n_cap = first.capacities.len();
    let n_pol = first.policies.len();
    let n_seed = first.seeds.len();
    let policies: Vec<OverflowPolicy> = first
        .policies
        .iter()
        .map(|&c| policy_from_code(c).ok_or(SweepError::Invalid("unknown policy code")))
        .collect::<Result<_, _>>()?;
    for a in &first.advisories {
        if a.clip as usize >= first.clips.len() {
            return Err(SweepError::Invalid("advisory clip index out of range"));
        }
    }

    let mut points = Vec::with_capacity(first.total as usize);
    let mut stats = SweepStats {
        total: first.total as usize,
        ..SweepStats::default()
    };
    for &(m, pts) in &parts {
        for (j, rec) in pts.iter().enumerate() {
            let p = grid_point_at(m.start + j as u64, n_freq, n_cap, n_pol, n_seed);
            let verdict = verdict_from_code(rec.verdict)
                .ok_or(SweepError::Invalid("unknown verdict code"))?;
            match verdict {
                Verdict::ProvablySafe => stats.pruned_safe += 1,
                Verdict::ProvablyUnsafe => stats.pruned_unsafe += 1,
                Verdict::SimOk | Verdict::SimOverflow => stats.simulated += 1,
            }
            if verdict.overflowed() {
                stats.overflowed += 1;
            }
            points.push(PointReport {
                clip: first.clips[p.clip].clone(),
                frequency_hz: first.frequencies_hz[p.freq],
                capacity: first.capacities[p.cap],
                policy: policies[p.policy],
                seed: first.seeds[p.seed],
                verdict,
                max_backlog: rec.sim.map(|s| s.max_backlog),
                dropped: rec.sim.map(|s| s.dropped as usize),
                pe1_stalled_s: rec.sim.map(|s| s.pe1_stalled_s),
            });
        }
    }
    wcm_obs::counter("sweep.merge.shards", parts.len() as u64);
    wcm_obs::counter("sweep.merge.points", points.len() as u64);

    let advisories = first
        .advisories
        .iter()
        .map(|a| RmsAdvisory {
            clip: first.clips[a.clip as usize].clone(),
            frequency_hz: a.frequency_hz,
            schedulable: a.schedulable,
            l_factor: a.l_factor,
        })
        .collect();
    let pareto = pareto_frontier_values(&points, &first.frequencies_hz, &first.capacities);
    Ok(SweepReport {
        points,
        advisories,
        stats,
        pareto,
    })
}

fn times_to_trace(times: &[f64]) -> Result<TimedTrace, SimError> {
    let mut reg = TypeRegistry::new();
    let mb = reg
        .register("mb", ExecutionInterval::fixed(Cycles(1)))
        .map_err(|_| SimError::EmptyWorkload)?;
    TimedTrace::new(
        reg,
        times
            .iter()
            .map(|&time| TimedEvent { time, ty: mb })
            .collect(),
    )
    .map_err(|_| SimError::NonFiniteTime { time: f64::NAN })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_mpeg::{profile::standard_clips, Synthesizer, VideoParams};

    fn small_clips(count: usize) -> Vec<ClipWorkload> {
        let params =
            VideoParams::new(160, 128, 25.0, 1.0e6, wcm_mpeg::GopStructure::broadcast()).unwrap();
        let synth = Synthesizer::new(params);
        standard_clips()[..count]
            .iter()
            .map(|c| synth.generate(c, 1).unwrap())
            .collect()
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            pe1_hz: 60.0e6,
            frequencies_hz: vec![2.0e6, 6.0e6, 20.0e6, 60.0e6],
            capacities: vec![4, 80, 4000],
            policies: vec![OverflowPolicy::Backpressure, OverflowPolicy::Reject],
            seeds: vec![None, Some(11)],
            injectors: vec![
                Injector::JitterBurst {
                    start: 5,
                    len: 60,
                    max_delay_s: 0.004,
                },
                Injector::DemandSpike {
                    start: 30,
                    len: 40,
                    factor_pct: 250,
                },
            ],
            k_max: 600,
            mode: WindowMode::Strided {
                exact_upto: 128,
                stride: 40,
            },
            cert_depth: 400,
            prune: true,
        }
    }

    #[test]
    fn pruned_and_unpruned_sweeps_agree_on_every_verdict() {
        let clips = small_clips(3);
        let spec = small_spec();
        let pruned = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        let full = run_sweep(
            &clips,
            &SweepSpec {
                prune: false,
                ..spec.clone()
            },
            Parallelism::Seq,
        )
        .unwrap();
        assert_eq!(pruned.points.len(), full.points.len());
        assert!(
            pruned.stats.pruned_safe + pruned.stats.pruned_unsafe > 0,
            "the analytic pre-pass should decide at least some points"
        );
        assert_eq!(full.stats.simulated, full.stats.total);
        for (a, b) in pruned.points.iter().zip(&full.points) {
            assert_eq!(
                a.verdict.overflowed(),
                b.verdict.overflowed(),
                "clip {} f {} cap {} seed {:?}: pruned verdict {:?} vs simulated {:?}",
                a.clip,
                a.frequency_hz,
                a.capacity,
                a.seed,
                a.verdict,
                b.verdict
            );
        }
        assert_eq!(pruned.pareto, full.pareto);
    }

    #[test]
    fn report_is_bit_identical_across_worker_counts() {
        let clips = small_clips(2);
        let spec = small_spec();
        let seq = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let other = run_sweep(&clips, &spec, par).unwrap();
            assert_eq!(seq, other, "{par:?} diverged from sequential");
            assert_eq!(seq.to_json(), other.to_json());
            assert_eq!(seq.to_csv(), other.to_csv());
        }
    }

    #[test]
    fn seeded_points_prune_and_agree_with_their_simulation() {
        // small_spec's injectors (jitter + integer demand spike) keep
        // pe2_scale ≡ 1 and pe2_extra ≡ 0, so both analytic bounds apply
        // to the seeded stream too.
        let clips = small_clips(1);
        let spec = small_spec();
        let pruned = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        let seeded_pruned = pruned
            .points
            .iter()
            .filter(|p| p.seed.is_some() && !p.verdict.simulated())
            .count();
        assert!(
            seeded_pruned > 0,
            "seeded points with exact-model faults should prune analytically"
        );
        let full = run_sweep(
            &clips,
            &SweepSpec {
                prune: false,
                ..spec
            },
            Parallelism::Seq,
        )
        .unwrap();
        for (a, b) in pruned.points.iter().zip(&full.points) {
            if a.seed.is_some() {
                assert_eq!(
                    a.verdict.overflowed(),
                    b.verdict.overflowed(),
                    "seed {:?} f {} cap {}: {:?} vs simulated {:?}",
                    a.seed,
                    a.frequency_hz,
                    a.capacity,
                    a.verdict,
                    b.verdict
                );
            }
        }
    }

    #[test]
    fn scale_faulted_seeds_fall_back_to_simulation_for_safe_prunes() {
        // A PE₂ clock drift (pe2_scale > 1) breaks the `c/F` model: the
        // safe bound must not fire for that seed, while the overflow
        // certificate (still sound for slower-than-modelled service) may.
        let clips = small_clips(1);
        let mut spec = small_spec();
        spec.injectors = vec![Injector::ClockDrift {
            start: 10,
            len: 200,
            factor_pct: 180,
            pe: crate::faults::ProcessingElement::Pe2,
        }];
        let report = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        let mut seeded_seen = false;
        for p in &report.points {
            if p.seed.is_some() {
                seeded_seen = true;
                assert_ne!(
                    p.verdict,
                    Verdict::ProvablySafe,
                    "safe prune is unsound under pe2 scale faults"
                );
            }
        }
        assert!(seeded_seen);
        // And the verdicts still agree with the unpruned ground truth.
        let full = run_sweep(
            &clips,
            &SweepSpec {
                prune: false,
                ..spec
            },
            Parallelism::Seq,
        )
        .unwrap();
        for (a, b) in report.points.iter().zip(&full.points) {
            assert_eq!(a.verdict.overflowed(), b.verdict.overflowed());
        }
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_sorted() {
        let clips = small_clips(2);
        let report = run_sweep(&clips, &small_spec(), Parallelism::Seq).unwrap();
        let pf = &report.pareto;
        for w in pf.windows(2) {
            assert!(w[0].0 < w[1].0, "frontier frequencies must increase");
            assert!(w[0].1 > w[1].1, "capacity must strictly drop along it");
        }
        for &(f, c) in pf {
            for p in &report.points {
                if p.seed.is_none() && p.frequency_hz == f && p.capacity == c {
                    assert!(!p.verdict.overflowed());
                }
            }
        }
    }

    #[test]
    fn rejects_degenerate_specs() {
        let clips = small_clips(1);
        let spec = small_spec();
        assert!(matches!(
            run_sweep(&[], &spec, Parallelism::Seq),
            Err(SweepError::Invalid(_))
        ));
        for bad in [
            SweepSpec {
                frequencies_hz: vec![],
                ..spec.clone()
            },
            SweepSpec {
                capacities: vec![],
                ..spec.clone()
            },
            SweepSpec {
                pe1_hz: f64::NAN,
                ..spec.clone()
            },
            SweepSpec {
                frequencies_hz: vec![-3.0],
                ..spec.clone()
            },
            SweepSpec {
                k_max: 0,
                ..spec.clone()
            },
        ] {
            assert!(matches!(
                run_sweep(&clips, &bad, Parallelism::Seq),
                Err(SweepError::Invalid(_))
            ));
        }
    }

    /// A report with every float axis poisoned and a hostile clip name.
    fn poisoned_report() -> SweepReport {
        let point = |clip: &str, f: f64, stalled: Option<f64>| PointReport {
            clip: clip.to_string(),
            frequency_hz: f,
            capacity: 4,
            policy: OverflowPolicy::Backpressure,
            seed: Some(7),
            verdict: Verdict::SimOverflow,
            max_backlog: Some(9),
            dropped: Some(2),
            pe1_stalled_s: stalled,
        };
        SweepReport {
            points: vec![
                point("clip, with \"quotes\"", f64::NAN, Some(f64::INFINITY)),
                point("plain", f64::NEG_INFINITY, Some(f64::NAN)),
            ],
            advisories: vec![RmsAdvisory {
                clip: "adv, clip".to_string(),
                frequency_hz: f64::INFINITY,
                schedulable: false,
                l_factor: f64::NAN,
            }],
            stats: SweepStats {
                total: 2,
                simulated: 2,
                overflowed: 2,
                ..SweepStats::default()
            },
            pareto: vec![(f64::NAN, 4)],
        }
    }

    #[test]
    fn non_finite_floats_and_hostile_names_emit_parseable_json() {
        // Regression: bare `format!("{}")` rendered NaN/inf as the invalid
        // tokens `NaN`/`inf`, and clip names were interpolated unescaped.
        let json = poisoned_report().to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        let v = wcm_obs::json::parse(&json).expect("poisoned report must stay valid JSON");
        let points = v.get("points").and_then(|p| p.as_array()).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0].get("clip").and_then(|c| c.as_str()),
            Some("clip, with \"quotes\"")
        );
        assert!(points[0].get("frequency_hz").unwrap().is_null());
        assert!(points[0].get("pe1_stalled_s").unwrap().is_null());
        assert!(v.get("rms_advisories").unwrap().as_array().unwrap()[0]
            .get("l_factor")
            .unwrap()
            .is_null());
        assert!(v.get("pareto").unwrap().as_array().unwrap()[0]
            .get("frequency_hz")
            .unwrap()
            .is_null());
    }

    #[test]
    fn csv_quotes_clip_names_with_commas_and_quotes() {
        // Regression: an unescaped `,` in a clip name shifted every later
        // column of its row.
        let csv = poisoned_report().to_csv();
        let rows = wcm_obs::csv::parse_table(&csv).expect("report must stay valid CSV");
        assert_eq!(rows.len(), 3, "header + 2 points");
        assert_eq!(rows[0].len(), 9);
        assert_eq!(rows[1][0], "clip, with \"quotes\"");
        assert_eq!(rows[1][5], "sim_overflow");
        assert_eq!(rows[2][0], "plain");
    }

    #[test]
    fn real_reports_round_trip_through_the_strict_readers() {
        let clips = small_clips(2);
        let report = run_sweep(&clips, &small_spec(), Parallelism::Seq).unwrap();
        let v = wcm_obs::json::parse(&report.to_json()).expect("sweep JSON parses");
        let points = v.get("points").and_then(|p| p.as_array()).unwrap();
        assert_eq!(points.len(), report.points.len());
        let rows = wcm_obs::csv::parse_table(&report.to_csv()).expect("sweep CSV parses");
        assert_eq!(rows.len(), report.points.len() + 1);
    }

    // ---- streaming path ---------------------------------------------------

    #[test]
    fn streaming_full_grid_reproduces_run_sweep_exactly() {
        let clips = small_clips(2);
        let spec = small_spec();
        let dense = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        for par in [Parallelism::Seq, Parallelism::Threads(2), Parallelism::Threads(4)] {
            let mut sink = CollectSink::new();
            let summary =
                run_sweep_streaming(&clips, &spec, par, ShardRange::FULL, &mut sink).unwrap();
            let streamed = sink.into_report(&summary);
            assert_eq!(streamed, dense, "{par:?}: reports diverge");
            assert_eq!(streamed.to_json(), dense.to_json(), "{par:?}: JSON diverges");
            assert_eq!(streamed.to_csv(), dense.to_csv(), "{par:?}: CSV diverges");
        }
    }

    #[test]
    fn streaming_csv_sink_writes_to_csv_bytes() {
        let clips = small_clips(1);
        let spec = small_spec();
        let dense = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        let mut sink = CsvSink::new(Vec::new());
        run_sweep_streaming(&clips, &spec, Parallelism::Seq, ShardRange::FULL, &mut sink)
            .unwrap();
        assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), dense.to_csv());
    }

    #[test]
    fn duplicate_axis_values_share_one_frontier_entry_in_both_paths() {
        let clips = small_clips(1);
        let mut spec = small_spec();
        // Duplicate one frequency and one capacity: the dense path filters
        // frontier candidates by value, so the streamed accumulator must
        // collapse the duplicate cells the same way.
        spec.frequencies_hz = vec![2.0e6, 6.0e6, 6.0e6, 60.0e6];
        spec.capacities = vec![4, 80, 80, 4000];
        let dense = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        let mut sink = CollectSink::new();
        let summary =
            run_sweep_streaming(&clips, &spec, Parallelism::Seq, ShardRange::FULL, &mut sink)
                .unwrap();
        assert_eq!(summary.pareto, dense.pareto);
        // The frontier itself carries no exact duplicates.
        for (i, a) in dense.pareto.iter().enumerate() {
            for b in &dense.pareto[i + 1..] {
                assert!(
                    a.0.to_bits() != b.0.to_bits() || a.1 != b.1,
                    "duplicate frontier entry {a:?}"
                );
            }
        }
        assert_eq!(sink.into_report(&summary), dense);
    }

    #[test]
    fn shard_wire_round_trip_merges_to_the_single_process_report() {
        let clips = small_clips(2);
        let spec = small_spec();
        let dense = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        for count in [1u32, 2, 3, 5] {
            let mut files = Vec::new();
            for index in 0..count {
                let mut sink = WcmtShardSink::new(Vec::new()).unwrap();
                run_sweep_streaming(
                    &clips,
                    &spec,
                    Parallelism::Threads(2),
                    ShardRange { index, count },
                    &mut sink,
                )
                .unwrap();
                files.push(sink.finish_stream().unwrap());
            }
            let decoded: Vec<wcm_wire::Decoded> = files
                .iter()
                .map(|f| wcm_wire::decode(f, wcm_wire::DecodePolicy::Strict).unwrap())
                .collect();
            let merged = merge_shards(&decoded).unwrap();
            assert_eq!(merged, dense, "{count} shards: merged report diverges");
            assert_eq!(merged.to_json(), dense.to_json(), "{count} shards: JSON");
            assert_eq!(merged.to_csv(), dense.to_csv(), "{count} shards: CSV");
        }
    }

    #[test]
    fn merge_rejects_inconsistent_or_incomplete_shard_sets() {
        let clips = small_clips(1);
        let spec = small_spec();
        let shard_bytes = |index: u32, count: u32, clips: &[ClipWorkload], spec: &SweepSpec| {
            let mut sink = WcmtShardSink::new(Vec::new()).unwrap();
            run_sweep_streaming(clips, spec, Parallelism::Seq, ShardRange { index, count }, &mut sink)
                .unwrap();
            sink.finish_stream().unwrap()
        };
        let decode = |bytes: &[u8]| wcm_wire::decode(bytes, wcm_wire::DecodePolicy::Strict).unwrap();

        assert!(matches!(merge_shards(&[]), Err(SweepError::Invalid(_))));

        // Missing shard 1 of 2.
        let a = decode(&shard_bytes(0, 2, &clips, &spec));
        assert!(matches!(merge_shards(std::slice::from_ref(&a)), Err(SweepError::Invalid(_))));

        // Duplicate shard index.
        let dup = decode(&shard_bytes(0, 2, &clips, &spec));
        assert!(matches!(
            merge_shards(&[a.clone(), dup]),
            Err(SweepError::Invalid(_))
        ));

        // Fingerprint mismatch: shard 1 from a different spec.
        let mut other = small_spec();
        other.capacities = vec![4, 80, 4001];
        let b = decode(&shard_bytes(1, 2, &clips, &other));
        assert!(matches!(merge_shards(&[a, b]), Err(SweepError::Invalid(_))));

        // Stream with no sweep metadata at all.
        let plain = decode(&wcm_wire::encode_demands("x", &[1, 2, 3]));
        assert!(matches!(
            merge_shards(&[plain]),
            Err(SweepError::Invalid(_))
        ));
    }

    #[test]
    fn streaming_rejects_out_of_range_shard() {
        let clips = small_clips(1);
        let spec = small_spec();
        let mut sink = CollectSink::new();
        for shard in [ShardRange { index: 2, count: 2 }, ShardRange { index: 0, count: 0 }] {
            assert!(matches!(
                run_sweep_streaming(&clips, &spec, Parallelism::Seq, shard, &mut sink),
                Err(SweepError::Invalid(_))
            ));
        }
    }

    #[test]
    fn sink_error_aborts_the_sweep() {
        struct FailAfter(usize);
        impl SweepSink for FailAfter {
            fn point(&mut self, _: &PointRecord<'_>) -> Result<(), SweepError> {
                if self.0 == 0 {
                    return Err(SweepError::Io(std::io::Error::other("sink full")));
                }
                self.0 -= 1;
                Ok(())
            }
        }
        let clips = small_clips(1);
        let spec = small_spec();
        let mut sink = FailAfter(3);
        let err = run_sweep_streaming(&clips, &spec, Parallelism::Seq, ShardRange::FULL, &mut sink)
            .unwrap_err();
        assert!(matches!(err, SweepError::Io(_)), "got {err:?}");
    }

    #[test]
    fn verdict_and_policy_codes_round_trip() {
        for v in [
            Verdict::ProvablySafe,
            Verdict::ProvablyUnsafe,
            Verdict::SimOk,
            Verdict::SimOverflow,
        ] {
            assert_eq!(verdict_from_code(verdict_code(v)), Some(v));
            assert!(verdict_code(v) <= wcm_wire::sweep::MAX_VERDICT_CODE);
        }
        assert_eq!(verdict_from_code(4), None);
        for p in [
            OverflowPolicy::Backpressure,
            OverflowPolicy::Reject,
            OverflowPolicy::DropByPriority,
        ] {
            assert_eq!(policy_from_code(policy_code(p)), Some(p));
        }
        assert_eq!(policy_from_code(3), None);
    }

    #[test]
    fn fingerprint_tracks_every_spec_axis() {
        let clips = small_clips(2);
        let base = small_spec();
        let f0 = spec_fingerprint(&clips, &base);
        assert_eq!(f0, spec_fingerprint(&clips, &base), "must be deterministic");
        let mut tweaked = Vec::new();
        let mut s = base.clone();
        s.pe1_hz += 1.0;
        tweaked.push(s);
        let mut s = base.clone();
        s.frequencies_hz.push(1.0);
        tweaked.push(s);
        let mut s = base.clone();
        s.capacities[0] += 1;
        tweaked.push(s);
        let mut s = base.clone();
        s.policies.push(OverflowPolicy::DropByPriority);
        tweaked.push(s);
        let mut s = base.clone();
        s.seeds.push(Some(99));
        tweaked.push(s);
        let mut s = base.clone();
        s.prune = false;
        tweaked.push(s);
        for (i, s) in tweaked.iter().enumerate() {
            assert_ne!(f0, spec_fingerprint(&clips, s), "tweak {i} not fingerprinted");
        }
        assert_ne!(
            f0,
            spec_fingerprint(&clips[..1], &base),
            "clip set not fingerprinted"
        );
    }
}
