//! Property-based tests of the analytic sizing functions (eqs. 8–10)
//! against the event-driven simulator, on random tiny workloads.
//!
//! Three properties the sweep engine's pruning relies on:
//!
//! * eq. 9 never asks for more clock than eq. 10 (`F^γ_min ≤ F^w_min`);
//! * `F^γ_min` is non-increasing in the buffer capacity;
//! * a pipeline clocked (a hair above) `F^γ_min(b)` never backs up more
//!   than `b` macroblocks — the no-overflow guarantee of eq. 8, checked
//!   against the real simulator rather than the curve algebra.

use proptest::prelude::*;
use wcm_core::build::arrival_upper;
use wcm_core::sizing::{min_frequency_wcet, min_frequency_workload};
use wcm_core::UpperWorkloadCurve;
use wcm_curves::StepCurve;
use wcm_events::window::{max_window_sums, WindowMode};
use wcm_events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm_mpeg::demand::{Pe1Model, Pe2Model};
use wcm_mpeg::mb::{Macroblock, MacroblockClass};
use wcm_mpeg::params::{FrameKind, GopStructure, VideoParams};
use wcm_mpeg::workload::FrameWorkload;
use wcm_mpeg::ClipWorkload;
use wcm_sim::pipeline::{simulate_pipeline, PipelineConfig};

fn clip_from(bits: Vec<u32>) -> ClipWorkload {
    let params =
        VideoParams::new(16, 16, 25.0, 1.0e4, GopStructure::new(1, 1).unwrap()).unwrap();
    let mbs: Vec<Macroblock> = bits
        .into_iter()
        .map(|b| Macroblock {
            frame: FrameKind::I,
            class: MacroblockClass::Intra {
                coded_blocks: (b % 6 + 1) as u8,
            },
            bits: b.max(1),
        })
        .collect();
    ClipWorkload::new(
        "prop".into(),
        params,
        Pe1Model {
            base: 50,
            cycles_per_bit: 1.0,
            iq_per_block: 10,
        },
        Pe2Model::default(),
        vec![FrameWorkload::new(FrameKind::I, mbs)],
    )
}

/// Measured arrival staircase over the full trace (exact windows).
fn arrival_of(times: &[f64]) -> StepCurve {
    let mut reg = TypeRegistry::new();
    let mb = reg
        .register("mb", ExecutionInterval::fixed(Cycles(1)))
        .unwrap();
    let trace = TimedTrace::new(
        reg,
        times
            .iter()
            .map(|&time| TimedEvent { time, ty: mb })
            .collect(),
    )
    .unwrap();
    arrival_upper(&trace, times.len(), WindowMode::Exact).unwrap()
}

/// The measured `ᾱ` and `γᵘ` of one random clip. FIFO-input times do not
/// depend on the PE₂ clock (unbounded FIFO, no backpressure), so any fast
/// PE₂ works for the measurement run.
fn measure(clip: &ClipWorkload, bitrate: f64, pe1: f64) -> (StepCurve, UpperWorkloadCurve) {
    let cfg = PipelineConfig {
        bitrate_bps: bitrate,
        pe1_hz: pe1,
        pe2_hz: 1.0e9,
    };
    let r = simulate_pipeline(clip, &cfg).unwrap();
    let alpha = arrival_of(&r.fifo_in_times);
    let demands = clip.pe2_demands();
    let gamma = UpperWorkloadCurve::new(
        max_window_sums(&demands, demands.len(), WindowMode::Exact).unwrap(),
    )
    .unwrap();
    (alpha, gamma)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// eq. 9 ≤ eq. 10, and both are non-increasing in the buffer.
    #[test]
    fn workload_sizing_below_wcet_sizing_and_monotone_in_buffer(
        bits in proptest::collection::vec(1u32..2000, 2..50),
        bitrate in 1.0e3f64..1.0e6,
        pe1 in 1.0e4f64..1.0e7,
    ) {
        let clip = clip_from(bits);
        let (alpha, gamma) = measure(&clip, bitrate, pe1);
        let mut prev_gamma: Option<f64> = None;
        let mut prev_wcet: Option<f64> = None;
        for b in [1u64, 2, 3, 5, 8, 16, 64] {
            let fg = min_frequency_workload(&alpha, &gamma, b).unwrap();
            let fw = min_frequency_wcet(&alpha, gamma.wcet(), b).unwrap();
            prop_assert!(
                fg <= fw * (1.0 + 1e-9),
                "F^γ_min = {fg} exceeds F^w_min = {fw} at b = {b}"
            );
            if let Some(p) = prev_gamma {
                prop_assert!(fg <= p * (1.0 + 1e-9), "F^γ_min grew with the buffer");
            }
            if let Some(p) = prev_wcet {
                prop_assert!(fw <= p * (1.0 + 1e-9), "F^w_min grew with the buffer");
            }
            prev_gamma = Some(fg);
            prev_wcet = Some(fw);
        }
    }

    /// eq. 8 end-to-end: at (a hair above) `F^γ_min(b)` the simulated
    /// backlog never exceeds `b`.
    #[test]
    fn simulated_backlog_never_exceeds_sized_buffer(
        bits in proptest::collection::vec(1u32..2000, 2..50),
        bitrate in 1.0e3f64..1.0e6,
        pe1 in 1.0e4f64..1.0e7,
        b in 1u64..12,
    ) {
        let clip = clip_from(bits);
        let (alpha, gamma) = measure(&clip, bitrate, pe1);
        let f = min_frequency_workload(&alpha, &gamma, b).unwrap();
        prop_assume!(f.is_finite() && f > 0.0);
        let run = simulate_pipeline(
            &clip,
            &PipelineConfig {
                bitrate_bps: bitrate,
                pe1_hz: pe1,
                pe2_hz: f * (1.0 + 1e-6),
            },
        )
        .unwrap();
        prop_assert!(
            run.max_backlog <= b,
            "backlog {} exceeds sized buffer {b} at F^γ_min = {f}",
            run.max_backlog
        );
    }
}
