//! Property-based tests of the fault-injection layer, the bounded FIFO
//! overflow policies and the online envelope monitor.

use proptest::prelude::*;
use wcm_core::curve::UpperWorkloadCurve;
use wcm_core::EnvelopeMonitor;
use wcm_events::window::{max_window_sums, WindowMode};
use wcm_mpeg::demand::{Pe1Model, Pe2Model};
use wcm_mpeg::mb::{Macroblock, MacroblockClass, MotionKind};
use wcm_mpeg::params::{FrameKind, GopStructure, VideoParams};
use wcm_mpeg::workload::FrameWorkload;
use wcm_mpeg::ClipWorkload;
use wcm_sim::pipeline::{simulate_pipeline, simulate_pipeline_robust, PipelineConfig};
use wcm_sim::{FaultPlan, FifoConfig, Injector, OverflowPolicy, SourceModel};

/// A clip with mixed frame kinds: frame `i` holds one macroblock of the
/// `i`-th kind in an I/P/B/B rotation.
fn mixed_clip(bits: Vec<u32>) -> ClipWorkload {
    let params =
        VideoParams::new(16, 16, 25.0, 1.0e4, GopStructure::new(4, 2).unwrap()).unwrap();
    let frames: Vec<FrameWorkload> = bits
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            let kind = match i % 4 {
                0 => FrameKind::I,
                1 => FrameKind::P,
                _ => FrameKind::B,
            };
            let class = match kind {
                FrameKind::I => MacroblockClass::Intra {
                    coded_blocks: (b % 6 + 1) as u8,
                },
                FrameKind::P => MacroblockClass::Inter {
                    motion: MotionKind::Single,
                    coded_blocks: (b % 7) as u8,
                },
                FrameKind::B => MacroblockClass::Inter {
                    motion: MotionKind::Bidirectional,
                    coded_blocks: (b % 7) as u8,
                },
            };
            FrameWorkload::new(
                kind,
                vec![Macroblock {
                    frame: kind,
                    class,
                    bits: b.max(1),
                }],
            )
        })
        .collect();
    ClipWorkload::new(
        "prop-faults".into(),
        params,
        Pe1Model {
            base: 50,
            cycles_per_bit: 1.0,
            iq_per_block: 10,
        },
        Pe2Model {
            base: 100,
            idct_per_block: 20,
            mc_single: 30,
            mc_single_field: 35,
            mc_bidirectional: 60,
            mc_bidirectional_field: 70,
            skip_copy: 10,
        },
        frames,
    )
}

fn cfg() -> PipelineConfig {
    PipelineConfig {
        bitrate_bps: 1e5,
        pe1_hz: 1e6,
        pe2_hz: 5e4,
    }
}

/// A plan exercising every injector at moderate intensity.
fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(Injector::JitterBurst {
            start: 0,
            len: 10,
            max_delay_s: 0.01,
        })
        .with(Injector::DropEvents { per_mille: 60 })
        .with(Injector::DuplicateEvents { per_mille: 60 })
        .with(Injector::DemandSpike {
            start: 3,
            len: 8,
            factor_pct: 250,
        })
        .with(Injector::BitErrors { per_mille: 40 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A fixed seed reproduces the faulted stream and the simulation
    /// bit-for-bit; a different seed perturbs at least the fault report.
    #[test]
    fn seeded_faults_are_reproducible(
        bits in proptest::collection::vec(1u32..2000, 8..40),
        seed in 0u64..u64::MAX,
    ) {
        let clip = mixed_clip(bits);
        let fifo = FifoConfig::bounded(4, OverflowPolicy::Reject);
        let a = simulate_pipeline_robust(
            &clip, &cfg(), &fifo, SourceModel::Cbr, Some(&noisy_plan(seed)), None);
        let b = simulate_pipeline_robust(
            &clip, &cfg(), &fifo, SourceModel::Cbr, Some(&noisy_plan(seed)), None);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            (x, y) => prop_assert!(false, "diverged: {:?} vs {:?}", x, y),
        }
    }

    /// Zero-intensity injectors leave the pipeline result bit-identical to
    /// the legacy (pre-fault-layer) unbounded simulation.
    #[test]
    fn zero_intensity_plan_is_the_identity(
        bits in proptest::collection::vec(1u32..2000, 4..40),
        seed in 0u64..u64::MAX,
    ) {
        let clip = mixed_clip(bits);
        let plan = FaultPlan::new(seed)
            .with(Injector::DropEvents { per_mille: 0 })
            .with(Injector::DuplicateEvents { per_mille: 0 })
            .with(Injector::JitterBurst { start: 0, len: 0, max_delay_s: 0.0 })
            .with(Injector::DemandSpike { start: 0, len: 0, factor_pct: 100 })
            .with(Injector::BitErrors { per_mille: 0 });
        let legacy = simulate_pipeline(&clip, &cfg()).unwrap();
        let robust = simulate_pipeline_robust(
            &clip, &cfg(), &FifoConfig::unbounded(), SourceModel::Cbr, Some(&plan), None)
            .unwrap();
        prop_assert!(robust.faults.is_clean());
        prop_assert_eq!(robust.pipeline, legacy);
    }

    /// The FIFO never holds more than its capacity, under any overflow
    /// policy and any injector mix.
    #[test]
    fn capacity_is_a_hard_bound_under_faults(
        bits in proptest::collection::vec(1u32..2000, 8..40),
        seed in 0u64..u64::MAX,
        cap in 1u64..6,
    ) {
        let clip = mixed_clip(bits);
        for policy in [
            OverflowPolicy::Backpressure,
            OverflowPolicy::Reject,
            OverflowPolicy::DropByPriority,
        ] {
            let r = simulate_pipeline_robust(
                &clip,
                &cfg(),
                &FifoConfig::bounded(cap, policy),
                SourceModel::Cbr,
                Some(&noisy_plan(seed)),
                None,
            );
            // Heavy drop plans can empty tiny streams; that error is fine.
            if let Ok(r) = r {
                prop_assert!(
                    r.pipeline.max_backlog <= cap,
                    "policy {:?}: backlog {} > cap {}",
                    policy, r.pipeline.max_backlog, cap
                );
                // Rejected macroblocks never enter, so they occupy the
                // FIFO for zero time; priority-evicted ones may have
                // waited in the queue before eviction (out ≥ in).
                for &i in &r.pipeline.dropped {
                    let (fin, fout) =
                        (r.pipeline.fifo_in_times[i], r.pipeline.fifo_out_times[i]);
                    if policy == OverflowPolicy::Reject {
                        prop_assert_eq!(fin.to_bits(), fout.to_bits());
                    } else {
                        prop_assert!(fout >= fin);
                    }
                }
                // Backpressure is lossless by definition.
                if policy == OverflowPolicy::Backpressure {
                    prop_assert!(r.pipeline.dropped.is_empty());
                }
            }
        }
    }

    /// A monitor fed the trace its curve was built from never fires; a
    /// demand spike above γᵘ always does.
    #[test]
    fn monitor_is_sound_and_sensitive(
        bits in proptest::collection::vec(1u32..2000, 6..40),
        k_max in 2usize..12,
    ) {
        let clip = mixed_clip(bits);
        let demands = clip.pe2_demands();
        let k_max = k_max.min(demands.len());
        let gamma = UpperWorkloadCurve::new(
            max_window_sums(&demands, k_max, WindowMode::Exact).unwrap()).unwrap();

        // Soundness: the clean clip stays inside its own envelope.
        let mut clean = EnvelopeMonitor::upper_only(&gamma, k_max).unwrap();
        simulate_pipeline_robust(
            &clip, &cfg(), &FifoConfig::unbounded(), SourceModel::Cbr, None, Some(&mut clean))
            .unwrap();
        prop_assert!(clean.is_clean(), "violations on own trace: {:?}", clean.violations());
        prop_assert_eq!(clean.events() as usize, demands.len());
        // Some window attains its bound exactly.
        prop_assert_eq!(clean.report().min_upper_slack(), Some(0));

        // Sensitivity: quadrupling every demand must break γᵘ(1) at least.
        let spike = FaultPlan::new(1).with(Injector::DemandSpike {
            start: 0,
            len: demands.len(),
            factor_pct: 400,
        });
        let mut spiked = EnvelopeMonitor::upper_only(&gamma, k_max).unwrap();
        simulate_pipeline_robust(
            &clip, &cfg(), &FifoConfig::unbounded(), SourceModel::Cbr, Some(&spike),
            Some(&mut spiked))
            .unwrap();
        prop_assert!(spiked.total_violations() > 0);
        let v = &spiked.violations()[0];
        prop_assert!(v.observed > u128::from(v.bound));
        prop_assert!(v.slack() < 0);
    }
}
