//! Property-based tests of the pipeline simulator on random tiny
//! workloads.

use proptest::prelude::*;
use wcm_mpeg::demand::{Pe1Model, Pe2Model};
use wcm_mpeg::mb::{Macroblock, MacroblockClass};
use wcm_mpeg::params::{FrameKind, GopStructure, VideoParams};
use wcm_mpeg::workload::FrameWorkload;
use wcm_mpeg::ClipWorkload;
use wcm_sim::pipeline::{simulate_pipeline, simulate_pipeline_bounded, PipelineConfig};

fn clip_from(bits: Vec<u32>) -> ClipWorkload {
    let params =
        VideoParams::new(16, 16, 25.0, 1.0e4, GopStructure::new(1, 1).unwrap()).unwrap();
    let mbs: Vec<Macroblock> = bits
        .into_iter()
        .map(|b| Macroblock {
            frame: FrameKind::I,
            class: MacroblockClass::Intra {
                coded_blocks: (b % 6 + 1) as u8,
            },
            bits: b.max(1),
        })
        .collect();
    ClipWorkload::new(
        "prop".into(),
        params,
        Pe1Model {
            base: 50,
            cycles_per_bit: 1.0,
            iq_per_block: 10,
        },
        Pe2Model::default(),
        vec![FrameWorkload::new(FrameKind::I, mbs)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Structural invariants hold for any workload and any rates.
    #[test]
    fn pipeline_invariants(
        bits in proptest::collection::vec(1u32..2000, 1..60),
        bitrate in 100.0f64..1e6,
        pe1 in 1e3f64..1e7,
        pe2 in 1e3f64..1e7,
    ) {
        let clip = clip_from(bits);
        let n = clip.macroblock_count();
        let cfg = PipelineConfig { bitrate_bps: bitrate, pe1_hz: pe1, pe2_hz: pe2 };
        let r = simulate_pipeline(&clip, &cfg).unwrap();
        // Every macroblock processed, in order, out after in.
        prop_assert_eq!(r.fifo_in_times.len(), n);
        for w in r.fifo_in_times.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        for w in r.fifo_out_times.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for i in 0..n {
            prop_assert!(r.fifo_out_times[i] >= r.fifo_in_times[i]);
        }
        // Work conservation.
        let pe1_total: u64 = clip.pe1_demands().iter().sum();
        let pe2_total: u64 = clip.pe2_demands().iter().sum();
        prop_assert!((r.pe1_busy - pe1_total as f64 / pe1).abs() < 1e-9 * (1.0 + r.pe1_busy));
        prop_assert!((r.pe2_busy - pe2_total as f64 / pe2).abs() < 1e-9 * (1.0 + r.pe2_busy));
        // Makespan at least the serial lower bounds.
        let bits_total: u64 = clip.mb_bits().iter().sum();
        prop_assert!(r.makespan + 1e-9 >= bits_total as f64 / bitrate);
        prop_assert!(r.makespan + 1e-9 >= r.pe2_busy);
        prop_assert_eq!(r.pe1_stalled, 0.0);
    }

    /// Backpressure: capped occupancy, same total work, never faster.
    #[test]
    fn backpressure_invariants(
        bits in proptest::collection::vec(1u32..2000, 2..50),
        cap in 1u64..8,
    ) {
        let clip = clip_from(bits);
        let cfg = PipelineConfig { bitrate_bps: 1e5, pe1_hz: 1e6, pe2_hz: 5e4 };
        let unbounded = simulate_pipeline(&clip, &cfg).unwrap();
        let bounded = simulate_pipeline_bounded(&clip, &cfg, cap).unwrap();
        prop_assert!(bounded.max_backlog <= cap);
        prop_assert!((bounded.pe2_busy - unbounded.pe2_busy).abs() < 1e-9);
        prop_assert!(bounded.makespan + 1e-9 >= unbounded.makespan);
        // With capacity at least the unbounded peak, behaviour is identical.
        let roomy = simulate_pipeline_bounded(&clip, &cfg, unbounded.max_backlog.max(1))
            .unwrap();
        prop_assert_eq!(roomy, unbounded);
    }
}
