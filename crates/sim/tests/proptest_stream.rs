//! Streaming-sweep equivalence properties.
//!
//! The streaming path earns its keep only if it is *indistinguishable*
//! from the materializing path: for randomized small specs,
//! [`run_sweep_streaming`] through a collecting sink must rebuild
//! [`run_sweep`]'s report byte-for-byte (JSON and CSV included) across
//! worker counts, and any shard split recombined through the `.wcmt`
//! wire round trip and [`merge_shards`] must land on the same bytes.

use proptest::prelude::*;
use wcm_events::window::WindowMode;
use wcm_mpeg::{profile::standard_clips, ClipWorkload, Synthesizer, VideoParams};
use wcm_par::Parallelism;
use wcm_sim::pipeline::OverflowPolicy;
use wcm_sim::{
    merge_shards, run_sweep, run_sweep_streaming, CollectSink, Injector, ShardRange, SweepSpec,
    WcmtShardSink,
};

fn clips(count: usize) -> Vec<ClipWorkload> {
    let params =
        VideoParams::new(160, 128, 25.0, 1.0e6, wcm_mpeg::GopStructure::broadcast()).unwrap();
    let synth = Synthesizer::new(params);
    standard_clips()[..count]
        .iter()
        .map(|c| synth.generate(c, 1).unwrap())
        .collect()
}

/// A randomized-but-small spec: axes drawn from fixed pools so the grid
/// stays cheap while still exercising duplicates, multiple policies and
/// fault seeds.
fn spec_from(raw: &SpecRaw) -> SweepSpec {
    let freq_pool = [2.0e6, 6.0e6, 6.0e6, 20.0e6, 60.0e6];
    let cap_pool = [4u64, 80, 80, 4000];
    let policy_pool = [
        OverflowPolicy::Backpressure,
        OverflowPolicy::Reject,
        OverflowPolicy::DropByPriority,
    ];
    let seed_pool = [None, Some(11u64), Some(raw.seed)];
    SweepSpec {
        pe1_hz: 60.0e6,
        frequencies_hz: freq_pool[..raw.n_freq].to_vec(),
        capacities: cap_pool[..raw.n_cap].to_vec(),
        policies: policy_pool[..raw.n_pol].to_vec(),
        seeds: seed_pool[..raw.n_seed].to_vec(),
        injectors: vec![Injector::JitterBurst {
            start: 5,
            len: 60,
            max_delay_s: 0.004,
        }],
        k_max: 400,
        mode: WindowMode::Strided {
            exact_upto: 96,
            stride: 40,
        },
        cert_depth: 300,
        prune: raw.prune,
    }
}

#[derive(Debug, Clone)]
struct SpecRaw {
    n_freq: usize,
    n_cap: usize,
    n_pol: usize,
    n_seed: usize,
    seed: u64,
    prune: bool,
}

fn spec_raw() -> impl Strategy<Value = SpecRaw> {
    (1usize..=5, 1usize..=4, 1usize..=3, 1usize..=3, 0u64..1000, 0u64..2).prop_map(
        |(n_freq, n_cap, n_pol, n_seed, seed, prune)| SpecRaw {
            n_freq,
            n_cap,
            n_pol,
            n_seed,
            seed,
            prune: prune == 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn streamed_sweep_is_byte_identical_across_worker_counts(
        raw in spec_raw(),
        n_clips in 1usize..=2,
    ) {
        let clips = clips(n_clips);
        let spec = spec_from(&raw);
        let dense = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        for par in [Parallelism::Seq, Parallelism::Threads(2), Parallelism::Threads(4)] {
            let mut sink = CollectSink::new();
            let summary =
                run_sweep_streaming(&clips, &spec, par, ShardRange::FULL, &mut sink).unwrap();
            let streamed = sink.into_report(&summary);
            prop_assert_eq!(&streamed, &dense, "{:?}: reports diverge", par);
            prop_assert_eq!(streamed.to_json(), dense.to_json(), "{:?}: JSON diverges", par);
            prop_assert_eq!(streamed.to_csv(), dense.to_csv(), "{:?}: CSV diverges", par);
        }
    }

    #[test]
    fn random_shard_splits_recombine_byte_identically(
        raw in spec_raw(),
        count in 1u32..=8,
    ) {
        let clips = clips(1);
        let spec = spec_from(&raw);
        let dense = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
        let decoded: Vec<wcm_wire::Decoded> = (0..count)
            .map(|index| {
                let mut sink = WcmtShardSink::new(Vec::new()).unwrap();
                run_sweep_streaming(
                    &clips,
                    &spec,
                    Parallelism::Threads(2),
                    ShardRange { index, count },
                    &mut sink,
                )
                .unwrap();
                let bytes = sink.finish_stream().unwrap();
                wcm_wire::decode(&bytes, wcm_wire::DecodePolicy::Strict).unwrap()
            })
            .collect();
        let merged = merge_shards(&decoded).unwrap();
        prop_assert_eq!(&merged, &dense, "{} shards: merged report diverges", count);
        prop_assert_eq!(merged.to_json(), dense.to_json(), "{} shards: JSON", count);
        prop_assert_eq!(merged.to_csv(), dense.to_csv(), "{} shards: CSV", count);
    }
}
