//! Frontier bisection against ground truth.
//!
//! Two layers:
//!
//! * property tests of [`staircase_thresholds`] on randomized monotone
//!   grids — the bisected thresholds must equal a brute-force column
//!   scan, within the O(log) query budget;
//! * an integration test on a real sweep spec — the bisected Pareto
//!   frontier must be **bit-identical** to the dense-grid frontier of
//!   [`run_sweep`] while evaluating at most 25 % of its cells (the
//!   acceptance bar of the adaptive-frontier work).

use proptest::prelude::*;
use wcm_events::window::WindowMode;
use wcm_mpeg::{profile::standard_clips, ClipWorkload, Synthesizer, VideoParams};
use wcm_par::Parallelism;
use wcm_sim::pipeline::OverflowPolicy;
use wcm_sim::{run_frontier, run_sweep, staircase_thresholds, FrontierMethod, Injector, SweepSpec};

/// Brute-force ground truth: first safe frequency position per capacity.
fn brute_thresholds(n_freq: usize, thresholds: &[usize]) -> Vec<usize> {
    thresholds
        .iter()
        .map(|&t| (0..n_freq).find(|&f| f >= t).unwrap_or(n_freq))
        .collect()
}

/// Non-increasing thresholds in `0..=n_freq` from raw generator output:
/// a random monotone staircase (bigger capacity never needs a higher
/// frequency).
fn monotone_grid(n_freq: usize, n_cap: usize, raw: &[usize]) -> Vec<usize> {
    let mut t: Vec<usize> = raw[..n_cap].iter().map(|r| r % (n_freq + 1)).collect();
    t.sort_unstable_by(|a, b| b.cmp(a)); // non-increasing
    t
}

proptest! {
    #[test]
    fn bisected_thresholds_equal_brute_force(
        n_freq in 1usize..48,
        n_cap in 1usize..14,
        raw in proptest::collection::vec(0usize..1000, 14),
    ) {
        let thresholds = monotone_grid(n_freq, n_cap, &raw);
        let mut queries = 0usize;
        let got = staircase_thresholds(n_freq, n_cap, &mut |f, c| {
            queries += 1;
            f >= thresholds[c]
        });
        prop_assert_eq!(got, brute_thresholds(n_freq, &thresholds));
        // Each capacity's binary search costs at most ceil(log2(W+1))
        // queries over its window W ≤ n_freq.
        let per_cap = usize::BITS as usize - n_freq.leading_zeros() as usize + 1;
        prop_assert!(
            queries <= n_cap * per_cap,
            "{queries} queries exceeds budget {} (n_freq={n_freq}, n_cap={n_cap})",
            n_cap * per_cap
        );
    }

    #[test]
    fn bisection_is_oblivious_to_query_results_outside_the_staircase(
        n_freq in 1usize..48,
        n_cap in 1usize..14,
        raw in proptest::collection::vec(0usize..1000, 14),
    ) {
        // Determinism: the query *sequence* is a pure function of the
        // oracle's answers, so running twice gives identical traces.
        let thresholds = monotone_grid(n_freq, n_cap, &raw);
        let mut trace_a = Vec::new();
        let a = staircase_thresholds(n_freq, n_cap, &mut |f, c| {
            trace_a.push((f, c));
            f >= thresholds[c]
        });
        let mut trace_b = Vec::new();
        let b = staircase_thresholds(n_freq, n_cap, &mut |f, c| {
            trace_b.push((f, c));
            f >= thresholds[c]
        });
        prop_assert_eq!(a, b);
        prop_assert_eq!(trace_a, trace_b);
    }
}

fn clips(count: usize) -> Vec<ClipWorkload> {
    let params =
        VideoParams::new(160, 128, 25.0, 1.0e6, wcm_mpeg::GopStructure::broadcast()).unwrap();
    let synth = Synthesizer::new(params);
    standard_clips()[..count]
        .iter()
        .map(|c| synth.generate(c, 1).unwrap())
        .collect()
}

fn frontier_spec() -> SweepSpec {
    // A frequency axis fine enough that log-bisection has room to win:
    // 32 geometric points from 2 MHz to 60 MHz, 3 capacities.
    let n = 32;
    let (lo, hi) = (2.0e6f64, 60.0e6f64);
    let frequencies_hz = (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect();
    SweepSpec {
        pe1_hz: 60.0e6,
        frequencies_hz,
        capacities: vec![4, 80, 4000],
        policies: vec![OverflowPolicy::Backpressure, OverflowPolicy::Reject],
        seeds: vec![None, Some(11)],
        injectors: vec![Injector::JitterBurst {
            start: 5,
            len: 60,
            max_delay_s: 0.004,
        }],
        k_max: 600,
        mode: WindowMode::Strided {
            exact_upto: 128,
            stride: 40,
        },
        cert_depth: 400,
        prune: true,
    }
}

#[test]
fn bisected_frontier_is_bitwise_identical_to_dense_and_cheap() {
    let clips = clips(2);
    let spec = frontier_spec();

    let sweep = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
    let dense = run_frontier(&clips, &spec, Parallelism::Seq, FrontierMethod::Dense).unwrap();
    let bisect = run_frontier(&clips, &spec, Parallelism::Seq, FrontierMethod::Bisect).unwrap();

    // Three ways to the same frontier, bit for bit.
    assert_eq!(dense.frontier, sweep.pareto, "dense frontier drifted from run_sweep");
    assert_eq!(bisect.frontier, dense.frontier, "bisection changed the frontier");
    assert!(!bisect.frontier.is_empty(), "spec should admit safe cells");

    // The dense path visits every cell; bisection at most a quarter.
    assert_eq!(dense.grid_cells, spec.frequencies_hz.len() * spec.capacities.len());
    assert_eq!(dense.evaluated_cells, dense.grid_cells);
    assert_eq!(bisect.grid_cells, dense.grid_cells);
    assert!(
        4 * bisect.evaluated_cells <= bisect.grid_cells,
        "bisection evaluated {}/{} cells (> 25%)",
        bisect.evaluated_cells,
        bisect.grid_cells
    );
}

#[test]
fn frontier_without_prune_still_matches_dense() {
    // The bisection must not depend on the analytic table being present:
    // with pruning off every cell decision is simulation-backed.
    let clips = clips(1);
    let spec = SweepSpec {
        prune: false,
        frequencies_hz: frontier_spec().frequencies_hz[..12].to_vec(),
        ..frontier_spec()
    };
    let dense = run_frontier(&clips, &spec, Parallelism::Seq, FrontierMethod::Dense).unwrap();
    let bisect = run_frontier(&clips, &spec, Parallelism::Seq, FrontierMethod::Bisect).unwrap();
    assert_eq!(bisect.frontier, dense.frontier);
    assert!(bisect.evaluated_cells < dense.evaluated_cells);
}

#[test]
fn frontier_with_no_clean_seed_is_vacuously_all_safe() {
    // The dense pareto filter ignores fault-seeded points; with no clean
    // seed every cell is safe, and bisection must agree without running
    // a single simulation.
    let clips = clips(1);
    let spec = SweepSpec {
        seeds: vec![Some(7)],
        frequencies_hz: frontier_spec().frequencies_hz[..8].to_vec(),
        ..frontier_spec()
    };
    let sweep = run_sweep(&clips, &spec, Parallelism::Seq).unwrap();
    let bisect = run_frontier(&clips, &spec, Parallelism::Seq, FrontierMethod::Bisect).unwrap();
    assert_eq!(bisect.frontier, sweep.pareto);
}
