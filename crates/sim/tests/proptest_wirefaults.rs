//! Property-based tests of the frame-level corruption layer against the
//! wire decoder's graceful-degradation contract.
//!
//! The acceptance bar: seeded corruption at bit-error rates up to 1e-3
//! must yield `SkipCorrupt` decodes whose surviving events are
//! bit-identical to the clean trace's frames, with the decoder's
//! [`wcm_wire::DecodeReport`] matching the injector's ground truth.

use proptest::prelude::*;
use wcm_sim::{FrameCorruptionPlan, FrameInjector};
use wcm_wire::{decode, encode_timed_trace, encode_times, DecodePolicy, StreamEncoder};

const CHUNK: usize = 4096;

/// A small multi-frame stream: name + demands + timestamps.
fn stream(n: usize, seed: u64) -> Vec<u8> {
    let demands: Vec<u64> = (0..n as u64).map(|i| (i ^ seed).wrapping_mul(2_654_435_761) >> 16).collect();
    let times: Vec<f64> = (0..n).map(|i| i as f64 * 0.04 + (seed % 97) as f64).collect();
    let mut enc = StreamEncoder::new();
    enc.meta("wirefault-proptest");
    enc.demands(&demands);
    enc.times(&times).unwrap();
    enc.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same plan, same bytes: corrupted output and decode report are
    /// bit-identical across runs — corruption experiments replay exactly.
    #[test]
    fn corruption_is_deterministic(
        seed in 0u64..u64::MAX,
        n in 1usize..6000,
        ber in 0u32..=1000,
    ) {
        let clean = stream(n, seed);
        let plan = FrameCorruptionPlan::new(seed)
            .with(FrameInjector::BitFlips { ber_per_million: ber })
            .with(FrameInjector::LengthLies { count: 1 });
        let a = plan.apply(&clean).unwrap();
        let b = plan.apply(&clean).unwrap();
        prop_assert_eq!(&a.bytes, &b.bytes);
        prop_assert_eq!(a.report, b.report);
        let ra = decode(&a.bytes, DecodePolicy::SkipCorrupt).unwrap().report;
        let rb = decode(&b.bytes, DecodePolicy::SkipCorrupt).unwrap().report;
        prop_assert_eq!(ra, rb);
    }

    /// At BER ≤ 1e-3 the lenient decode skips exactly the damaged frames
    /// (one resync per adjacent run, their summed wire bytes lost) and
    /// every surviving event is bit-identical to the clean decode.
    #[test]
    fn skipcorrupt_is_sound_up_to_ber_1e3(
        seed in 0u64..u64::MAX,
        n in 1usize..20_000,
        ber in 1u32..=1000,
    ) {
        let clean = stream(n, seed);
        let original = decode(&clean, DecodePolicy::Strict).unwrap();
        let plan = FrameCorruptionPlan::new(seed)
            .with(FrameInjector::BitFlips { ber_per_million: ber });
        let faulted = plan.apply(&clean).unwrap();

        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        prop_assert_eq!(out.report.frames_skipped, faulted.report.damage_runs);
        prop_assert_eq!(out.report.bytes_lost, faulted.report.damage_wire_bytes);
        prop_assert!(out.report.clean_end, "data-frame flips never touch the end marker");

        // Surviving demands are whole chunks of the clean stream, each
        // bit-identical: check every decoded chunk appears among the
        // clean chunks, in order.
        let clean_chunks: Vec<&[u64]> = original.demands.chunks(CHUNK).collect();
        let mut cursor = 0usize;
        for chunk in out.demands.chunks(CHUNK) {
            // A surviving chunk that was mid-stream keeps its full CHUNK
            // size; only the clean tail chunk may be short.
            let found = clean_chunks[cursor..]
                .iter()
                .position(|c| c.len() >= chunk.len() && &c[..chunk.len()] == chunk);
            prop_assert!(found.is_some(), "decoded chunk not bit-identical to any clean chunk");
            cursor += found.unwrap() + 1;
        }
        // Same property for timestamps (bitwise, through the f64 key map).
        let clean_bits: Vec<u64> = original.times.iter().map(|t| t.to_bits()).collect();
        let out_bits: Vec<u64> = out.times.iter().map(|t| t.to_bits()).collect();
        let clean_tchunks: Vec<&[u64]> = clean_bits.chunks(CHUNK).collect();
        let mut cursor = 0usize;
        for chunk in out_bits.chunks(CHUNK) {
            let found = clean_tchunks[cursor..]
                .iter()
                .position(|c| c.len() >= chunk.len() && &c[..chunk.len()] == chunk);
            prop_assert!(found.is_some(), "decoded time chunk not bit-identical");
            cursor += found.unwrap() + 1;
        }
    }

    /// Structural corruption (duplication + reordering) never breaks
    /// framing: every frame still passes its CRC and nothing is skipped.
    #[test]
    fn structural_faults_keep_framing_valid(
        seed in 0u64..u64::MAX,
        n in 1usize..6000,
        copies in 0usize..3,
        swaps in 0usize..3,
    ) {
        let clean = stream(n, seed);
        let plan = FrameCorruptionPlan::new(seed)
            .with(FrameInjector::DuplicateFrames { copies })
            .with(FrameInjector::ReorderFrames { swaps });
        let faulted = plan.apply(&clean).unwrap();
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        prop_assert_eq!(out.report.frames_skipped, 0);
        prop_assert_eq!(out.report.bytes_lost, 0);
        prop_assert!(out.demands.len() >= n);
    }

    /// Truncation surfaces as `truncated` + missing end marker, never as
    /// a panic, for any keep percentage.
    #[test]
    fn truncation_degrades_gracefully(
        seed in 0u64..u64::MAX,
        n in 1usize..6000,
        keep in 0u8..100,
    ) {
        let clean = stream(n, seed);
        let faulted = FrameCorruptionPlan::new(seed)
            .with(FrameInjector::Truncate { keep_pct: keep })
            .apply(&clean)
            .unwrap();
        prop_assert!(faulted.report.bytes_truncated > 0);
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        prop_assert!(out.report.truncated);
        prop_assert!(!out.report.clean_end);
        // Strict mode must reject the same bytes with a truncation error.
        let err = decode(&faulted.bytes, DecodePolicy::Strict).unwrap_err();
        prop_assert!(err.is_truncation() || err.offset > 0);
    }

    /// Timed-trace streams (registry + typed events + times) survive the
    /// same contract: report totals match ground truth exactly.
    #[test]
    fn typed_streams_match_ground_truth(
        seed in 0u64..u64::MAX,
        n in 1usize..4000,
        ber in 1u32..=1000,
    ) {
        use wcm_events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
        let mut reg = TypeRegistry::new();
        let a = reg.register(
            "mb/skip".to_string(),
            ExecutionInterval::new(Cycles(40), Cycles(40)).unwrap(),
        ).unwrap();
        let b = reg.register(
            "mb/intra".to_string(),
            ExecutionInterval::new(Cycles(900), Cycles(1800)).unwrap(),
        ).unwrap();
        let events: Vec<TimedEvent> = (0..n)
            .map(|i| TimedEvent {
                time: i as f64 * 0.01,
                ty: if i % 3 == 0 { b } else { a },
            })
            .collect();
        let trace = TimedTrace::new(reg, events).unwrap();
        let clean = encode_timed_trace("typed", &trace);
        let faulted = FrameCorruptionPlan::new(seed)
            .with(FrameInjector::BitFlips { ber_per_million: ber })
            .apply(&clean)
            .unwrap();
        let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
        prop_assert_eq!(out.report.frames_skipped, faulted.report.damage_runs);
        prop_assert_eq!(out.report.bytes_lost, faulted.report.damage_wire_bytes);
    }
}

/// Non-proptest spot check: the whole BER sweep used by EXPERIMENTS §E14
/// stays sound on a fixed mid-size stream.
#[test]
fn ber_sweep_fixed_stream() {
    let times: Vec<f64> = (0..30_000).map(|i| f64::from(i) * 0.001).collect();
    let clean = encode_times("sweep", &times).unwrap();
    for ber in [1u32, 10, 100, 500, 1000] {
        for seed in 0..4u64 {
            let faulted = FrameCorruptionPlan::new(seed)
                .with(FrameInjector::BitFlips { ber_per_million: ber })
                .apply(&clean)
                .unwrap();
            let out = decode(&faulted.bytes, DecodePolicy::SkipCorrupt).unwrap();
            assert_eq!(out.report.frames_skipped, faulted.report.damage_runs);
            assert_eq!(out.report.bytes_lost, faulted.report.damage_wire_bytes);
        }
    }
}
