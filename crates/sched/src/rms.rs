//! Rate-monotonic schedulability analysis (Sec. 3.1 of the paper).
//!
//! The exact test of Lehoczky, Sha & Ding (1989): task `τᵢ` (RM priority
//! order, `T₁ ≤ … ≤ Tₙ`, deadlines = periods) is schedulable iff
//!
//! > `Lᵢ = min_{0 < t ≤ Tᵢ} Wᵢ(t)/t ≤ 1`, where
//! > `Wᵢ(t) = Σ_{j ≤ i} Cⱼ·⌈t/Tⱼ⌉`  (eq. 3)
//!
//! and the whole set is schedulable iff `L = max Lᵢ ≤ 1`. The paper's
//! refinement (eq. 4) replaces the per-task demand with the workload curve:
//! `W̃ᵢ(t) = Σ_{j ≤ i} γᵘⱼ(⌈t/Tⱼ⌉)`. Since `γᵘⱼ(k) ≤ k·Cⱼ`, every load
//! factor can only improve: `W̃ᵢ ≤ Wᵢ`, `L̃ᵢ ≤ Lᵢ`, `L̃ ≤ L` (eq. 5).
//!
//! `Wᵢ(t)/t` is piecewise decreasing between arrival instants, so the
//! minimum over `t` is attained on the classic *scheduling points*
//! `Sᵢ = { l·Tⱼ : j ≤ i, l = 1 … ⌊Tᵢ/Tⱼ⌋ } ∪ {Tᵢ}`.

use crate::task::TaskSet;
use crate::SchedError;

/// Result of an exact RMS analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsAnalysis {
    /// Load factor `Lᵢ` per task, in priority order.
    pub l_factors: Vec<f64>,
    /// The set-level factor `L = max Lᵢ`.
    pub l: f64,
    /// Per-task schedulability verdict (`Lᵢ ≤ 1`).
    pub per_task: Vec<bool>,
}

impl RmsAnalysis {
    /// Whether the whole set is schedulable (`L ≤ 1`).
    #[must_use]
    pub fn schedulable(&self) -> bool {
        self.l <= 1.0 + 1e-12
    }
}

/// Liu & Layland's sufficient utilization bound `n·(2^{1/n} − 1)`.
///
/// # Example
///
/// ```
/// let b1 = wcm_sched::rms::liu_layland_bound(1);
/// let b3 = wcm_sched::rms::liu_layland_bound(3);
/// assert!((b1 - 1.0).abs() < 1e-12);
/// assert!(b3 < b1 && b3 > 0.693);
/// ```
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    let n = n.max(1) as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// The classic exact test (eq. 3), with demands taken as `k·Cⱼ`.
///
/// `frequency` is the processor speed in cycles per second used to convert
/// cycle demands into time.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] if `frequency` is not positive
/// and finite.
pub fn lehoczky_wcet(set: &TaskSet, frequency: f64) -> Result<RmsAnalysis, SchedError> {
    analyze(set, frequency, false)
}

/// The workload-curve test (eq. 4): demands `γᵘⱼ(⌈t/Tⱼ⌉)` where curves are
/// attached, falling back to `k·Cⱼ` otherwise.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] if `frequency` is not positive
/// and finite.
pub fn lehoczky_workload(set: &TaskSet, frequency: f64) -> Result<RmsAnalysis, SchedError> {
    analyze(set, frequency, true)
}

fn analyze(set: &TaskSet, frequency: f64, use_curves: bool) -> Result<RmsAnalysis, SchedError> {
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(SchedError::InvalidParameter { name: "frequency" });
    }
    let tasks = set.tasks();
    let mut l_factors = Vec::with_capacity(tasks.len());
    let mut per_task = Vec::with_capacity(tasks.len());
    for i in 0..tasks.len() {
        let t_i = tasks[i].period();
        // Scheduling points.
        let mut points: Vec<f64> = Vec::new();
        for task in &tasks[..=i] {
            let mut l = 1.0;
            while l * task.period() <= t_i * (1.0 + 1e-12) {
                points.push(l * task.period());
                l += 1.0;
            }
        }
        points.push(t_i);
        points.sort_by(f64::total_cmp);
        points.dedup_by(|a, b| (*a - *b).abs() < 1e-12 * (1.0 + b.abs()));

        let mut l_i = f64::INFINITY;
        for &t in &points {
            let mut demand_cycles = 0.0;
            for task in &tasks[..=i] {
                let k = (t / task.period()).ceil().max(1.0) as usize;
                let d = if use_curves {
                    task.demand_of_jobs(k)
                } else {
                    wcm_core::Cycles(task.wcet().get() * k as u64)
                };
                demand_cycles += d.get() as f64;
            }
            let w = demand_cycles / frequency;
            l_i = l_i.min(w / t);
        }
        per_task.push(l_i <= 1.0 + 1e-12);
        l_factors.push(l_i);
    }
    let l = l_factors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(RmsAnalysis {
        l_factors,
        l,
        per_task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PeriodicTask;
    use wcm_core::Cycles;

    fn simple_set(c1: u64, c2: u64) -> TaskSet {
        TaskSet::new(vec![
            PeriodicTask::new("t1", 10.0, Cycles(c1)).unwrap(),
            PeriodicTask::new("t2", 15.0, Cycles(c2)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn liu_layland_limits() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        // n → ∞ limit is ln 2.
        assert!((liu_layland_bound(100_000) - 2f64.ln()).abs() < 1e-4);
    }

    #[test]
    fn classic_textbook_schedulable_set() {
        // U = 4/10 + 6/15 = 0.8 ≤ LL-bound? 0.828 → schedulable; exact test
        // must agree.
        let set = simple_set(4, 6);
        let a = lehoczky_wcet(&set, 1.0).unwrap();
        assert!(a.schedulable());
        assert_eq!(a.l_factors.len(), 2);
        assert!(a.per_task.iter().all(|&b| b));
    }

    #[test]
    fn classic_overloaded_set_rejected() {
        // U = 9/10 + 6/15 = 1.3 > 1.
        let set = simple_set(9, 6);
        let a = lehoczky_wcet(&set, 1.0).unwrap();
        assert!(!a.schedulable());
    }

    #[test]
    fn exact_test_beats_utilization_bound() {
        // Harmonic periods are schedulable up to U = 1, beyond LL-bound.
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, Cycles(5)).unwrap(),
            PeriodicTask::new("b", 20.0, Cycles(10)).unwrap(),
        ])
        .unwrap();
        // U = 1.0 > 0.828, yet exactly schedulable.
        let a = lehoczky_wcet(&set, 1.0).unwrap();
        assert!(a.schedulable());
        assert!((a.l - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_scales_demand() {
        let set = simple_set(9, 6);
        // At double speed the overloaded set becomes schedulable.
        let a = lehoczky_wcet(&set, 2.0).unwrap();
        assert!(a.schedulable());
    }

    #[test]
    fn workload_test_never_worse_than_classic() {
        // Eq. 5: L̃ ≤ L, elementwise.
        let t1 = PeriodicTask::new("v", 10.0, Cycles(8))
            .unwrap()
            .with_pattern(vec![Cycles(8), Cycles(2), Cycles(2)])
            .unwrap();
        let t2 = PeriodicTask::new("a", 15.0, Cycles(5)).unwrap();
        let set = TaskSet::new(vec![t1, t2]).unwrap();
        let classic = lehoczky_wcet(&set, 1.0).unwrap();
        let refined = lehoczky_workload(&set, 1.0).unwrap();
        assert!(refined.l <= classic.l + 1e-12);
        for (r, c) in refined.l_factors.iter().zip(&classic.l_factors) {
            assert!(r <= &(c + 1e-12));
        }
    }

    #[test]
    fn workload_test_admits_set_classic_rejects() {
        // The Sec. 3.1 scenario: variable demand makes the set feasible
        // even though the all-WCET assumption overloads the processor.
        let video = PeriodicTask::new("video", 10.0, Cycles(9))
            .unwrap()
            .with_pattern(vec![Cycles(9), Cycles(3), Cycles(3)])
            .unwrap();
        let audio = PeriodicTask::new("audio", 30.0, Cycles(9)).unwrap();
        let set = TaskSet::new(vec![video, audio]).unwrap();
        let classic = lehoczky_wcet(&set, 1.0).unwrap();
        let refined = lehoczky_workload(&set, 1.0).unwrap();
        assert!(!classic.schedulable(), "classic should reject (L={})", classic.l);
        assert!(refined.schedulable(), "refined should admit (L̃={})", refined.l);
    }

    #[test]
    fn without_curves_both_tests_agree() {
        let set = simple_set(4, 6);
        let classic = lehoczky_wcet(&set, 1.0).unwrap();
        let refined = lehoczky_workload(&set, 1.0).unwrap();
        assert_eq!(classic, refined);
    }

    #[test]
    fn rejects_bad_frequency() {
        let set = simple_set(1, 1);
        assert!(lehoczky_wcet(&set, 0.0).is_err());
        assert!(lehoczky_workload(&set, f64::NAN).is_err());
    }
}
