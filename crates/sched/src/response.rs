//! Iterative response-time analysis, classic and workload-curve based.
//!
//! For fixed-priority preemptive scheduling, the worst-case response time of
//! task `τᵢ` released at a critical instant satisfies the recurrence
//!
//! > `R = Cᵢ/F + Σ_{j<i} Cⱼ·⌈R/Tⱼ⌉/F`  (classic)
//!
//! With workload curves the interference term tightens to
//! `γᵘⱼ(⌈R/Tⱼ⌉)/F` and the own demand stays `γᵘᵢ(1) = Cᵢ` — the number of
//! preempting jobs is unchanged, but their cumulative demand is bounded by
//! the curve instead of `k·Cⱼ`.

use crate::task::TaskSet;
use crate::SchedError;

/// Response-time bounds per task (priority order), `None` where the
/// iteration diverged past the deadline (unschedulable).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseAnalysis {
    /// Worst-case response time per task, `None` if > deadline.
    pub response_times: Vec<Option<f64>>,
}

impl ResponseAnalysis {
    /// Whether every task meets its deadline.
    #[must_use]
    pub fn schedulable(&self) -> bool {
        self.response_times.iter().all(Option::is_some)
    }
}

/// Classic response-time analysis (`k·Cⱼ` interference).
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for a non-positive `frequency`.
pub fn response_times_wcet(set: &TaskSet, frequency: f64) -> Result<ResponseAnalysis, SchedError> {
    analyze(set, frequency, false)
}

/// Workload-curve response-time analysis (`γᵘⱼ(k)` interference).
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for a non-positive `frequency`.
pub fn response_times_workload(
    set: &TaskSet,
    frequency: f64,
) -> Result<ResponseAnalysis, SchedError> {
    analyze(set, frequency, true)
}

fn analyze(set: &TaskSet, frequency: f64, use_curves: bool) -> Result<ResponseAnalysis, SchedError> {
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(SchedError::InvalidParameter { name: "frequency" });
    }
    let tasks = set.tasks();
    let mut out = Vec::with_capacity(tasks.len());
    for i in 0..tasks.len() {
        let own = tasks[i].wcet().get() as f64 / frequency;
        let deadline = tasks[i].deadline();
        let mut r = own;
        let mut result = None;
        for _ in 0..10_000 {
            let mut next = own;
            for task in &tasks[..i] {
                let k = (r / task.period()).ceil().max(1.0) as usize;
                let d = if use_curves {
                    task.demand_of_jobs(k)
                } else {
                    wcm_core::Cycles(task.wcet().get() * k as u64)
                };
                next += d.get() as f64 / frequency;
            }
            if (next - r).abs() <= 1e-12 * (1.0 + r.abs()) {
                result = (next <= deadline * (1.0 + 1e-12)).then_some(next);
                break;
            }
            if next > deadline * (1.0 + 1e-12) {
                break; // diverged past the deadline
            }
            r = next;
        }
        out.push(result);
    }
    Ok(ResponseAnalysis {
        response_times: out,
    })
}

/// Worst-case response time of an *event-driven* task on a dedicated
/// processor: events arrive per the pjd model `eta`, each demanding at
/// most what `gamma` allows, served FIFO at `frequency` cycles/s. The
/// bound is the horizontal deviation between the cycle demand
/// `γᵘ(η⁺(Δ))` and `β(Δ) = F·Δ` (the event-driven counterpart of the
/// periodic analyses above).
///
/// `horizon` bounds the arrival staircase that is materialized; it should
/// exceed the busy periods of interest (a few periods usually suffice —
/// the curves' affine tails cover the rest soundly).
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for non-positive `frequency`
/// or `horizon`, and propagates a workload error if the sustained demand
/// exceeds the processor capacity (no finite response bound).
pub fn event_driven_response(
    eta: &wcm_curves::arrival::PeriodicJitter,
    gamma: &wcm_core::UpperWorkloadCurve,
    frequency: f64,
    horizon: f64,
) -> Result<f64, SchedError> {
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(SchedError::InvalidParameter { name: "frequency" });
    }
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(SchedError::InvalidParameter { name: "horizon" });
    }
    let alpha = eta
        .to_step_upper(horizon)
        .map_err(wcm_core::WorkloadError::from)?;
    let beta = wcm_curves::Pwl::affine(0.0, frequency)
        .map_err(wcm_core::WorkloadError::from)?;
    Ok(wcm_core::rate::processing_delay(&alpha, &beta, gamma)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PeriodicTask;
    use wcm_core::Cycles;

    #[test]
    fn textbook_response_times() {
        // Classic example: T = (4, 6, 10), C = (1, 2, 3).
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 4.0, Cycles(1)).unwrap(),
            PeriodicTask::new("b", 6.0, Cycles(2)).unwrap(),
            PeriodicTask::new("c", 10.0, Cycles(3)).unwrap(),
        ])
        .unwrap();
        let r = response_times_wcet(&set, 1.0).unwrap();
        let rt: Vec<f64> = r.response_times.iter().map(|o| o.unwrap()).collect();
        assert!((rt[0] - 1.0).abs() < 1e-9);
        assert!((rt[1] - 3.0).abs() < 1e-9);
        // c: R = 3 + 1·⌈R/4⌉ + 2·⌈R/6⌉ → R = 10... iterate: 3→6→8→9→10→10.
        assert!((rt[2] - 10.0).abs() < 1e-9);
        assert!(r.schedulable());
    }

    #[test]
    fn unschedulable_low_priority_detected() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 4.0, Cycles(3)).unwrap(),
            PeriodicTask::new("b", 8.0, Cycles(3)).unwrap(),
        ])
        .unwrap();
        let r = response_times_wcet(&set, 1.0).unwrap();
        assert!(r.response_times[0].is_some());
        assert!(r.response_times[1].is_none());
        assert!(!r.schedulable());
    }

    #[test]
    fn workload_interference_shrinks_response_time() {
        let hp = PeriodicTask::new("hp", 4.0, Cycles(3))
            .unwrap()
            .with_pattern(vec![Cycles(3), Cycles(1), Cycles(1), Cycles(1)])
            .unwrap();
        let lp = PeriodicTask::new("lp", 16.0, Cycles(6)).unwrap();
        let set = TaskSet::new(vec![hp, lp]).unwrap();
        let classic = response_times_wcet(&set, 1.0).unwrap();
        let refined = response_times_workload(&set, 1.0).unwrap();
        // Classic: lp sees 3 cycles of interference every 4 ⇒ R grows large.
        // Refined: only one of four preemptions is expensive.
        let rc = classic.response_times[1];
        let rr = refined.response_times[1].expect("refined must be schedulable");
        // If classic diverged, the refined bound is strictly better.
        if let Some(rc) = rc {
            assert!(rr <= rc + 1e-9);
        }
        assert!(rr <= 16.0);
    }

    #[test]
    fn deadline_constrained_task() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, Cycles(6))
                .unwrap()
                .with_deadline(5.0)
                .unwrap(),
        ])
        .unwrap();
        let r = response_times_wcet(&set, 1.0).unwrap();
        // Response 6 > deadline 5.
        assert!(!r.schedulable());
        let fast = response_times_wcet(&set, 2.0).unwrap();
        assert!(fast.schedulable());
    }

    #[test]
    fn rejects_bad_frequency() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 1.0, Cycles(1)).unwrap()]).unwrap();
        assert!(response_times_wcet(&set, -1.0).is_err());
    }

    #[test]
    fn event_driven_bound_dominates_jittered_simulation() {
        use rand::SeedableRng;
        // Alternating hi/lo demands, period 10, jitter up to 4.
        let mut reg = wcm_events::TypeRegistry::new();
        let hi = reg
            .register("hi", wcm_events::ExecutionInterval::fixed(Cycles(8)))
            .unwrap();
        let lo = reg
            .register("lo", wcm_events::ExecutionInterval::fixed(Cycles(2)))
            .unwrap();
        let eta = wcm_curves::arrival::PeriodicJitter::new(10.0, 4.0, 1.0).unwrap();
        // γ of the alternating pattern: any window has ≤ ⌈k/2⌉ expensive.
        let gamma =
            wcm_core::UpperWorkloadCurve::new(vec![8, 10, 18, 20, 28, 30, 38, 40]).unwrap();
        let freq = 1.2;
        let bound = event_driven_response(&eta, &gamma, freq, 400.0).unwrap();
        for seed in 0..10 {
            let stream = wcm_events::gen::PeriodicGen::new(10.0, 4.0, vec![hi, lo])
                .unwrap()
                .generate(
                    &reg,
                    80,
                    &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed),
                )
                .unwrap();
            let sim =
                crate::traced::simulate_traced(std::slice::from_ref(&stream), freq).unwrap();
            assert!(
                sim.per_stream[0].max_response <= bound + 1e-9,
                "seed {seed}: simulated {} exceeds bound {bound}",
                sim.per_stream[0].max_response
            );
        }
    }

    #[test]
    fn event_driven_response_validates_and_detects_overload() {
        let eta = wcm_curves::arrival::PeriodicJitter::periodic(10.0).unwrap();
        let gamma = wcm_core::UpperWorkloadCurve::new(vec![8, 10]).unwrap();
        assert!(event_driven_response(&eta, &gamma, 0.0, 100.0).is_err());
        assert!(event_driven_response(&eta, &gamma, 1.0, 0.0).is_err());
        // Sustained demand 0.5 c/s vs capacity 0.1 c/s: unbounded.
        assert!(event_driven_response(&eta, &gamma, 0.1, 100.0).is_err());
    }
}
