//! Discrete-event preemptive scheduler simulator.
//!
//! Executes a [`TaskSet`] on a single processor under fixed-priority (RM
//! order) or EDF scheduling, using each task's concrete per-job demand
//! pattern (or its WCET if none is attached). Used to validate analysis
//! verdicts: a set admitted by [`crate::rms::lehoczky_workload`] must run
//! without deadline misses when its jobs follow the pattern the curve was
//! derived from.
//!
//! [`simulate_monitored`] additionally streams every admitted job's demand
//! through a per-task [`EnvelopeMonitor`], flagging online any run whose
//! demand sequence escapes the task's workload curve.

use crate::task::TaskSet;
use crate::SchedError;
use wcm_core::EnvelopeMonitor;

/// Scheduling policy of the simulated processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Fixed priorities in rate-monotonic order (shorter period wins).
    FixedPriority,
    /// Earliest absolute deadline first.
    Edf,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Processor speed in cycles per second.
    pub frequency: f64,
    /// Simulated time horizon in seconds (releases stop at the horizon;
    /// pending jobs are drained afterwards).
    pub horizon: f64,
    /// Scheduling policy.
    pub policy: Policy,
}

/// Per-task statistics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStats {
    /// Task name.
    pub name: String,
    /// Jobs released within the horizon.
    pub released: usize,
    /// Jobs that completed (possibly after their deadline).
    pub completed: usize,
    /// Jobs that finished after their absolute deadline (or never).
    pub deadline_misses: usize,
    /// Largest observed response time (release → completion), seconds.
    pub max_response: f64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Statistics per task, in priority order.
    pub per_task: Vec<TaskStats>,
    /// Total processor busy time in seconds.
    pub busy_time: f64,
}

impl SimResult {
    /// Whether no job missed its deadline.
    #[must_use]
    pub fn no_misses(&self) -> bool {
        self.per_task.iter().all(|s| s.deadline_misses == 0)
    }
}

#[derive(Debug, Clone)]
struct Job {
    task: usize,
    release: f64,
    abs_deadline: f64,
    demand: u64,
    remaining_cycles: f64,
}

/// Simulates the task set.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for non-positive `frequency` or
/// `horizon`.
///
/// # Example
///
/// ```
/// use wcm_sched::{sim::{simulate, Policy, SimConfig}, task::{PeriodicTask, TaskSet}};
/// use wcm_core::Cycles;
///
/// # fn main() -> Result<(), wcm_sched::SchedError> {
/// let set = TaskSet::new(vec![
///     PeriodicTask::new("a", 10.0, Cycles(4))?,
///     PeriodicTask::new("b", 15.0, Cycles(6))?,
/// ])?;
/// let result = simulate(&set, &SimConfig {
///     frequency: 1.0,
///     horizon: 300.0,
///     policy: Policy::FixedPriority,
/// })?;
/// assert!(result.no_misses());
/// # Ok(())
/// # }
/// ```
pub fn simulate(set: &TaskSet, cfg: &SimConfig) -> Result<SimResult, SchedError> {
    simulate_inner(set, cfg, &mut [])
}

/// Simulates the task set while streaming each task's per-job demand
/// through an optional per-task [`EnvelopeMonitor`] at the moment the job
/// is admitted to the ready queue.
///
/// `monitors[i]`, when present, observes the demand of every job of task
/// `i` in release order — the online counterpart of checking the task's
/// workload curve against the pattern it was derived from. Inspect each
/// monitor's [`EnvelopeMonitor::report`] after the run for structured
/// violations and minimum-slack statistics.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for non-positive `frequency`
/// or `horizon`, or if `monitors.len()` differs from the number of tasks.
///
/// # Example
///
/// ```
/// use wcm_core::{curve::UpperWorkloadCurve, Cycles, EnvelopeMonitor};
/// use wcm_sched::{sim::{simulate_monitored, Policy, SimConfig}, task::{PeriodicTask, TaskSet}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![PeriodicTask::new("v", 10.0, Cycles(9))?
///     .with_pattern(vec![Cycles(9), Cycles(3), Cycles(3)])?])?;
/// // γᵘ built from the pattern: any 1 job ≤ 9, any 2 ≤ 12, any 3 ≤ 15.
/// let gamma = UpperWorkloadCurve::new(vec![9, 12, 15])?;
/// let mut monitors = vec![Some(EnvelopeMonitor::upper_only(&gamma, 3)?)];
/// let result = simulate_monitored(&set, &SimConfig {
///     frequency: 1.0, horizon: 100.0, policy: Policy::FixedPriority,
/// }, &mut monitors)?;
/// assert!(result.no_misses());
/// assert!(monitors[0].as_ref().unwrap().is_clean());
/// # Ok(())
/// # }
/// ```
pub fn simulate_monitored(
    set: &TaskSet,
    cfg: &SimConfig,
    monitors: &mut [Option<EnvelopeMonitor>],
) -> Result<SimResult, SchedError> {
    if monitors.len() != set.tasks().len() {
        return Err(SchedError::InvalidParameter { name: "monitors" });
    }
    simulate_inner(set, cfg, monitors)
}

fn simulate_inner(
    set: &TaskSet,
    cfg: &SimConfig,
    monitors: &mut [Option<EnvelopeMonitor>],
) -> Result<SimResult, SchedError> {
    if !(cfg.frequency.is_finite() && cfg.frequency > 0.0) {
        return Err(SchedError::InvalidParameter { name: "frequency" });
    }
    if !(cfg.horizon.is_finite() && cfg.horizon > 0.0) {
        return Err(SchedError::InvalidParameter { name: "horizon" });
    }
    let tasks = set.tasks();
    let mut stats: Vec<TaskStats> = tasks
        .iter()
        .map(|t| TaskStats {
            name: t.name().to_string(),
            released: 0,
            completed: 0,
            deadline_misses: 0,
            max_response: 0.0,
        })
        .collect();

    // All releases within the horizon, sorted by time (stable on priority).
    let mut releases: Vec<Job> = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        let mut j = 0usize;
        loop {
            let r = j as f64 * task.period();
            if r >= cfg.horizon {
                break;
            }
            let demand = task.job_demand(j).get();
            releases.push(Job {
                task: i,
                release: r,
                abs_deadline: r + task.deadline(),
                demand,
                remaining_cycles: demand as f64,
            });
            stats[i].released += 1;
            j += 1;
        }
    }
    // total_cmp: release times are finite by construction (finite period ×
    // index), but a total order keeps the sort panic-free by type.
    releases.sort_by(|a, b| a.release.total_cmp(&b.release).then(a.task.cmp(&b.task)));

    let mut ready: Vec<Job> = Vec::new();
    let mut busy_time = 0.0_f64;
    let mut now = 0.0_f64;
    let mut next_release = 0usize;
    // Drain bound: generous but finite.
    let end_of_time = cfg.horizon * 10.0 + 1.0;

    let pick = |ready: &[Job], policy: Policy| -> Option<usize> {
        if ready.is_empty() {
            return None;
        }
        let idx = match policy {
            Policy::FixedPriority => ready
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.task.cmp(&b.task).then(a.release.total_cmp(&b.release))
                })
                .map(|(i, _)| i),
            Policy::Edf => ready
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.abs_deadline
                        .total_cmp(&b.abs_deadline)
                        .then(a.task.cmp(&b.task))
                })
                .map(|(i, _)| i),
        };
        idx
    };

    loop {
        // Admit releases that have occurred, streaming each admitted job's
        // demand through its task's envelope monitor (if any).
        while next_release < releases.len() && releases[next_release].release <= now + 1e-12 {
            let job = releases[next_release].clone();
            if let Some(Some(m)) = monitors.get_mut(job.task) {
                m.observe(job.demand);
            }
            ready.push(job);
            next_release += 1;
        }
        let boundary = if next_release < releases.len() {
            releases[next_release].release
        } else {
            end_of_time
        };
        match pick(&ready, cfg.policy) {
            None => {
                if next_release >= releases.len() {
                    break; // idle and nothing left
                }
                now = boundary;
            }
            Some(idx) => {
                let need = ready[idx].remaining_cycles / cfg.frequency;
                let slice = (boundary - now).min(need);
                ready[idx].remaining_cycles -= slice * cfg.frequency;
                busy_time += slice;
                now += slice;
                if ready[idx].remaining_cycles <= 1e-9 {
                    let job = ready.swap_remove(idx);
                    let s = &mut stats[job.task];
                    s.completed += 1;
                    let resp = now - job.release;
                    s.max_response = s.max_response.max(resp);
                    if now > job.abs_deadline + 1e-9 {
                        s.deadline_misses += 1;
                    }
                }
                if now >= end_of_time {
                    break;
                }
            }
        }
    }
    // Jobs never completed: count as misses if their deadline passed.
    for job in &ready {
        if job.abs_deadline < end_of_time {
            stats[job.task].deadline_misses += 1;
        }
    }
    Ok(SimResult {
        per_task: stats,
        busy_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms;
    use crate::task::PeriodicTask;
    use wcm_core::Cycles;

    fn cfg(policy: Policy) -> SimConfig {
        SimConfig {
            frequency: 1.0,
            horizon: 300.0,
            policy,
        }
    }

    #[test]
    fn single_task_runs_cleanly() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 10.0, Cycles(3)).unwrap()]).unwrap();
        let r = simulate(&set, &cfg(Policy::FixedPriority)).unwrap();
        assert!(r.no_misses());
        assert_eq!(r.per_task[0].released, 30);
        assert_eq!(r.per_task[0].completed, 30);
        assert!((r.per_task[0].max_response - 3.0).abs() < 1e-9);
        assert!((r.busy_time - 90.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_by_higher_priority() {
        // b released at 0 runs, a at 5 preempts.
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 5.0, Cycles(2)).unwrap(),
            PeriodicTask::new("b", 50.0, Cycles(10)).unwrap(),
        ])
        .unwrap();
        let r = simulate(
            &set,
            &SimConfig {
                frequency: 1.0,
                horizon: 50.0,
                policy: Policy::FixedPriority,
            },
        )
        .unwrap();
        assert!(r.no_misses());
        // b needs 10 cycles but loses 2 of every 5 to a: 0-2 a, 2-5 b,
        // 5-7 a, 7-10 b, 10-12 a, 12-15 b, 15-17 a, 17-18 b → done at 18.
        assert!((r.per_task[1].max_response - 18.0).abs() < 1e-9);
    }

    #[test]
    fn overload_misses_deadlines() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 4.0, Cycles(3)).unwrap(),
            PeriodicTask::new("b", 8.0, Cycles(4)).unwrap(),
        ])
        .unwrap();
        let r = simulate(&set, &cfg(Policy::FixedPriority)).unwrap();
        assert!(!r.no_misses());
        assert!(r.per_task[1].deadline_misses > 0);
    }

    #[test]
    fn edf_schedules_full_utilization() {
        // U = 1 with non-harmonic periods: EDF fine, RM misses.
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 4.0, Cycles(2)).unwrap(),
            PeriodicTask::new("b", 6.0, Cycles(3)).unwrap(),
        ])
        .unwrap();
        let edf = simulate(&set, &cfg(Policy::Edf)).unwrap();
        assert!(edf.no_misses(), "EDF must handle U = 1");
        let rm = simulate(&set, &cfg(Policy::FixedPriority)).unwrap();
        assert!(!rm.no_misses(), "RM cannot handle this set");
    }

    #[test]
    fn patterned_demand_follows_pattern() {
        let set = TaskSet::new(vec![PeriodicTask::new("v", 10.0, Cycles(8))
            .unwrap()
            .with_pattern(vec![Cycles(8), Cycles(2)])
            .unwrap()])
        .unwrap();
        let r = simulate(
            &set,
            &SimConfig {
                frequency: 1.0,
                horizon: 40.0,
                policy: Policy::FixedPriority,
            },
        )
        .unwrap();
        // 4 jobs: 8 + 2 + 8 + 2 = 20 cycles of busy time.
        assert!((r.busy_time - 20.0).abs() < 1e-9);
        assert!((r.per_task[0].max_response - 8.0).abs() < 1e-9);
    }

    #[test]
    fn workload_admitted_set_runs_without_misses() {
        // The E3 scenario end-to-end: classic test rejects, workload test
        // admits, simulation with the actual pattern confirms the verdict.
        let video = PeriodicTask::new("video", 10.0, Cycles(9))
            .unwrap()
            .with_pattern(vec![Cycles(9), Cycles(3), Cycles(3)])
            .unwrap();
        let audio = PeriodicTask::new("audio", 30.0, Cycles(9)).unwrap();
        let set = TaskSet::new(vec![video, audio]).unwrap();
        assert!(!rms::lehoczky_wcet(&set, 1.0).unwrap().schedulable());
        assert!(rms::lehoczky_workload(&set, 1.0).unwrap().schedulable());
        let r = simulate(&set, &cfg(Policy::FixedPriority)).unwrap();
        assert!(r.no_misses());
    }

    #[test]
    fn busy_time_matches_utilization() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, Cycles(2)).unwrap(),
            PeriodicTask::new("b", 20.0, Cycles(5)).unwrap(),
        ])
        .unwrap();
        let r = simulate(
            &set,
            &SimConfig {
                frequency: 1.0,
                horizon: 200.0,
                policy: Policy::FixedPriority,
            },
        )
        .unwrap();
        // 20 jobs × 2 + 10 jobs × 5 = 90 cycles.
        assert!((r.busy_time - 90.0).abs() < 1e-9);
    }

    #[test]
    fn validates_config() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 1.0, Cycles(1)).unwrap()]).unwrap();
        assert!(simulate(
            &set,
            &SimConfig {
                frequency: 0.0,
                horizon: 1.0,
                policy: Policy::Edf
            }
        )
        .is_err());
        assert!(simulate(
            &set,
            &SimConfig {
                frequency: 1.0,
                horizon: -1.0,
                policy: Policy::Edf
            }
        )
        .is_err());
    }

    #[test]
    fn monitored_run_is_clean_on_its_own_pattern() {
        use wcm_core::curve::UpperWorkloadCurve;
        let set = TaskSet::new(vec![PeriodicTask::new("v", 10.0, Cycles(9))
            .unwrap()
            .with_pattern(vec![Cycles(9), Cycles(3), Cycles(3)])
            .unwrap()])
        .unwrap();
        // γᵘ of the pattern: max over windows — 1 job ≤ 9, 2 ≤ 12, 3 ≤ 15.
        let gamma = UpperWorkloadCurve::new(vec![9, 12, 15]).unwrap();
        let mut monitors = vec![Some(EnvelopeMonitor::upper_only(&gamma, 3).unwrap())];
        let r = simulate_monitored(&set, &cfg(Policy::FixedPriority), &mut monitors).unwrap();
        assert!(r.no_misses());
        let m = monitors[0].as_ref().unwrap();
        assert_eq!(m.events(), 30); // every released job was observed
        assert!(m.is_clean());
        // The pattern actually attains the k = 2 bound, so slack is 0.
        assert_eq!(m.report().min_upper_slack(), Some(0));
    }

    #[test]
    fn monitored_run_flags_demands_above_the_curve() {
        use wcm_core::curve::UpperWorkloadCurve;
        let set = TaskSet::new(vec![PeriodicTask::new("v", 10.0, Cycles(9))
            .unwrap()
            .with_pattern(vec![Cycles(9), Cycles(3), Cycles(3)])
            .unwrap()])
        .unwrap();
        // Tighter curve than the pattern: γᵘ(1) = 8 < the 9-cycle jobs.
        let gamma = UpperWorkloadCurve::new(vec![8, 12, 15]).unwrap();
        let mut monitors = vec![Some(EnvelopeMonitor::upper_only(&gamma, 3).unwrap())];
        simulate_monitored(&set, &cfg(Policy::FixedPriority), &mut monitors).unwrap();
        let m = monitors[0].as_ref().unwrap();
        // 10 of the 30 jobs carry 9 cycles; each breaks the k = 1 bound.
        assert_eq!(m.total_violations(), 10);
        let v = &m.violations()[0];
        assert_eq!((v.k, v.observed, v.bound), (1, 9, 8));
    }

    #[test]
    fn monitored_rejects_mismatched_monitor_count() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 1.0, Cycles(1)).unwrap()]).unwrap();
        let r = simulate_monitored(&set, &cfg(Policy::FixedPriority), &mut []);
        assert!(matches!(
            r,
            Err(SchedError::InvalidParameter { name: "monitors" })
        ));
    }

    #[test]
    fn faster_processor_reduces_response() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 10.0, Cycles(8)).unwrap()]).unwrap();
        let slow = simulate(&set, &cfg(Policy::FixedPriority)).unwrap();
        let fast = simulate(
            &set,
            &SimConfig {
                frequency: 2.0,
                horizon: 300.0,
                policy: Policy::FixedPriority,
            },
        )
        .unwrap();
        assert!(fast.per_task[0].max_response < slow.per_task[0].max_response);
    }
}
