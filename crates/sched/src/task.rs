//! Periodic tasks with variable execution demand.
//!
//! A [`PeriodicTask`] releases a job every `period` seconds with a relative
//! `deadline` (default: the period, as in the paper's RMS setting). Its
//! demand is characterized three ways, from coarse to fine:
//!
//! * a single [`wcet`](PeriodicTask::wcet) — the classic model;
//! * optionally an upper workload curve `γᵘ(k)` bounding any `k`
//!   consecutive jobs — the paper's model;
//! * optionally a concrete cyclic per-job demand [`pattern`]
//!   (e.g. the `I B B P B B …` cycle of an MPEG decoder task) — used by the
//!   simulator to generate executable behaviour consistent with the curve.
//!
//! [`pattern`]: PeriodicTask::with_pattern

use crate::SchedError;
use wcm_core::{Cycles, UpperWorkloadCurve};
use wcm_events::window::{max_window_sums, WindowMode};

/// A periodic task.
///
/// # Example
///
/// ```
/// use wcm_sched::task::PeriodicTask;
/// use wcm_core::Cycles;
///
/// # fn main() -> Result<(), wcm_sched::SchedError> {
/// let t = PeriodicTask::new("ctrl", 5.0, Cycles(2))?
///     .with_deadline(4.0)?;
/// assert_eq!(t.period(), 5.0);
/// assert_eq!(t.deadline(), 4.0);
/// assert_eq!(t.wcet(), Cycles(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTask {
    name: String,
    period: f64,
    deadline: f64,
    wcet: Cycles,
    gamma: Option<UpperWorkloadCurve>,
    pattern: Option<Vec<Cycles>>,
}

impl PeriodicTask {
    /// Creates a task with implicit deadline (= period) and WCET-only
    /// demand.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] if `period` is not a
    /// positive finite number or `wcet` is zero.
    pub fn new(name: impl Into<String>, period: f64, wcet: Cycles) -> Result<Self, SchedError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(SchedError::InvalidParameter { name: "period" });
        }
        if wcet == Cycles::ZERO {
            return Err(SchedError::InvalidParameter { name: "wcet" });
        }
        Ok(Self {
            name: name.into(),
            period,
            deadline: period,
            wcet,
            gamma: None,
            pattern: None,
        })
    }

    /// Sets a relative deadline (constrained: `0 < D ≤ T`).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] for out-of-range deadlines.
    pub fn with_deadline(mut self, deadline: f64) -> Result<Self, SchedError> {
        if !(deadline.is_finite() && deadline > 0.0 && deadline <= self.period) {
            return Err(SchedError::InvalidParameter { name: "deadline" });
        }
        self.deadline = deadline;
        Ok(self)
    }

    /// Attaches an upper workload curve; `γᵘ(1)` must match the WCET.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] if `γᵘ(1) > wcet` (the curve
    /// would be inconsistent with the declared per-job worst case).
    pub fn with_curve(mut self, gamma: UpperWorkloadCurve) -> Result<Self, SchedError> {
        if gamma.wcet() > self.wcet {
            return Err(SchedError::InvalidParameter { name: "gamma" });
        }
        self.gamma = Some(gamma);
        Ok(self)
    }

    /// Attaches a cyclic per-job demand pattern and *derives* the workload
    /// curve from it: `γᵘ(k)` = the maximum demand of `k` consecutive jobs
    /// of the infinite repetition of the pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] if the pattern is empty or
    /// a demand exceeds the declared WCET;
    /// [`SchedError::DemandExceedsCurve`] never (the curve is derived).
    pub fn with_pattern(mut self, pattern: Vec<Cycles>) -> Result<Self, SchedError> {
        if pattern.is_empty() {
            return Err(SchedError::InvalidParameter { name: "pattern" });
        }
        if pattern.iter().any(|&c| c > self.wcet) {
            return Err(SchedError::InvalidParameter { name: "pattern" });
        }
        // Unroll enough repetitions that every window position of the
        // infinite cyclic sequence appears: 3 periods cover windows up to
        // 2·len starting anywhere.
        let len = pattern.len();
        let demands: Vec<u64> = pattern
            .iter()
            .cycle()
            .take(3 * len)
            .map(|c| c.get())
            .collect();
        let values = max_window_sums(&demands, 2 * len, WindowMode::Exact)
            .map_err(wcm_core::WorkloadError::from)?;
        let gamma = UpperWorkloadCurve::new(values).map_err(SchedError::from)?;
        self.gamma = Some(gamma);
        self.pattern = Some(pattern);
        Ok(self)
    }

    /// Task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Period `T`.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Relative deadline `D ≤ T`.
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Per-job worst case `C`.
    #[must_use]
    pub fn wcet(&self) -> Cycles {
        self.wcet
    }

    /// The attached workload curve, if any.
    #[must_use]
    pub fn gamma(&self) -> Option<&UpperWorkloadCurve> {
        self.gamma.as_ref()
    }

    /// The cyclic demand pattern, if any.
    #[must_use]
    pub fn pattern(&self) -> Option<&[Cycles]> {
        self.pattern.as_deref()
    }

    /// Demand of job number `j` (0-based) under the pattern, or the WCET if
    /// no pattern is attached.
    #[must_use]
    pub fn job_demand(&self, j: usize) -> Cycles {
        match &self.pattern {
            Some(p) => p[j % p.len()],
            None => self.wcet,
        }
    }

    /// Worst-case cumulative demand of any `k` consecutive jobs: the
    /// workload curve if present, else `k·C` (the eq. 3 term).
    #[must_use]
    pub fn demand_of_jobs(&self, k: usize) -> Cycles {
        match &self.gamma {
            Some(g) => g.value(k),
            None => Cycles(self.wcet.get() * k as u64),
        }
    }

    /// Utilization upper bound `C/T` in cycles per second (classic) —
    /// with a curve, the long-run rate `γᵘ(K)/(K·T)` which is at most the
    /// classic value.
    #[must_use]
    pub fn utilization_cycles(&self) -> f64 {
        match &self.gamma {
            Some(g) => g.tail_cycles_per_event() / self.period,
            None => self.wcet.get() as f64 / self.period,
        }
    }
}

/// An ordered set of periodic tasks, sorted by period (rate-monotonic
/// priority order: index 0 = highest priority).
///
/// # Example
///
/// ```
/// use wcm_sched::task::{PeriodicTask, TaskSet};
/// use wcm_core::Cycles;
///
/// # fn main() -> Result<(), wcm_sched::SchedError> {
/// let set = TaskSet::new(vec![
///     PeriodicTask::new("slow", 20.0, Cycles(4))?,
///     PeriodicTask::new("fast", 5.0, Cycles(1))?,
/// ])?;
/// assert_eq!(set.tasks()[0].name(), "fast"); // RM order
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Creates a task set, sorting by period ascending (RM priorities).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::EmptyTaskSet`] for an empty vector.
    pub fn new(mut tasks: Vec<PeriodicTask>) -> Result<Self, SchedError> {
        if tasks.is_empty() {
            return Err(SchedError::EmptyTaskSet);
        }
        // total_cmp: periods are validated finite at construction.
        tasks.sort_by(|a, b| a.period.total_cmp(&b.period));
        Ok(Self { tasks })
    }

    /// Tasks in priority order (index 0 = highest).
    #[must_use]
    pub fn tasks(&self) -> &[PeriodicTask] {
        &self.tasks
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total long-run utilization in cycles per second.
    #[must_use]
    pub fn utilization_cycles(&self) -> f64 {
        self.tasks.iter().map(PeriodicTask::utilization_cycles).sum()
    }

    /// The hyperperiod (LCM of periods) if the periods are integral
    /// multiples of a common 1 ms grid; `None` otherwise.
    #[must_use]
    pub fn hyperperiod(&self) -> Option<f64> {
        const GRID: f64 = 1e-3;
        let mut lcm: u64 = 1;
        for t in &self.tasks {
            let ticks = (t.period / GRID).round();
            if !(ticks.is_finite() && ticks >= 1.0)
                || ((t.period / GRID) - ticks).abs() > 1e-6
            {
                return None;
            }
            let ticks = ticks as u64;
            lcm = lcm / gcd(lcm, ticks) * ticks;
            if lcm > u64::MAX / 1000 {
                return None;
            }
        }
        Some(lcm as f64 * GRID)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_validates() {
        assert!(PeriodicTask::new("x", 0.0, Cycles(1)).is_err());
        assert!(PeriodicTask::new("x", f64::INFINITY, Cycles(1)).is_err());
        assert!(PeriodicTask::new("x", 1.0, Cycles(0)).is_err());
        let t = PeriodicTask::new("x", 1.0, Cycles(1)).unwrap();
        assert!(t.clone().with_deadline(2.0).is_err());
        assert!(t.clone().with_deadline(0.0).is_err());
        assert!(t.with_deadline(0.5).is_ok());
    }

    #[test]
    fn curve_must_match_wcet() {
        let t = PeriodicTask::new("x", 1.0, Cycles(5)).unwrap();
        let too_big = UpperWorkloadCurve::new(vec![6, 7]).unwrap();
        assert!(t.clone().with_curve(too_big).is_err());
        let ok = UpperWorkloadCurve::new(vec![5, 7]).unwrap();
        assert!(t.with_curve(ok).is_ok());
    }

    #[test]
    fn pattern_derives_curve() {
        // MPEG-ish: one expensive job out of three.
        let t = PeriodicTask::new("dec", 1.0, Cycles(9))
            .unwrap()
            .with_pattern(vec![Cycles(9), Cycles(2), Cycles(2)])
            .unwrap();
        let g = t.gamma().unwrap();
        assert_eq!(g.value(1), Cycles(9));
        assert_eq!(g.value(2), Cycles(11));
        assert_eq!(g.value(3), Cycles(13));
        assert_eq!(g.value(4), Cycles(9 + 2 + 2 + 9));
        // Job demands cycle through the pattern.
        assert_eq!(t.job_demand(0), Cycles(9));
        assert_eq!(t.job_demand(4), Cycles(2));
    }

    #[test]
    fn pattern_validates() {
        let t = PeriodicTask::new("x", 1.0, Cycles(3)).unwrap();
        assert!(t.clone().with_pattern(vec![]).is_err());
        assert!(t.with_pattern(vec![Cycles(4)]).is_err()); // above WCET
    }

    #[test]
    fn demand_of_jobs_with_and_without_curve() {
        let plain = PeriodicTask::new("p", 1.0, Cycles(4)).unwrap();
        assert_eq!(plain.demand_of_jobs(3), Cycles(12));
        let curved = PeriodicTask::new("c", 1.0, Cycles(4))
            .unwrap()
            .with_pattern(vec![Cycles(4), Cycles(1)])
            .unwrap();
        assert_eq!(curved.demand_of_jobs(2), Cycles(5));
        assert!(curved.demand_of_jobs(3) < Cycles(12));
    }

    #[test]
    fn taskset_sorts_by_period() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("c", 30.0, Cycles(1)).unwrap(),
            PeriodicTask::new("a", 10.0, Cycles(1)).unwrap(),
            PeriodicTask::new("b", 20.0, Cycles(1)).unwrap(),
        ])
        .unwrap();
        let names: Vec<&str> = set.tasks().iter().map(PeriodicTask::name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(TaskSet::new(vec![]).is_err());
    }

    #[test]
    fn utilization_sums() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, Cycles(2)).unwrap(),
            PeriodicTask::new("b", 20.0, Cycles(5)).unwrap(),
        ])
        .unwrap();
        assert!((set.utilization_cycles() - (0.2 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn curve_utilization_is_tighter() {
        let plain = PeriodicTask::new("p", 2.0, Cycles(9)).unwrap();
        let curved = PeriodicTask::new("c", 2.0, Cycles(9))
            .unwrap()
            .with_pattern(vec![Cycles(9), Cycles(1), Cycles(1)])
            .unwrap();
        assert!(curved.utilization_cycles() < plain.utilization_cycles());
    }

    #[test]
    fn hyperperiod() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 0.010, Cycles(1)).unwrap(),
            PeriodicTask::new("b", 0.015, Cycles(1)).unwrap(),
        ])
        .unwrap();
        assert!((set.hyperperiod().unwrap() - 0.030).abs() < 1e-9);
        let odd = TaskSet::new(vec![
            PeriodicTask::new("a", 0.0101234567, Cycles(1)).unwrap(),
        ])
        .unwrap();
        assert!(odd.hyperperiod().is_none());
    }
}
