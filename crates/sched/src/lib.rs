//! Schedulability analysis with workload curves, plus a discrete-event
//! scheduler simulator.
//!
//! Implements the first application of the paper (Sec. 3.1): improving the
//! exact rate-monotonic schedulability condition of Lehoczky, Sha & Ding by
//! replacing the per-task term `Cⱼ·⌈t/Tⱼ⌉` of eq. 3 with the workload curve
//! `γᵘⱼ(⌈t/Tⱼ⌉)` of eq. 4 — giving load factors `L̃ᵢ ≤ Lᵢ`, i.e. a test
//! that admits every task set the classic test admits and more.
//!
//! # Modules
//!
//! * [`task`] — periodic task model with per-job demand patterns;
//! * [`rms`] — Liu–Layland utilization bound, the classic Lehoczky test and
//!   its workload-curve refinement;
//! * [`response`] — iterative response-time analysis, classic and γ-based;
//! * [`edf`] — processor-demand (demand-bound-function) EDF test, classic
//!   and γ-based (the Baruah-style combination mentioned in the paper's
//!   related work);
//! * [`sim`] — a preemptive discrete-event scheduler simulator
//!   (fixed-priority or EDF) used to validate analysis verdicts against
//!   executable behaviour.
//!
//! # Example
//!
//! ```
//! use wcm_sched::{rms, task::{PeriodicTask, TaskSet}};
//! use wcm_core::{Cycles, UpperWorkloadCurve};
//!
//! # fn main() -> Result<(), wcm_sched::SchedError> {
//! // A task whose expensive job occurs at most once every 3 activations.
//! let gamma = UpperWorkloadCurve::new(vec![9, 11, 13])
//!     .map_err(wcm_sched::SchedError::from)?;
//! let t1 = PeriodicTask::new("video", 10.0, Cycles(9))?.with_curve(gamma)?;
//! let t2 = PeriodicTask::new("audio", 15.0, Cycles(5))?;
//! let set = TaskSet::new(vec![t1, t2])?;
//! let classic = rms::lehoczky_wcet(&set, 1.0)?;
//! let refined = rms::lehoczky_workload(&set, 1.0)?;
//! assert!(refined.l <= classic.l); // eq. 5: L̃ ≤ L
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edf;
mod error;
pub mod response;
pub mod rms;
pub mod sim;
pub mod task;
pub mod traced;

pub use error::SchedError;
pub use task::{PeriodicTask, TaskSet};
