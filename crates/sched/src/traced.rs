//! Event-driven task simulation: tasks triggered by timed, typed event
//! streams rather than periodic releases.
//!
//! This is the executable counterpart of the paper's streaming analysis
//! (Sec. 3.2): each stream's events arrive at measured timestamps and every
//! event demands `wcet(type)` cycles. Streams share one processor under
//! fixed priorities (stream 0 highest) with preemption. The observed
//! per-event response times can be checked against the Network-Calculus
//! delay bound `h(γᵘ ∘ ᾱ, β)` — see
//! `tests in this module` and `wcm_core::rate::processing_delay`.

use crate::SchedError;
use wcm_events::TimedTrace;

/// Per-stream statistics of a traced simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Events processed.
    pub completed: usize,
    /// Largest event response time (arrival → completion), seconds.
    pub max_response: f64,
    /// Largest number of pending events of this stream.
    pub max_backlog: usize,
}

/// Result of a traced simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedSimResult {
    /// Statistics per stream, in priority order.
    pub per_stream: Vec<StreamStats>,
    /// Total processor busy time, seconds.
    pub busy_time: f64,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    stream: usize,
    arrival: f64,
    remaining: f64,
}

/// Simulates the streams on one preemptive fixed-priority processor of
/// `frequency` cycles per second; stream order is priority order. Each
/// event demands the WCET of its type.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for a non-positive frequency
/// or [`SchedError::EmptyTaskSet`] for an empty stream list.
///
/// # Example
///
/// ```
/// use wcm_events::{gen::PeriodicGen, Cycles, ExecutionInterval, TypeRegistry};
/// use wcm_sched::traced::simulate_traced;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = TypeRegistry::new();
/// let t = reg.register("tick", ExecutionInterval::fixed(Cycles(3)))?;
/// let stream = PeriodicGen::new(10.0, 0.0, vec![t])?
///     .generate(&reg, 20, &mut ChaCha8Rng::seed_from_u64(1))?;
/// let result = simulate_traced(&[stream], 1.0)?;
/// assert_eq!(result.per_stream[0].completed, 20);
/// assert!((result.per_stream[0].max_response - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn simulate_traced(
    streams: &[TimedTrace],
    frequency: f64,
) -> Result<TracedSimResult, SchedError> {
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(SchedError::InvalidParameter { name: "frequency" });
    }
    if streams.is_empty() {
        return Err(SchedError::EmptyTaskSet);
    }
    // Gather all releases.
    let mut releases: Vec<Job> = Vec::new();
    for (si, stream) in streams.iter().enumerate() {
        for e in stream.events() {
            let demand = stream.registry().interval(e.ty).wcet().get() as f64;
            releases.push(Job {
                stream: si,
                arrival: e.time,
                remaining: demand,
            });
        }
    }
    // total_cmp: TimedTrace guarantees finite timestamps, and a total
    // order keeps the sort panic-free even if that invariant moves.
    releases.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.stream.cmp(&b.stream)));

    let mut stats: Vec<StreamStats> = streams
        .iter()
        .map(|_| StreamStats {
            completed: 0,
            max_response: 0.0,
            max_backlog: 0,
        })
        .collect();
    let mut ready: Vec<Job> = Vec::new();
    let mut now = 0.0f64;
    let mut next = 0usize;
    let mut busy = 0.0f64;
    loop {
        while next < releases.len() && releases[next].arrival <= now + 1e-12 {
            ready.push(releases[next]);
            next += 1;
            // Track per-stream backlog right after each admission.
            for (si, s) in stats.iter_mut().enumerate() {
                let pending = ready.iter().filter(|j| j.stream == si).count();
                s.max_backlog = s.max_backlog.max(pending);
            }
        }
        let boundary = if next < releases.len() {
            releases[next].arrival
        } else {
            f64::INFINITY
        };
        // Highest priority = lowest stream index; FIFO within a stream.
        let pick = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.stream.cmp(&b.stream).then(a.arrival.total_cmp(&b.arrival))
            })
            .map(|(i, _)| i);
        match pick {
            None => {
                if next >= releases.len() {
                    break;
                }
                now = boundary;
            }
            Some(idx) => {
                let need = ready[idx].remaining / frequency;
                let slice = (boundary - now).min(need);
                ready[idx].remaining -= slice * frequency;
                busy += slice;
                now += slice;
                if ready[idx].remaining <= 1e-9 {
                    let job = ready.swap_remove(idx);
                    let s = &mut stats[job.stream];
                    s.completed += 1;
                    s.max_response = s.max_response.max(now - job.arrival);
                }
            }
        }
    }
    Ok(TracedSimResult {
        per_stream: stats,
        busy_time: busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wcm_events::gen::{BurstGen, PeriodicGen};
    use wcm_events::{Cycles, ExecutionInterval, TypeRegistry};

    fn registry() -> (TypeRegistry, wcm_events::EventType, wcm_events::EventType) {
        let mut reg = TypeRegistry::new();
        let hi = reg
            .register("hi", ExecutionInterval::fixed(Cycles(8)))
            .unwrap();
        let lo = reg
            .register("lo", ExecutionInterval::fixed(Cycles(2)))
            .unwrap();
        (reg, hi, lo)
    }

    #[test]
    fn single_stream_responses() {
        let (reg, hi, lo) = registry();
        let stream = PeriodicGen::new(10.0, 0.0, vec![hi, lo])
            .unwrap()
            .generate(&reg, 10, &mut ChaCha8Rng::seed_from_u64(1))
            .unwrap();
        let r = simulate_traced(&[stream], 1.0).unwrap();
        assert_eq!(r.per_stream[0].completed, 10);
        assert!((r.per_stream[0].max_response - 8.0).abs() < 1e-9);
        assert!((r.busy_time - 5.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn burst_builds_backlog() {
        let (reg, hi, _) = registry();
        let stream = BurstGen::new(100.0, 5, 0.0, hi)
            .unwrap()
            .generate(&reg, 2)
            .unwrap();
        let r = simulate_traced(&[stream], 1.0).unwrap();
        assert_eq!(r.per_stream[0].max_backlog, 5);
        // Last of 5 simultaneous 8-cycle jobs finishes after 40 s.
        assert!((r.per_stream[0].max_response - 40.0).abs() < 1e-9);
    }

    #[test]
    fn high_priority_stream_preempts() {
        let (reg, hi, lo) = registry();
        let fast = PeriodicGen::new(5.0, 0.0, vec![lo])
            .unwrap()
            .generate(&reg, 20, &mut ChaCha8Rng::seed_from_u64(2))
            .unwrap();
        let slow = PeriodicGen::new(50.0, 0.0, vec![hi])
            .unwrap()
            .generate(&reg, 2, &mut ChaCha8Rng::seed_from_u64(3))
            .unwrap();
        let r = simulate_traced(&[fast, slow], 1.0).unwrap();
        // The high-priority stream is never delayed by the low one.
        assert!((r.per_stream[0].max_response - 2.0).abs() < 1e-9);
        // The low-priority job is preempted: 8 own cycles plus interference.
        assert!(r.per_stream[1].max_response > 8.0);
    }

    #[test]
    fn response_bounded_by_network_calculus_delay() {
        // Cross-layer check: the simulated worst response of a stream with
        // arrival curve ᾱ and workload curve γᵘ on a dedicated processor is
        // bounded by h(γᵘ∘ᾱ, β).
        let (reg, hi, lo) = registry();
        let stream = PeriodicGen::new(4.0, 6.0, vec![hi, lo, lo])
            .unwrap()
            .generate(&reg, 120, &mut ChaCha8Rng::seed_from_u64(4))
            .unwrap();
        let freq = 2.5;
        let sim = simulate_traced(std::slice::from_ref(&stream), freq).unwrap();
        // Measure curves from the same trace.
        let alpha = wcm_core::build::arrival_upper(
            &stream,
            60,
            wcm_events::window::WindowMode::Exact,
        )
        .unwrap();
        let trace = stream.to_trace();
        let gamma = wcm_core::UpperWorkloadCurve::from_trace(
            &trace,
            60,
            wcm_events::window::WindowMode::Exact,
        )
        .unwrap();
        let beta = wcm_curves::Pwl::affine(0.0, freq).unwrap();
        let bound = wcm_core::rate::processing_delay(&alpha, &beta, &gamma).unwrap();
        assert!(
            sim.per_stream[0].max_response <= bound + 1e-9,
            "simulated {} exceeds analytical bound {}",
            sim.per_stream[0].max_response,
            bound
        );
    }

    #[test]
    fn validates_input() {
        assert!(simulate_traced(&[], 1.0).is_err());
        let (reg, hi, _) = registry();
        let s = PeriodicGen::new(1.0, 0.0, vec![hi])
            .unwrap()
            .generate(&reg, 2, &mut ChaCha8Rng::seed_from_u64(5))
            .unwrap();
        assert!(simulate_traced(&[s], 0.0).is_err());
    }
}
