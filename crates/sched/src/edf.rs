//! Processor-demand (demand-bound function) analysis for EDF.
//!
//! The paper's related-work section notes that workload curves are
//! orthogonal to Baruah's demand-bound functions and that "both models can
//! be easily combined into a powerful analytical framework" — this module is
//! that combination for periodic tasks: the demand-bound function of task
//! `τᵢ` over an interval of length `t` counts the jobs whose release *and*
//! deadline fall inside, `nᵢ(t) = max(0, ⌊(t − Dᵢ)/Tᵢ⌋ + 1)`, and bounds
//! their cumulative demand by
//!
//! * `nᵢ(t)·Cᵢ` (classic), or
//! * `γᵘᵢ(nᵢ(t))` (workload curves — tighter whenever demands vary).
//!
//! EDF schedulability on a processor of `F` cycles/s holds iff
//! `Σᵢ dbfᵢ(t) ≤ F·t` for all `t` up to a testing horizon; the check points
//! are the absolute deadlines `l·Tᵢ + Dᵢ`.

use crate::task::TaskSet;
use crate::SchedError;
use wcm_core::Cycles;

/// Result of an EDF demand-bound test.
#[derive(Debug, Clone, PartialEq)]
pub struct EdfAnalysis {
    /// Whether the demand never exceeded capacity up to the horizon.
    pub schedulable: bool,
    /// The maximum observed demand/capacity ratio.
    pub max_load: f64,
    /// The interval length at which the maximum load occurred.
    pub critical_t: f64,
}

/// Number of jobs of a task with both release and deadline inside `[0, t]`.
fn job_count(period: f64, deadline: f64, t: f64) -> usize {
    if t < deadline {
        0
    } else {
        (((t - deadline) / period).floor() as usize) + 1
    }
}

/// The demand-bound function of a single task at `t`, in cycles.
///
/// Uses the workload curve if `use_curves` and one is attached.
fn dbf(task: &crate::task::PeriodicTask, t: f64, use_curves: bool) -> Cycles {
    let n = job_count(task.period(), task.deadline(), t);
    if use_curves {
        task.demand_of_jobs(n)
    } else {
        Cycles(task.wcet().get() * n as u64)
    }
}

/// Classic EDF demand-bound test over `[0, horizon]`.
///
/// For exactness the horizon should cover the hyperperiod (use
/// [`TaskSet::hyperperiod`]); shorter horizons make the test optimistic,
/// longer ones are safe.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for non-positive `frequency` or
/// `horizon`.
pub fn edf_wcet(set: &TaskSet, frequency: f64, horizon: f64) -> Result<EdfAnalysis, SchedError> {
    analyze(set, frequency, horizon, false)
}

/// Workload-curve EDF demand-bound test over `[0, horizon]`.
///
/// # Errors
///
/// Returns [`SchedError::InvalidParameter`] for non-positive `frequency` or
/// `horizon`.
pub fn edf_workload(
    set: &TaskSet,
    frequency: f64,
    horizon: f64,
) -> Result<EdfAnalysis, SchedError> {
    analyze(set, frequency, horizon, true)
}

fn analyze(
    set: &TaskSet,
    frequency: f64,
    horizon: f64,
    use_curves: bool,
) -> Result<EdfAnalysis, SchedError> {
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(SchedError::InvalidParameter { name: "frequency" });
    }
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(SchedError::InvalidParameter { name: "horizon" });
    }
    // Check points: absolute deadlines up to the horizon.
    let mut points: Vec<f64> = Vec::new();
    for task in set.tasks() {
        let mut l = 0.0;
        loop {
            let t = l * task.period() + task.deadline();
            if t > horizon {
                break;
            }
            points.push(t);
            l += 1.0;
        }
    }
    // total_cmp: deadline points are finite (period × index + deadline),
    // and a total order keeps the sort panic-free by construction.
    points.sort_by(f64::total_cmp);
    points.dedup_by(|a, b| (*a - *b).abs() < 1e-12 * (1.0 + b.abs()));

    let mut max_load = 0.0_f64;
    let mut critical_t = 0.0_f64;
    for &t in &points {
        let demand: f64 = set
            .tasks()
            .iter()
            .map(|task| dbf(task, t, use_curves).get() as f64)
            .sum();
        let load = demand / (frequency * t);
        if load > max_load {
            max_load = load;
            critical_t = t;
        }
    }
    // Long-run rate condition (covers t beyond the horizon).
    let u = set.utilization_cycles() / frequency;
    let schedulable = max_load <= 1.0 + 1e-12 && u <= 1.0 + 1e-12;
    Ok(EdfAnalysis {
        schedulable,
        max_load: max_load.max(u),
        critical_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PeriodicTask;

    #[test]
    fn implicit_deadline_edf_is_utilization_test() {
        // For D = T, EDF is feasible iff U ≤ 1.
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, Cycles(5)).unwrap(),
            PeriodicTask::new("b", 20.0, Cycles(10)).unwrap(),
        ])
        .unwrap();
        let a = edf_wcet(&set, 1.0, 40.0).unwrap();
        assert!(a.schedulable, "U = 1.0 must be feasible under EDF");
        let over = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, Cycles(6)).unwrap(),
            PeriodicTask::new("b", 20.0, Cycles(10)).unwrap(),
        ])
        .unwrap();
        assert!(!edf_wcet(&over, 1.0, 40.0).unwrap().schedulable);
    }

    #[test]
    fn constrained_deadline_tightens() {
        let tight = TaskSet::new(vec![PeriodicTask::new("a", 10.0, Cycles(5))
            .unwrap()
            .with_deadline(4.0)
            .unwrap()])
        .unwrap();
        // 5 cycles due within 4 seconds at 1 Hz: infeasible.
        assert!(!edf_wcet(&tight, 1.0, 40.0).unwrap().schedulable);
        assert!(edf_wcet(&tight, 2.0, 40.0).unwrap().schedulable);
    }

    #[test]
    fn workload_curves_admit_more() {
        // Variable demand: the expensive job happens once per 4 periods.
        let video = PeriodicTask::new("v", 10.0, Cycles(8))
            .unwrap()
            .with_pattern(vec![Cycles(8), Cycles(2), Cycles(2), Cycles(2)])
            .unwrap();
        let audio = PeriodicTask::new("a", 20.0, Cycles(8)).unwrap();
        let set = TaskSet::new(vec![video, audio]).unwrap();
        let classic = edf_wcet(&set, 1.0, 80.0).unwrap();
        let refined = edf_workload(&set, 1.0, 80.0).unwrap();
        assert!(!classic.schedulable, "classic load {}", classic.max_load);
        assert!(refined.schedulable, "refined load {}", refined.max_load);
        assert!(refined.max_load <= classic.max_load);
    }

    #[test]
    fn critical_t_is_a_deadline() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 3.0, Cycles(2)).unwrap(),
            PeriodicTask::new("b", 5.0, Cycles(2)).unwrap(),
        ])
        .unwrap();
        let a = edf_wcet(&set, 1.0, 15.0).unwrap();
        // critical_t must be of the form l·T + D.
        let t = a.critical_t;
        let is_deadline = (0..10).any(|l| {
            ((t - (l as f64 * 3.0 + 3.0)).abs() < 1e-9)
                || ((t - (l as f64 * 5.0 + 5.0)).abs() < 1e-9)
        });
        assert!(is_deadline, "critical_t = {t}");
    }

    #[test]
    fn job_count_boundaries() {
        assert_eq!(job_count(10.0, 10.0, 9.9), 0);
        assert_eq!(job_count(10.0, 10.0, 10.0), 1);
        assert_eq!(job_count(10.0, 10.0, 20.0), 2);
        assert_eq!(job_count(10.0, 4.0, 4.0), 1);
        assert_eq!(job_count(10.0, 4.0, 14.0), 2);
    }

    #[test]
    fn validates_parameters() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 1.0, Cycles(1)).unwrap()]).unwrap();
        assert!(edf_wcet(&set, 0.0, 10.0).is_err());
        assert!(edf_wcet(&set, 1.0, 0.0).is_err());
    }
}
