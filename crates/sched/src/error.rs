use std::error::Error;
use std::fmt;

/// Error returned by schedulability analyses and the scheduler simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// A numeric parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The task set is empty.
    EmptyTaskSet,
    /// A per-job demand exceeds what the task's workload curve allows.
    DemandExceedsCurve {
        /// Task name.
        task: String,
    },
    /// An error bubbled up from the workload-curve layer.
    Workload(wcm_core::WorkloadError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidParameter { name } => {
                write!(f, "invalid value for parameter `{name}`")
            }
            SchedError::EmptyTaskSet => write!(f, "task set is empty"),
            SchedError::DemandExceedsCurve { task } => {
                write!(f, "job demand of task `{task}` exceeds its workload curve")
            }
            SchedError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<wcm_core::WorkloadError> for SchedError {
    fn from(e: wcm_core::WorkloadError) -> Self {
        SchedError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedError::DemandExceedsCurve {
            task: "vld".into(),
        };
        assert!(e.to_string().contains("vld"));
        assert!(e.source().is_none());
        let w = SchedError::from(wcm_core::WorkloadError::Empty);
        assert!(w.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SchedError>();
    }
}
