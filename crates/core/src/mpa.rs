//! Modular performance analysis (MPA) components.
//!
//! Reference \[4\] of the paper — S. Chakraborty, S. Künzli, L. Thiele,
//! *A general framework for analysing system properties in platform-based
//! embedded system designs* (DATE 2003) — is the framework the case study
//! plugs its workload curves into. This module implements its central
//! abstraction, the **greedy processing component** (GPC): a task on a PE
//! consumes an event stream characterized by upper/lower arrival curves
//! and a resource characterized by upper/lower service curves, and emits
//!
//! * the *processed* event stream's arrival curves,
//! * the *remaining* service curves (what lower-priority tasks get), and
//! * backlog and delay bounds.
//!
//! Workload curves are the glue (Fig. 4): event-based inputs are converted
//! to cycle demand with `γᵘ`/`γˡ` and back.
//!
//! Components compose: feeding the remaining service into the next GPC
//! models fixed-priority sharing of one PE
//! ([`fixed_priority_chain`]); feeding the output stream into another
//! component models a pipeline.

use crate::curve::WorkloadBounds;
use crate::WorkloadError;
use wcm_curves::{bounds, minplus, CurveIter, Pwl, Segment, StepCurve};

/// An event stream abstracted by upper and lower arrival curves
/// (events per time window).
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    /// Upper arrival curve `ᾱᵘ(Δ)`.
    pub upper: Pwl,
    /// Lower arrival curve `ᾱˡ(Δ)`.
    pub lower: Pwl,
}

impl EventStream {
    /// Builds a stream from a measured upper staircase, with the zero
    /// curve as (trivial) lower bound.
    #[must_use]
    pub fn from_upper_staircase(alpha: &StepCurve) -> Self {
        Self {
            upper: alpha.to_pwl_upper(),
            lower: Pwl::zero(),
        }
    }

    /// Builds a stream from measured upper *and* lower staircases (e.g.
    /// [`crate::build::arrival_upper`] and [`crate::build::arrival_lower`]).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if the lower staircase
    /// exceeds the upper anywhere on the common horizon.
    pub fn from_staircases(
        upper: &StepCurve,
        lower: &StepCurve,
    ) -> Result<Self, WorkloadError> {
        let horizon = upper.horizon().min(lower.horizon());
        let mut d = 0.0;
        while d <= horizon {
            if lower.value(d) > upper.value(d) {
                return Err(WorkloadError::InvalidParameter { name: "lower" });
            }
            d += horizon / 64.0 + f64::EPSILON;
        }
        Ok(Self {
            upper: upper.to_pwl_upper(),
            lower: lower.to_pwl_lower(),
        })
    }
}

/// A resource abstracted by upper and lower service curves (cycles per
/// time window).
#[derive(Debug, Clone, PartialEq)]
pub struct Service {
    /// Upper service curve `βᵘ(Δ)` (the resource never provides more).
    pub upper: Pwl,
    /// Lower service curve `βˡ(Δ)` (guaranteed minimum).
    pub lower: Pwl,
}

impl Service {
    /// A fully dedicated processor at `frequency` cycles per second:
    /// `βᵘ = βˡ = F·Δ`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a non-positive
    /// frequency.
    pub fn dedicated(frequency: f64) -> Result<Self, WorkloadError> {
        if !(frequency.is_finite() && frequency > 0.0) {
            return Err(WorkloadError::InvalidParameter { name: "frequency" });
        }
        let f = Pwl::affine(0.0, frequency)?;
        Ok(Self {
            upper: f.clone(),
            lower: f,
        })
    }
}

/// Analysis results of one greedy processing component.
#[derive(Debug, Clone, PartialEq)]
pub struct GpcOutput {
    /// Arrival curves of the processed (output) stream, in events.
    pub output: EventStream,
    /// Service left over for lower-priority components.
    pub remaining: Service,
    /// Backlog bound in events (eq. 7).
    pub backlog_events: u64,
    /// Delay bound in seconds (horizontal deviation in the cycle domain).
    pub delay: f64,
}

/// Analyzes one greedy processing component.
///
/// `max_events` bounds staircase resolutions of the event/cycle
/// conversions (choose ≥ the largest window of interest).
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] /
/// [`WorkloadError::Curve`] when the demand outgrows the service (no
/// finite backlog/delay exists) and [`WorkloadError::InvalidParameter`]
/// for a zero `max_events`.
///
/// # Example
///
/// A periodic stream through a dedicated PE:
///
/// ```
/// use wcm_core::mpa::{greedy_processing, EventStream, Service};
/// use wcm_core::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
/// use wcm_curves::StepCurve;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alpha = StepCurve::new(vec![(0.0, 1), (1.0, 2), (2.0, 3)], 3.0, 1.0)?;
/// let stream = EventStream::from_upper_staircase(&alpha);
/// let task = WorkloadBounds {
///     upper: UpperWorkloadCurve::new(vec![10, 14, 18])?,
///     lower: LowerWorkloadCurve::new(vec![4, 8, 12])?,
/// };
/// let pe = Service::dedicated(20.0)?;
/// let out = greedy_processing(&stream, &pe, &task, 64)?;
/// assert!(out.backlog_events <= 1);
/// assert!(out.delay <= 0.5 + 1e-9); // one 10-cycle event at 20 Hz
/// # Ok(())
/// # }
/// ```
pub fn greedy_processing(
    input: &EventStream,
    service: &Service,
    task: &WorkloadBounds,
    max_events: usize,
) -> Result<GpcOutput, WorkloadError> {
    if max_events == 0 {
        return Err(WorkloadError::InvalidParameter { name: "max_events" });
    }
    // Event → cycle conversion of the input stream (Fig. 4).
    let demand_upper = compose_gamma_upper(&input.upper, task, max_events);
    let demand_lower = compose_gamma_lower(&input.lower, task, max_events);

    // Bounds in the cycle domain against the guaranteed service.
    let delay = bounds::delay(&demand_upper, &service.lower)?;
    let backlog_events =
        crate::convert::backlog_events_pwl(&input.upper, &service.lower, &task.upper)?;

    // Processed output in the cycle domain (GPC equations of [4]):
    //   α′ᵘ = [(αᵘ ⊗ βᵘ) ⊘ βˡ] ∧ βᵘ,
    //   α′ˡ = [(αˡ ⊘ βᵘ) ⊗ βˡ] ∧ βˡ.
    // Each equation runs as one lazy segment stream, materializing only
    // where the next operator needs a breakpoint view of its operand; the
    // results are bit-identical to the eager operators.
    let conv = minplus::convolve_lazy(&demand_upper, &service.upper).collect_pwl();
    let out_upper_cycles = minplus::deconvolve_lazy(&conv, &service.lower)?
        .lazy_min(service.upper.lazy())
        .collect_pwl();
    let deconv = deconvolve_or_zero(&demand_lower, &service.upper);
    let out_lower_cycles = minplus::convolve_lazy(&deconv, &service.lower)
        .lazy_min(service.lower.lazy())
        .collect_pwl();

    // Cycle → event back-conversion: at most C processed cycles can be
    // γˡ⁻¹-many events; at least C cycles are γᵘ⁻¹-many.
    let output = EventStream {
        upper: cycles_to_events_upper(&out_upper_cycles, task, max_events),
        lower: cycles_to_events_lower(&out_lower_cycles, task, max_events),
    };

    // Remaining service: β′ˡ = sup-closure of (βˡ − αᵘ)⁺ (strict service),
    // β′ᵘ = (βᵘ − αˡ)⁺ monotonized.
    let remaining = Service {
        lower: service.lower.sub_clamped_monotone(&demand_upper),
        upper: service.upper.sub_clamped_monotone(&demand_lower),
    };
    Ok(GpcOutput {
        output,
        remaining,
        backlog_events,
        delay,
    })
}

/// Analyzes several tasks sharing one resource under fixed priorities
/// (index 0 = highest): each component consumes the previous one's
/// remaining service.
///
/// # Errors
///
/// Propagates the first failing component's error (e.g. the remaining
/// service no longer sustains a lower-priority stream).
pub fn fixed_priority_chain(
    inputs: &[(EventStream, WorkloadBounds)],
    service: &Service,
    max_events: usize,
) -> Result<Vec<GpcOutput>, WorkloadError> {
    let mut current = service.clone();
    let mut out = Vec::with_capacity(inputs.len());
    for (stream, task) in inputs {
        let gpc = greedy_processing(stream, &current, task, max_events)?;
        current = gpc.remaining.clone();
        out.push(gpc);
    }
    Ok(out)
}

/// `γᵘ ∘ ᾱ` as a PWL curve: evaluate the workload curve at the staircase
/// levels of `ᾱ` (sampled on its breakpoints; sound because `γᵘ` and `ᾱ`
/// are non-decreasing and we round the event count up).
fn compose_gamma_upper(alpha: &Pwl, task: &WorkloadBounds, max_events: usize) -> Pwl {
    compose(alpha, max_events, Round::Up, |events| {
        task.upper.value(events.ceil() as usize).get() as f64
    })
}

fn compose_gamma_lower(alpha: &Pwl, task: &WorkloadBounds, max_events: usize) -> Pwl {
    compose(alpha, max_events, Round::Down, |events| {
        task.lower.value(events.floor() as usize).get() as f64
    })
}

fn cycles_to_events_upper(cycles: &Pwl, task: &WorkloadBounds, max_events: usize) -> Pwl {
    compose(cycles, max_events, Round::Up, |c| {
        task.lower.count_within(c) as f64
    })
}

fn cycles_to_events_lower(cycles: &Pwl, task: &WorkloadBounds, max_events: usize) -> Pwl {
    compose(cycles, max_events, Round::Down, |c| {
        task.upper.pseudo_inverse(c) as f64
    })
}

/// Which side the sampled composition must err on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Round {
    /// Result must dominate the true composition (upper curves).
    Up,
    /// Result must stay below the true composition (lower curves).
    Down,
}

/// Monotone composition `f ∘ curve` sampled on the curve's breakpoints
/// plus a refinement grid, returned as a monotone staircase PWL that errs
/// on the requested side: each interval takes the value at its *right*
/// edge when rounding up (the largest the true composition reaches there)
/// and at its *left* edge when rounding down.
fn compose(curve: &Pwl, grid: usize, round: Round, f: impl Fn(f64) -> f64) -> Pwl {
    let mut xs: Vec<f64> = curve.breakpoint_xs().collect();
    let span = curve.tail_start().max(1e-9) * 2.0;
    let n = grid.clamp(8, 512);
    for i in 0..=n {
        xs.push(span * i as f64 / n as f64);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12 * (1.0 + b.abs()));
    let mut points: Vec<(f64, f64, f64)> = Vec::with_capacity(xs.len());
    let mut last_y = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let sample_at = match (round, xs.get(i + 1)) {
            (Round::Up, Some(&next)) => next,
            _ => x,
        };
        let y = f(curve.value(sample_at)).max(last_y);
        last_y = y;
        let slope = if i + 1 == xs.len() {
            // Tail: chord toward a far sample approximates the composed
            // long-run rate; when rounding up, take the steeper of two
            // chords so tail curvature cannot make the bound dip below.
            let far = x + span;
            let s1 = (f(curve.value(far)).max(y) - y) / (far - x);
            match round {
                Round::Up => {
                    let farther = x + 2.0 * span;
                    let s2 = (f(curve.value(farther)).max(y) - y) / (farther - x);
                    s1.max(s2)
                }
                Round::Down => s1.min(
                    (f(curve.value(x + 2.0 * span)).max(y) - y) / (2.0 * span),
                ),
            }
        } else {
            0.0
        };
        points.push((x, y, slope));
    }
    Pwl::from_breakpoints(points).expect("monotone by construction")
}

/// `f ⊘ g` for lower curves, falling back to zero when the deconvolution
/// diverges (a trivial but sound lower bound).
fn deconvolve_or_zero(f: &Pwl, g: &Pwl) -> Pwl {
    minplus::deconvolve_lazy(f, g)
        .map(CurveIter::collect_pwl)
        .unwrap_or_else(|_| Pwl::zero())
}

/// End-to-end service of `N` servers in tandem: `β₁ ⊗ β₂ ⊗ … ⊗ β_N` (the
/// classic "pay bursts only once" composition). The left fold runs through
/// the lazy streaming convolution and ping-pongs two segment buffers, so
/// an `N`-stage pipeline keeps one accumulator curve and one scratch
/// buffer live instead of materializing eager intermediates at every
/// stage. Bit-identical to folding [`minplus::convolve`].
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] if `betas` is empty.
pub fn tandem_service(betas: &[Pwl]) -> Result<Pwl, WorkloadError> {
    let Some((first, rest)) = betas.split_first() else {
        return Err(WorkloadError::InvalidParameter { name: "betas" });
    };
    let mut acc = first.clone();
    let mut buf: Vec<Segment> = Vec::new();
    for beta in rest {
        let next = minplus::convolve_lazy(&acc, beta).collect_pwl_reusing(std::mem::take(&mut buf));
        buf = std::mem::replace(&mut acc, next).into_segments();
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LowerWorkloadCurve, UpperWorkloadCurve};

    fn task() -> WorkloadBounds {
        WorkloadBounds {
            upper: UpperWorkloadCurve::new(vec![10, 14, 18, 22, 26, 30]).unwrap(),
            lower: LowerWorkloadCurve::new(vec![4, 8, 12, 16, 20, 24]).unwrap(),
        }
    }

    fn periodic_stream() -> EventStream {
        let alpha = StepCurve::new(
            vec![(0.0, 1), (1.0, 2), (2.0, 3), (3.0, 4)],
            4.0,
            1.0,
        )
        .unwrap();
        EventStream::from_upper_staircase(&alpha)
    }

    #[test]
    fn dedicated_pe_fast_enough_has_small_bounds() {
        let out = greedy_processing(
            &periodic_stream(),
            &Service::dedicated(50.0).unwrap(),
            &task(),
            64,
        )
        .unwrap();
        assert!(out.backlog_events <= 1);
        assert!(out.delay <= 0.21, "delay {}", out.delay);
    }

    #[test]
    fn slower_pe_grows_bounds() {
        let fast = greedy_processing(
            &periodic_stream(),
            &Service::dedicated(50.0).unwrap(),
            &task(),
            64,
        )
        .unwrap();
        let slow = greedy_processing(
            &periodic_stream(),
            &Service::dedicated(8.0).unwrap(),
            &task(),
            64,
        )
        .unwrap();
        assert!(slow.delay >= fast.delay);
        assert!(slow.backlog_events >= fast.backlog_events);
    }

    #[test]
    fn overload_is_detected() {
        // Sustained demand 1 event/s × 6 c/event < 4 c/s? 6 > 4 ⇒ overload.
        let r = greedy_processing(
            &periodic_stream(),
            &Service::dedicated(4.0).unwrap(),
            &task(),
            64,
        );
        assert!(r.is_err());
    }

    #[test]
    fn output_stream_is_consistent() {
        let out = greedy_processing(
            &periodic_stream(),
            &Service::dedicated(30.0).unwrap(),
            &task(),
            64,
        )
        .unwrap();
        for i in 0..40 {
            let d = i as f64 * 0.2;
            assert!(
                out.output.lower.value(d) <= out.output.upper.value(d) + 1e-9,
                "output curves crossed at Δ={d}"
            );
        }
        // Conservation: long-run output rate equals the input rate.
        assert!((out.output.upper.ultimate_rate() - 1.0).abs() < 0.35);
    }

    #[test]
    fn remaining_service_feeds_second_task() {
        let hp = (periodic_stream(), task());
        let lp_alpha = StepCurve::new(vec![(0.0, 1), (4.0, 2)], 4.0, 0.25).unwrap();
        let lp = (
            EventStream::from_upper_staircase(&lp_alpha),
            WorkloadBounds {
                upper: UpperWorkloadCurve::new(vec![8, 16]).unwrap(),
                lower: LowerWorkloadCurve::new(vec![2, 4]).unwrap(),
            },
        );
        let chain = fixed_priority_chain(
            &[hp.clone(), lp.clone()],
            &Service::dedicated(30.0).unwrap(),
            64,
        )
        .unwrap();
        assert_eq!(chain.len(), 2);
        // The low-priority task sees less service, so its delay is at
        // least the high-priority task's own-service delay.
        let lp_alone = greedy_processing(
            &lp.0,
            &Service::dedicated(30.0).unwrap(),
            &lp.1,
            64,
        )
        .unwrap();
        assert!(chain[1].delay >= lp_alone.delay - 1e-9);
        // Remaining service after both is below the original.
        for i in 0..30 {
            let d = i as f64 * 0.3;
            assert!(
                chain[1].remaining.lower.value(d) <= 30.0 * d + 1e-6,
                "remaining above raw service at Δ={d}"
            );
        }
    }

    #[test]
    fn chain_rejects_overcommitted_priority_stack() {
        // Two heavy streams on a small PE: the second must fail.
        let s = periodic_stream();
        let r = fixed_priority_chain(
            &[(s.clone(), task()), (s, task())],
            &Service::dedicated(7.0).unwrap(),
            64,
        );
        assert!(r.is_err());
    }

    #[test]
    fn stream_from_both_staircases() {
        let up = StepCurve::new(vec![(0.0, 2), (1.0, 4)], 2.0, 2.0).unwrap();
        let lo = StepCurve::new(vec![(0.0, 0), (1.5, 1)], 2.0, 0.0).unwrap();
        let s = EventStream::from_staircases(&up, &lo).unwrap();
        assert!(s.lower.value(1.7) <= s.upper.value(1.7));
        // A crossing pair is rejected.
        let bad_lo = StepCurve::new(vec![(0.0, 5)], 2.0, 0.0).unwrap();
        assert!(EventStream::from_staircases(&up, &bad_lo).is_err());
    }

    #[test]
    fn gpc_with_nontrivial_lower_stream() {
        let up = StepCurve::new(
            vec![(0.0, 1), (1.0, 2), (2.0, 3), (3.0, 4)],
            4.0,
            1.0,
        )
        .unwrap();
        // The lower stream guarantees 3 events by Δ = 3, i.e. γˡ(3) = 12
        // cycles of demand — enough that at least γᵘ⁻¹(12) = 1 event is
        // guaranteed to complete.
        let lo = StepCurve::new(vec![(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)], 4.0, 0.5)
            .unwrap();
        let stream = EventStream::from_staircases(&up, &lo).unwrap();
        let out = greedy_processing(&stream, &Service::dedicated(40.0).unwrap(), &task(), 64)
            .unwrap();
        // A non-zero lower input gives a non-zero lower output eventually.
        assert!(out.output.lower.value(20.0) > 0.0);
        for i in 0..40 {
            let d = i as f64 * 0.5;
            assert!(out.output.lower.value(d) <= out.output.upper.value(d) + 1e-6);
        }
    }

    #[test]
    fn tandem_service_matches_eager_fold() {
        let betas: Vec<Pwl> = (1..=8)
            .map(|i| {
                Pwl::from_breakpoints(vec![
                    (0.0, 0.0, 0.0),
                    (0.25 * i as f64, 0.0, 10.0 + i as f64),
                ])
                .unwrap()
            })
            .collect();
        let lazy = tandem_service(&betas).unwrap();
        let mut eager = betas[0].clone();
        for b in &betas[1..] {
            eager = minplus::convolve(&eager, b);
        }
        assert_eq!(lazy, eager);
        // Rate-latency servers compose to sum-of-latencies, min-of-rates.
        assert!((lazy.ultimate_rate() - 11.0).abs() < 1e-9);
        assert!(tandem_service(&[]).is_err());
    }

    #[test]
    fn rejects_zero_resolution() {
        let r = greedy_processing(
            &periodic_stream(),
            &Service::dedicated(30.0).unwrap(),
            &task(),
            0,
        );
        assert!(r.is_err());
    }
}
