//! Event ↔ cycle conversions between arrival/service curves and workload
//! curves (Fig. 4 of the paper).
//!
//! The Network-Calculus backlog bound (eq. 6) subtracts a service curve from
//! an arrival curve, so both must share a unit. The paper's key observation:
//! scaling an event-based arrival curve by the WCET (`α = w·ᾱ`) is sound but
//! loses all correlation information; composing with workload curves instead
//! gives
//!
//! * cycle demand of a flow: `α(Δ) = γᵘ(ᾱ(Δ))`,
//! * event capacity of a service: `β̄(Δ) = γᵘ⁻¹(β(Δ))`,
//!
//! and the event-based backlog bound of eq. 7:
//! `B̄ ≤ sup_{Δ≥0} ( ᾱ(Δ) − γᵘ⁻¹(β(Δ)) )`.

use crate::curve::UpperWorkloadCurve;
use crate::WorkloadError;
use wcm_curves::{Pwl, StepCurve};
use wcm_events::Cycles;

/// Converts an event-based arrival staircase `ᾱ` into a cycle-based demand
/// staircase `γᵘ ∘ ᾱ`: each step `(Δ, n)` becomes `(Δ, γᵘ(n))`.
///
/// The tail rate becomes `tail_events/s × γᵘ-tail cycles/event`.
///
/// # Errors
///
/// Propagates staircase reconstruction errors (cannot occur for valid
/// inputs since `γᵘ` is monotone).
///
/// # Example
///
/// ```
/// use wcm_core::{convert, UpperWorkloadCurve};
/// use wcm_curves::StepCurve;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alpha = StepCurve::new(vec![(0.0, 1), (1.0, 2), (2.0, 3)], 3.0, 1.0)?;
/// let gamma = UpperWorkloadCurve::new(vec![10, 12, 22])?;
/// let demand = convert::demand_arrival(&alpha, &gamma)?;
/// assert_eq!(demand.value(0.0), 10);
/// assert_eq!(demand.value(1.5), 12);
/// assert_eq!(demand.value(2.0), 22);
/// # Ok(())
/// # }
/// ```
pub fn demand_arrival(
    alpha_events: &StepCurve,
    gamma_u: &UpperWorkloadCurve,
) -> Result<StepCurve, WorkloadError> {
    let steps: Vec<(f64, u64)> = alpha_events
        .steps()
        .iter()
        .map(|&(d, n)| (d, gamma_u.value(n as usize).get()))
        .collect();
    let tail = alpha_events.tail_rate() * gamma_u.tail_cycles_per_event();
    Ok(StepCurve::new(steps, alpha_events.horizon(), tail)?)
}

/// The WCET-scaled demand `w·ᾱ` (the pessimistic conversion of eq. 10's
/// analysis, used as the paper's baseline).
///
/// # Errors
///
/// Propagates staircase reconstruction errors (cannot occur for valid
/// inputs).
pub fn demand_arrival_wcet(
    alpha_events: &StepCurve,
    wcet: Cycles,
) -> Result<StepCurve, WorkloadError> {
    let steps: Vec<(f64, u64)> = alpha_events
        .steps()
        .iter()
        .map(|&(d, n)| (d, n * wcet.get()))
        .collect();
    let tail = alpha_events.tail_rate() * wcet.get() as f64;
    Ok(StepCurve::new(steps, alpha_events.horizon(), tail)?)
}

/// Converts a cycle-based service curve `β` into the event-based service
/// `β̄(Δ) = γᵘ⁻¹(β(Δ))` guaranteed to the task (eq. 7): sampled at the
/// staircase levels `γᵘ(k)`, the result jumps to `k` at
/// `Δ_k = β⁻¹(γᵘ(k))`.
///
/// `max_events` limits the staircase length (the horizon is `Δ_{max_events}`).
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] if `β` saturates below `γᵘ(k)` for
/// some requested `k` (bounded service), or
/// [`WorkloadError::InvalidParameter`] if `max_events` is 0.
pub fn event_service(
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
    max_events: usize,
) -> Result<StepCurve, WorkloadError> {
    if max_events == 0 {
        return Err(WorkloadError::InvalidParameter { name: "max_events" });
    }
    let mut steps: Vec<(f64, u64)> = vec![(0.0, 0)];
    let mut horizon = 0.0f64;
    for k in 1..=max_events {
        let level = gamma_u.value(k).get() as f64;
        let delta = beta_cycles.inverse_at(level).ok_or(WorkloadError::Infeasible {
            reason: "service curve saturates below the workload demand",
        })?;
        horizon = delta;
        match steps.last_mut() {
            Some(last) if delta <= last.0 + f64::EPSILON * (1.0 + last.0.abs()) => {
                last.1 = k as u64;
            }
            _ => steps.push((delta, k as u64)),
        }
    }
    let rate = beta_cycles.ultimate_rate();
    let per_event = gamma_u.tail_cycles_per_event();
    let tail = if per_event > 0.0 { rate / per_event } else { 0.0 };
    Ok(StepCurve::new(steps, horizon, tail)?)
}

/// Event-based backlog bound of eq. 7:
/// `B̄ ≤ sup_{Δ ≥ 0} ( ᾱ(Δ) − γᵘ⁻¹(β(Δ)) )`, in events.
///
/// The supremum is evaluated at the arrival staircase steps (where `ᾱ`
/// jumps up) — exact because between steps `ᾱ` is constant while the
/// subtrahend is non-decreasing — plus the tail check.
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] if the long-run demand rate
/// exceeds the long-run service rate (backlog diverges).
pub fn backlog_events(
    alpha_events: &StepCurve,
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
) -> Result<u64, WorkloadError> {
    let service_rate_events = beta_cycles.ultimate_rate() / gamma_u.tail_cycles_per_event();
    if alpha_events.tail_rate() > service_rate_events * (1.0 + 1e-9) {
        return Err(WorkloadError::Infeasible {
            reason: "arrival rate exceeds service rate; backlog diverges",
        });
    }
    let mut best: i64 = 0;
    for &(delta, n) in alpha_events.steps() {
        let served = gamma_u.pseudo_inverse(beta_cycles.value(delta));
        let b = n as i64 - served.min(i64::MAX as u64) as i64;
        best = best.max(b);
    }
    Ok(best.max(0) as u64)
}

/// [`backlog_events`] for an arrival curve already in [`Pwl`] form:
/// `B̄ ≤ sup_Δ ( ⌈ᾱ(Δ)⌉ − γᵘ⁻¹(β(Δ)) )`, evaluated at the curve's
/// breakpoints plus a refinement grid over its non-affine span.
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] if the long-run demand rate
/// exceeds the service rate.
pub fn backlog_events_pwl(
    alpha_events: &Pwl,
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
) -> Result<u64, WorkloadError> {
    let per_event = gamma_u.tail_cycles_per_event();
    let service_rate_events = if per_event > 0.0 {
        beta_cycles.ultimate_rate() / per_event
    } else {
        f64::INFINITY
    };
    if alpha_events.ultimate_rate() > service_rate_events * (1.0 + 1e-9) {
        return Err(WorkloadError::Infeasible {
            reason: "arrival rate exceeds service rate; backlog diverges",
        });
    }
    let mut ds: Vec<f64> = alpha_events.breakpoint_xs().collect();
    ds.extend(beta_cycles.breakpoint_xs());
    let span = alpha_events.tail_start().max(beta_cycles.tail_start()).max(1e-9);
    for i in 0..=256 {
        ds.push(2.0 * span * i as f64 / 256.0);
    }
    let mut best: i64 = 0;
    for &d in &ds {
        let arrived = alpha_events.value(d).ceil() as i64;
        let served = gamma_u.pseudo_inverse(beta_cycles.value(d)).min(i64::MAX as u64) as i64;
        best = best.max(arrived - served);
    }
    Ok(best.max(0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_curves::service::FullCapacity;

    fn gamma() -> UpperWorkloadCurve {
        UpperWorkloadCurve::new(vec![10, 12, 22, 24, 34, 36]).unwrap()
    }

    #[test]
    fn demand_arrival_composes_curves() {
        let alpha = StepCurve::new(vec![(0.0, 2), (5.0, 4)], 6.0, 0.5).unwrap();
        let d = demand_arrival(&alpha, &gamma()).unwrap();
        assert_eq!(d.value(0.0), 12); // γᵘ(2)
        assert_eq!(d.value(5.0), 24); // γᵘ(4)
        assert!((d.tail_rate() - 0.5 * 6.0).abs() < 1e-12);
    }

    #[test]
    fn demand_arrival_wcet_is_linear_scaling() {
        let alpha = StepCurve::new(vec![(0.0, 2), (5.0, 4)], 6.0, 0.5).unwrap();
        let d = demand_arrival_wcet(&alpha, Cycles(10)).unwrap();
        assert_eq!(d.value(0.0), 20);
        assert_eq!(d.value(5.0), 40);
        // The WCET conversion always dominates the workload-curve one.
        let dg = demand_arrival(&alpha, &gamma()).unwrap();
        for i in 0..70 {
            let delta = i as f64 * 0.1;
            assert!(d.value(delta) >= dg.value(delta), "Δ={delta}");
        }
    }

    #[test]
    fn event_service_levels() {
        // β = 2 cycles per second.
        let beta = FullCapacity::new(2.0).unwrap().to_pwl();
        let es = event_service(&beta, &gamma(), 4).unwrap();
        // γᵘ(1)=10 → Δ=5; γᵘ(2)=12 → Δ=6; γᵘ(3)=22 → 11; γᵘ(4)=24 → 12.
        assert_eq!(es.value(4.9), 0);
        assert_eq!(es.value(5.0), 1);
        assert_eq!(es.value(6.0), 2);
        assert_eq!(es.value(11.0), 3);
        assert_eq!(es.value(12.0), 4);
    }

    #[test]
    fn event_service_infeasible_for_saturating_service() {
        let beta = Pwl::constant(15.0).unwrap(); // never exceeds 15 cycles
        assert!(matches!(
            event_service(&beta, &gamma(), 3),
            Err(WorkloadError::Infeasible { .. })
        ));
        assert!(event_service(&beta, &gamma(), 0).is_err());
    }

    #[test]
    fn backlog_events_simple() {
        // Burst of 5 events instantaneously, then 0.5 events/s; service
        // 6 cycles/s ⇒ ~1 event/s long-run (γᵘ tail 6 cycles/event).
        let alpha = StepCurve::new(vec![(0.0, 5), (10.0, 10)], 20.0, 0.5).unwrap();
        let beta = FullCapacity::new(6.0).unwrap().to_pwl();
        let b = backlog_events(&alpha, &beta, &gamma()).unwrap();
        // At Δ=0: 5 − γᵘ⁻¹(0) = 5. At Δ=10: 10 − γᵘ⁻¹(60) = 10 − 10 = 0.
        assert_eq!(b, 5);
    }

    #[test]
    fn backlog_events_detects_overload() {
        let alpha = StepCurve::new(vec![(0.0, 1)], 1.0, 100.0).unwrap();
        let beta = FullCapacity::new(6.0).unwrap().to_pwl();
        assert!(backlog_events(&alpha, &beta, &gamma()).is_err());
    }

    #[test]
    fn backlog_shrinks_with_faster_service() {
        let alpha = StepCurve::new(vec![(0.0, 8), (4.0, 12)], 8.0, 1.0).unwrap();
        let slow = FullCapacity::new(10.0).unwrap().to_pwl();
        let fast = FullCapacity::new(100.0).unwrap().to_pwl();
        let bs = backlog_events(&alpha, &slow, &gamma()).unwrap();
        let bf = backlog_events(&alpha, &fast, &gamma()).unwrap();
        assert!(bf <= bs);
    }
}
