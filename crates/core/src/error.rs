use std::error::Error;
use std::fmt;

/// Error returned by workload-curve constructors and analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Curve values were not non-decreasing.
    NotMonotone {
        /// 1-based `k` of the first violation.
        k: usize,
    },
    /// The curve has no values.
    Empty,
    /// A parameter was invalid (zero where positive required, NaN, …).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The analysed configuration admits no finite answer, e.g. the
    /// instantaneous burst already exceeds the buffer in eq. 9.
    Infeasible {
        /// Human-readable description.
        reason: &'static str,
    },
    /// An intermediate value exceeded the representable range (e.g.
    /// `k·WCET` past `u64::MAX` in a WCET/BCET reference line).
    Overflow {
        /// What overflowed.
        what: &'static str,
    },
    /// An error bubbled up from the event substrate.
    Event(wcm_events::EventError),
    /// An error bubbled up from the curve substrate.
    Curve(wcm_curves::CurveError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NotMonotone { k } => {
                write!(f, "workload curve not monotone at k = {k}")
            }
            WorkloadError::Empty => write!(f, "workload curve has no values"),
            WorkloadError::InvalidParameter { name } => {
                write!(f, "invalid value for parameter `{name}`")
            }
            WorkloadError::Infeasible { reason } => write!(f, "infeasible: {reason}"),
            WorkloadError::Overflow { what } => {
                write!(f, "arithmetic overflow computing {what}")
            }
            WorkloadError::Event(e) => write!(f, "event error: {e}"),
            WorkloadError::Curve(e) => write!(f, "curve error: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Event(e) => Some(e),
            WorkloadError::Curve(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<wcm_events::EventError> for WorkloadError {
    fn from(e: wcm_events::EventError) -> Self {
        WorkloadError::Event(e)
    }
}

#[doc(hidden)]
impl From<wcm_curves::CurveError> for WorkloadError {
    fn from(e: wcm_curves::CurveError) -> Self {
        WorkloadError::Curve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = WorkloadError::NotMonotone { k: 3 };
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_none());
        let e = WorkloadError::from(wcm_events::EventError::InvalidParameter { name: "x" });
        assert!(e.source().is_some());
        let e = WorkloadError::Overflow { what: "k·WCET" };
        assert!(e.to_string().contains("overflow"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<WorkloadError>();
    }
}
