//! Building curves from measured traces.
//!
//! The paper obtains both the workload curves `γᵘ/γˡ` and the event-based
//! arrival curve `ᾱ(Δ)` of the MPEG-2 case study by trace analysis
//! (Sec. 3.2): the workload curves from the per-macroblock demand sequence,
//! the arrival curve from the macroblock timestamps, each over a window of
//! 24 frames and maximized over 14 clips. The helpers here implement those
//! measurements for any [`Trace`]/[`TimedTrace`].

use crate::curve::WorkloadBounds;
use crate::WorkloadError;
use wcm_curves::StepCurve;
use wcm_events::window::{max_spans_with, min_spans_with, Parallelism, WindowMode};
use wcm_events::{TimedTrace, Trace};

/// Builds workload bounds for several traces and merges them
/// (max of uppers, min of lowers).
///
/// # Errors
///
/// Returns [`WorkloadError::Empty`] for an empty trace list and propagates
/// window-analysis errors (e.g. `k_max` longer than a trace).
///
/// # Example
///
/// ```
/// use wcm_core::build::bounds_from_traces;
/// use wcm_events::{window::WindowMode, Cycles, ExecutionInterval, Trace, TypeRegistry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = TypeRegistry::new();
/// let x = reg.register("x", ExecutionInterval::fixed(Cycles(4)))?;
/// let y = reg.register("y", ExecutionInterval::fixed(Cycles(1)))?;
/// let t1 = Trace::new(reg.clone(), vec![x, y, y, x]);
/// let t2 = Trace::new(reg, vec![y, x, x, y]);
/// let b = bounds_from_traces(&[t1, t2], 3, WindowMode::Exact)?;
/// assert_eq!(b.upper.value(2), Cycles(8)); // x,x occurs in t2
/// # Ok(())
/// # }
/// ```
pub fn bounds_from_traces(
    traces: &[Trace],
    k_max: usize,
    mode: WindowMode,
) -> Result<WorkloadBounds, WorkloadError> {
    bounds_from_traces_with(traces, k_max, mode, Parallelism::Auto)
}

/// [`bounds_from_traces`] with an explicit [`Parallelism`] knob, applied to
/// the window analysis of each trace in turn.
///
/// # Errors
///
/// Same conditions as [`bounds_from_traces`].
pub fn bounds_from_traces_with(
    traces: &[Trace],
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<WorkloadBounds, WorkloadError> {
    let all: Vec<WorkloadBounds> = traces
        .iter()
        .map(|t| WorkloadBounds::from_trace_with(t, k_max, mode, par))
        .collect::<Result<_, _>>()?;
    WorkloadBounds::merge_all(&all)
}

/// Measures the empirical **upper arrival curve** `ᾱ(Δ)` of a timed trace:
/// the maximum number of events observed in any closed window of length `Δ`,
/// expressed as a staircase.
///
/// Internally computes the minimal span `d(k)` of every `k` consecutive
/// events; then `ᾱ(Δ) = max { k : d(k) ≤ Δ }`, so the staircase jumps to
/// `k` at `Δ = d(k)`. `horizon` is the span of `k_max` events.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] via the window layer if
/// `k_max` is 0 or exceeds the trace length.
pub fn arrival_upper(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
) -> Result<StepCurve, WorkloadError> {
    arrival_upper_with(trace, k_max, mode, Parallelism::Auto)
}

/// [`arrival_upper`] with an explicit [`Parallelism`] knob for the span
/// analysis.
///
/// # Errors
///
/// Same conditions as [`arrival_upper`].
pub fn arrival_upper_with(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<StepCurve, WorkloadError> {
    let times = trace.times();
    let spans = min_spans_with(&times, k_max, mode, par)?;
    // spans is non-decreasing; build steps at strictly increasing Δ.
    let mut steps: Vec<(f64, u64)> = Vec::with_capacity(spans.len());
    for (i, &d) in spans.iter().enumerate() {
        let k = (i + 1) as u64;
        match steps.last_mut() {
            Some(last) if d <= last.0 + f64::EPSILON * (1.0 + last.0.abs()) => {
                // Same span: the larger k wins (more events fit in Δ).
                last.1 = k;
            }
            _ => steps.push((d, k)),
        }
    }
    let horizon = *spans.last().expect("validated non-empty");
    let duration = trace.duration();
    let tail_rate = if duration > 0.0 {
        trace.len() as f64 / duration
    } else {
        0.0
    };
    Ok(StepCurve::new(steps, horizon, tail_rate)?)
}

/// Measures the empirical **lower arrival curve** of a timed trace: the
/// minimum number of events in any closed window of length `Δ`.
///
/// Uses maximal spans `D(k)`: at least `k` events are seen in any window of
/// length `≥ D(k+1)`... conservatively, the staircase rises to `k` at
/// `Δ = D(k)` (a window that long always covers `k` consecutive events of
/// the trace interior).
///
/// # Errors
///
/// Same conditions as [`arrival_upper`].
pub fn arrival_lower(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
) -> Result<StepCurve, WorkloadError> {
    arrival_lower_with(trace, k_max, mode, Parallelism::Auto)
}

/// [`arrival_lower`] with an explicit [`Parallelism`] knob for the span
/// analysis.
///
/// # Errors
///
/// Same conditions as [`arrival_upper`].
pub fn arrival_lower_with(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<StepCurve, WorkloadError> {
    let times = trace.times();
    let spans = max_spans_with(&times, k_max, mode, par)?;
    let mut steps: Vec<(f64, u64)> = vec![(0.0, 0)];
    for (i, &d) in spans.iter().enumerate() {
        let k = i as u64; // a window of length D(k+1) always contains ≥ k events
        if k == 0 {
            continue;
        }
        match steps.last_mut() {
            Some(last) if d <= last.0 + f64::EPSILON * (1.0 + last.0.abs()) => {
                last.1 = last.1.max(k);
            }
            _ => steps.push((d, k)),
        }
    }
    let horizon = *spans.last().expect("validated non-empty");
    Ok(StepCurve::new(steps, horizon, 0.0)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_events::{Cycles, ExecutionInterval, TimedEvent, TypeRegistry};

    fn timed(times: &[f64]) -> TimedTrace {
        let mut reg = TypeRegistry::new();
        let t = reg
            .register("t", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        TimedTrace::new(
            reg,
            times.iter().map(|&time| TimedEvent { time, ty: t }).collect(),
        )
        .unwrap()
    }

    #[test]
    fn arrival_upper_of_periodic_trace() {
        // Events at 0, 1, 2, …, 9: k events span k−1 time units.
        let tt = timed(&(0..10).map(f64::from).collect::<Vec<_>>());
        let alpha = arrival_upper(&tt, 10, WindowMode::Exact).unwrap();
        assert_eq!(alpha.value(0.0), 1);
        assert_eq!(alpha.value(0.5), 1);
        assert_eq!(alpha.value(1.0), 2);
        assert_eq!(alpha.value(4.2), 5);
        assert_eq!(alpha.value(9.0), 10);
    }

    #[test]
    fn arrival_upper_of_bursty_trace() {
        // Two instantaneous bursts of 3 events.
        let tt = timed(&[0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
        let alpha = arrival_upper(&tt, 6, WindowMode::Exact).unwrap();
        assert_eq!(alpha.value(0.0), 3);
        assert_eq!(alpha.value(9.0), 3);
        assert_eq!(alpha.value(10.0), 6);
    }

    #[test]
    fn arrival_upper_matches_brute_force_sliding_window() {
        let times = [0.0, 0.3, 0.9, 1.0, 2.5, 2.6, 2.7, 5.0];
        let tt = timed(&times);
        let alpha = arrival_upper(&tt, times.len(), WindowMode::Exact).unwrap();
        for i in 0..60 {
            let delta = i as f64 * 0.1;
            // Brute force: max events in any closed window [t, t+delta]
            // anchored at an event.
            let mut best = 0;
            for (s, &start) in times.iter().enumerate() {
                let count = times[s..]
                    .iter()
                    .take_while(|&&t| t <= start + delta + 1e-12)
                    .count();
                best = best.max(count);
            }
            assert_eq!(
                alpha.value(delta),
                best as u64,
                "mismatch at Δ={delta}"
            );
        }
    }

    #[test]
    fn arrival_lower_is_below_upper() {
        let times: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin().abs() + i as f64).collect();
        let tt = timed(&times);
        let up = arrival_upper(&tt, 20, WindowMode::Exact).unwrap();
        let lo = arrival_lower(&tt, 20, WindowMode::Exact).unwrap();
        for i in 0..200 {
            let d = i as f64 * 0.1;
            assert!(lo.value(d) <= up.value(d), "Δ={d}");
        }
    }

    #[test]
    fn arrival_lower_of_periodic_trace() {
        let tt = timed(&(0..10).map(f64::from).collect::<Vec<_>>());
        let lo = arrival_lower(&tt, 10, WindowMode::Exact).unwrap();
        // A window of length k always contains at least k−1 events… the
        // maximal span of k events is k−1, so the curve reaches k−1 at Δ=k.
        assert_eq!(lo.value(0.5), 0);
        assert_eq!(lo.value(1.0), 1);
        assert_eq!(lo.value(9.0), 9);
    }

    #[test]
    fn bounds_from_traces_merges() {
        let mut reg = TypeRegistry::new();
        let x = reg
            .register("x", ExecutionInterval::fixed(Cycles(4)))
            .unwrap();
        let y = reg
            .register("y", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        let t1 = Trace::new(reg.clone(), vec![x, y, y, x]);
        let t2 = Trace::new(reg, vec![y, x, x, y]);
        let b = bounds_from_traces(&[t1, t2], 3, WindowMode::Exact).unwrap();
        assert_eq!(b.upper.value(2), Cycles(8));
        assert_eq!(b.lower.value(2), Cycles(2));
        assert!(bounds_from_traces(&[], 3, WindowMode::Exact).is_err());
    }
}
