//! Building curves from measured traces.
//!
//! The paper obtains both the workload curves `γᵘ/γˡ` and the event-based
//! arrival curve `ᾱ(Δ)` of the MPEG-2 case study by trace analysis
//! (Sec. 3.2): the workload curves from the per-macroblock demand sequence,
//! the arrival curve from the macroblock timestamps, each over a window of
//! 24 frames and maximized over 14 clips. The helpers here implement those
//! measurements for any [`Trace`]/[`TimedTrace`].

use crate::curve::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use crate::WorkloadError;
use wcm_curves::StepCurve;
use wcm_events::summary::{Sides, SummarySpine};
use wcm_events::window::{max_spans_with, min_spans_with, Parallelism, WindowMode};
use wcm_events::{Cycles, TimedTrace, Trace};

/// Builds workload bounds for several traces and merges them
/// (max of uppers, min of lowers).
///
/// # Errors
///
/// Returns [`WorkloadError::Empty`] for an empty trace list and propagates
/// window-analysis errors (e.g. `k_max` longer than a trace).
///
/// # Example
///
/// ```
/// use wcm_core::build::bounds_from_traces;
/// use wcm_events::{window::WindowMode, Cycles, ExecutionInterval, Trace, TypeRegistry};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = TypeRegistry::new();
/// let x = reg.register("x", ExecutionInterval::fixed(Cycles(4)))?;
/// let y = reg.register("y", ExecutionInterval::fixed(Cycles(1)))?;
/// let t1 = Trace::new(reg.clone(), vec![x, y, y, x]);
/// let t2 = Trace::new(reg, vec![y, x, x, y]);
/// let b = bounds_from_traces(&[t1, t2], 3, WindowMode::Exact)?;
/// assert_eq!(b.upper.value(2), Cycles(8)); // x,x occurs in t2
/// # Ok(())
/// # }
/// ```
pub fn bounds_from_traces(
    traces: &[Trace],
    k_max: usize,
    mode: WindowMode,
) -> Result<WorkloadBounds, WorkloadError> {
    bounds_from_traces_with(traces, k_max, mode, Parallelism::Auto)
}

/// [`bounds_from_traces`] with an explicit [`Parallelism`] knob, applied to
/// the window analysis of each trace in turn.
///
/// # Errors
///
/// Same conditions as [`bounds_from_traces`].
pub fn bounds_from_traces_with(
    traces: &[Trace],
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<WorkloadBounds, WorkloadError> {
    let all: Vec<WorkloadBounds> = traces
        .iter()
        .map(|t| WorkloadBounds::from_trace_with(t, k_max, mode, par))
        .collect::<Result<_, _>>()?;
    WorkloadBounds::merge_all(&all)
}

/// Measures the empirical **upper arrival curve** `ᾱ(Δ)` of a timed trace:
/// the maximum number of events observed in any closed window of length `Δ`,
/// expressed as a staircase.
///
/// Internally computes the minimal span `d(k)` of every `k` consecutive
/// events; then `ᾱ(Δ) = max { k : d(k) ≤ Δ }`, so the staircase jumps to
/// `k` at `Δ = d(k)`. `horizon` is the span of `k_max` events.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] via the window layer if
/// `k_max` is 0 or exceeds the trace length.
pub fn arrival_upper(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
) -> Result<StepCurve, WorkloadError> {
    arrival_upper_with(trace, k_max, mode, Parallelism::Auto)
}

/// [`arrival_upper`] with an explicit [`Parallelism`] knob for the span
/// analysis.
///
/// # Errors
///
/// Same conditions as [`arrival_upper`].
pub fn arrival_upper_with(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<StepCurve, WorkloadError> {
    let times = trace.times();
    let spans = min_spans_with(&times, k_max, mode, par)?;
    // spans is non-decreasing; build steps at strictly increasing Δ.
    let mut steps: Vec<(f64, u64)> = Vec::with_capacity(spans.len());
    for (i, &d) in spans.iter().enumerate() {
        let k = (i + 1) as u64;
        match steps.last_mut() {
            Some(last) if d <= last.0 + f64::EPSILON * (1.0 + last.0.abs()) => {
                // Same span: the larger k wins (more events fit in Δ).
                last.1 = k;
            }
            _ => steps.push((d, k)),
        }
    }
    let horizon = *spans.last().expect("validated non-empty");
    let duration = trace.duration();
    let tail_rate = if duration > 0.0 {
        trace.len() as f64 / duration
    } else {
        0.0
    };
    Ok(StepCurve::new(steps, horizon, tail_rate)?)
}

/// Measures the empirical **lower arrival curve** of a timed trace: the
/// minimum number of events in any closed window of length `Δ`.
///
/// Uses maximal spans `D(k)`: at least `k` events are seen in any window of
/// length `≥ D(k+1)`... conservatively, the staircase rises to `k` at
/// `Δ = D(k)` (a window that long always covers `k` consecutive events of
/// the trace interior).
///
/// # Errors
///
/// Same conditions as [`arrival_upper`].
pub fn arrival_lower(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
) -> Result<StepCurve, WorkloadError> {
    arrival_lower_with(trace, k_max, mode, Parallelism::Auto)
}

/// [`arrival_lower`] with an explicit [`Parallelism`] knob for the span
/// analysis.
///
/// # Errors
///
/// Same conditions as [`arrival_upper`].
pub fn arrival_lower_with(
    trace: &TimedTrace,
    k_max: usize,
    mode: WindowMode,
    par: Parallelism,
) -> Result<StepCurve, WorkloadError> {
    let times = trace.times();
    let spans = max_spans_with(&times, k_max, mode, par)?;
    let mut steps: Vec<(f64, u64)> = vec![(0.0, 0)];
    for (i, &d) in spans.iter().enumerate() {
        let k = i as u64; // a window of length D(k+1) always contains ≥ k events
        if k == 0 {
            continue;
        }
        match steps.last_mut() {
            Some(last) if d <= last.0 + f64::EPSILON * (1.0 + last.0.abs()) => {
                last.1 = last.1.max(k);
            }
            _ => steps.push((d, k)),
        }
    }
    let horizon = *spans.last().expect("validated non-empty");
    Ok(StepCurve::new(steps, horizon, 0.0)?)
}

/// Incrementally maintained workload bounds over a growing demand stream.
///
/// A full [`WorkloadBounds::from_trace`] rebuild rescans all `N` retained
/// events for every window size — `O(N·K)` per refresh, which is what the
/// online monitor and long-running simulations paid each time their
/// reference trace grew. This builder instead feeds two
/// [`SummarySpine`]s (max side over worst-case demands, min side over
/// best-case demands): appending one event costs `O(k_max)` amortized, and
/// [`IncrementalBounds::bounds`] folds a logarithmic spine instead of
/// rescanning, yet produces curves **bit-identical** to a full rebuild of
/// the same stream.
///
/// # Example
///
/// ```
/// use wcm_core::build::IncrementalBounds;
/// use wcm_events::{window::WindowMode, Cycles};
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// let mut inc = IncrementalBounds::new(3, WindowMode::Exact)?;
/// for d in [4, 1, 1, 4, 1] {
///     inc.push_fixed(Cycles(d));
/// }
/// let bounds = inc.bounds()?;
/// assert_eq!(bounds.upper.value(2).get(), 5); // 4,1 or 1,4
/// assert_eq!(bounds.lower.value(2).get(), 2); // 1,1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalBounds {
    upper: SummarySpine,
    lower: SummarySpine,
    k_max: usize,
}

impl IncrementalBounds {
    /// A builder for windows `1..=k_max` under `mode`'s grid.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0 or a
    /// strided mode has `stride = 0`.
    pub fn new(k_max: usize, mode: WindowMode) -> Result<Self, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        if let WindowMode::Strided { stride: 0, .. } = mode {
            return Err(WorkloadError::InvalidParameter { name: "stride" });
        }
        let grid = mode.grid(k_max);
        Ok(Self {
            upper: SummarySpine::new(&grid, Sides::Max, 0),
            lower: SummarySpine::new(&grid, Sides::Min, 0),
            k_max,
        })
    }

    /// Appends one event with distinct worst/best-case demands
    /// (`O(k_max)` amortized).
    pub fn push(&mut self, worst: Cycles, best: Cycles) {
        self.upper.push(worst.get());
        self.lower.push(best.get());
    }

    /// Appends one event whose demand is fixed (worst = best).
    pub fn push_fixed(&mut self, demand: Cycles) {
        self.push(demand, demand);
    }

    /// Appends every event of `trace`, using its per-type worst/best
    /// demand intervals like [`WorkloadBounds::from_trace`] does.
    pub fn extend_trace(&mut self, trace: &Trace) {
        let worst: Vec<u64> = trace.worst_demands().iter().map(|c| c.get()).collect();
        let best: Vec<u64> = trace.best_demands().iter().map(|c| c.get()).collect();
        self.upper.extend_from_slice(&worst);
        self.lower.extend_from_slice(&best);
    }

    /// Number of events pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// `true` when nothing has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }

    /// Largest window size tracked.
    #[must_use]
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// The current bounds: fold the spines and densify. Bit-identical to
    /// `WorkloadBounds::from_trace` over the pushed stream.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Empty`] before the first push and
    /// [`WorkloadError::InvalidParameter`] while fewer than `k_max`
    /// events have been pushed (the curves would not be defined yet).
    pub fn bounds(&self) -> Result<WorkloadBounds, WorkloadError> {
        if self.is_empty() {
            return Err(WorkloadError::Empty);
        }
        if self.len() < self.k_max {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        let upper_dense = self
            .upper
            .curve()
            .dense_max()
            .expect("max side with len ≥ k_max");
        let lower_dense = self
            .lower
            .curve()
            .dense_min()
            .expect("min side with len ≥ k_max");
        Ok(WorkloadBounds {
            upper: UpperWorkloadCurve::new(upper_dense)?,
            lower: LowerWorkloadCurve::new(lower_dense)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_events::{ExecutionInterval, TimedEvent, TypeRegistry};

    fn timed(times: &[f64]) -> TimedTrace {
        let mut reg = TypeRegistry::new();
        let t = reg
            .register("t", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        TimedTrace::new(
            reg,
            times.iter().map(|&time| TimedEvent { time, ty: t }).collect(),
        )
        .unwrap()
    }

    #[test]
    fn arrival_upper_of_periodic_trace() {
        // Events at 0, 1, 2, …, 9: k events span k−1 time units.
        let tt = timed(&(0..10).map(f64::from).collect::<Vec<_>>());
        let alpha = arrival_upper(&tt, 10, WindowMode::Exact).unwrap();
        assert_eq!(alpha.value(0.0), 1);
        assert_eq!(alpha.value(0.5), 1);
        assert_eq!(alpha.value(1.0), 2);
        assert_eq!(alpha.value(4.2), 5);
        assert_eq!(alpha.value(9.0), 10);
    }

    #[test]
    fn arrival_upper_of_bursty_trace() {
        // Two instantaneous bursts of 3 events.
        let tt = timed(&[0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
        let alpha = arrival_upper(&tt, 6, WindowMode::Exact).unwrap();
        assert_eq!(alpha.value(0.0), 3);
        assert_eq!(alpha.value(9.0), 3);
        assert_eq!(alpha.value(10.0), 6);
    }

    #[test]
    fn arrival_upper_matches_brute_force_sliding_window() {
        let times = [0.0, 0.3, 0.9, 1.0, 2.5, 2.6, 2.7, 5.0];
        let tt = timed(&times);
        let alpha = arrival_upper(&tt, times.len(), WindowMode::Exact).unwrap();
        for i in 0..60 {
            let delta = i as f64 * 0.1;
            // Brute force: max events in any closed window [t, t+delta]
            // anchored at an event.
            let mut best = 0;
            for (s, &start) in times.iter().enumerate() {
                let count = times[s..]
                    .iter()
                    .take_while(|&&t| t <= start + delta + 1e-12)
                    .count();
                best = best.max(count);
            }
            assert_eq!(
                alpha.value(delta),
                best as u64,
                "mismatch at Δ={delta}"
            );
        }
    }

    #[test]
    fn arrival_lower_is_below_upper() {
        let times: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin().abs() + i as f64).collect();
        let tt = timed(&times);
        let up = arrival_upper(&tt, 20, WindowMode::Exact).unwrap();
        let lo = arrival_lower(&tt, 20, WindowMode::Exact).unwrap();
        for i in 0..200 {
            let d = i as f64 * 0.1;
            assert!(lo.value(d) <= up.value(d), "Δ={d}");
        }
    }

    #[test]
    fn arrival_lower_of_periodic_trace() {
        let tt = timed(&(0..10).map(f64::from).collect::<Vec<_>>());
        let lo = arrival_lower(&tt, 10, WindowMode::Exact).unwrap();
        // A window of length k always contains at least k−1 events… the
        // maximal span of k events is k−1, so the curve reaches k−1 at Δ=k.
        assert_eq!(lo.value(0.5), 0);
        assert_eq!(lo.value(1.0), 1);
        assert_eq!(lo.value(9.0), 9);
    }

    fn varied_trace(n: usize) -> Trace {
        let mut reg = TypeRegistry::new();
        let a = reg
            .register("a", ExecutionInterval::new(Cycles(2), Cycles(7)).unwrap())
            .unwrap();
        let b = reg
            .register("b", ExecutionInterval::new(Cycles(1), Cycles(3)).unwrap())
            .unwrap();
        let c = reg
            .register("c", ExecutionInterval::fixed(Cycles(5)))
            .unwrap();
        let types: Vec<_> = (0..n)
            .map(|i| match (i * 7 + i / 3) % 3 {
                0 => a,
                1 => b,
                _ => c,
            })
            .collect();
        Trace::new(reg, types)
    }

    #[test]
    fn incremental_bounds_match_full_rebuild() {
        let trace = varied_trace(300);
        let k_max = 24;
        for mode in [
            WindowMode::Exact,
            WindowMode::Strided {
                stride: 5,
                exact_upto: 8,
            },
        ] {
            let mut inc = IncrementalBounds::new(k_max, mode).unwrap();
            inc.extend_trace(&trace);
            assert_eq!(inc.len(), trace.len());
            let incremental = inc.bounds().unwrap();
            let full = WorkloadBounds::from_trace(&trace, k_max, mode).unwrap();
            assert_eq!(incremental, full, "mode {mode:?}");
        }
    }

    #[test]
    fn incremental_bounds_refresh_as_the_stream_grows() {
        let trace = varied_trace(120);
        let k_max = 10;
        let mut inc = IncrementalBounds::new(k_max, WindowMode::Exact).unwrap();
        assert!(matches!(inc.bounds(), Err(WorkloadError::Empty)));
        let worst = trace.worst_demands();
        let best = trace.best_demands();
        for i in 0..trace.len() {
            inc.push(worst[i], best[i]);
            if i + 1 < k_max {
                assert!(inc.bounds().is_err(), "undefined before k_max events");
            } else if (i + 1) % 17 == 0 || i + 1 == trace.len() {
                let prefix = Trace::new(
                    trace.registry().clone(),
                    trace.events()[..=i].to_vec(),
                );
                let full = WorkloadBounds::from_trace(&prefix, k_max, WindowMode::Exact).unwrap();
                assert_eq!(inc.bounds().unwrap(), full, "after {} events", i + 1);
            }
        }
    }

    #[test]
    fn incremental_bounds_validate_parameters() {
        assert!(IncrementalBounds::new(0, WindowMode::Exact).is_err());
        assert!(IncrementalBounds::new(
            5,
            WindowMode::Strided {
                stride: 0,
                exact_upto: 2
            }
        )
        .is_err());
    }

    #[test]
    fn bounds_from_traces_merges() {
        let mut reg = TypeRegistry::new();
        let x = reg
            .register("x", ExecutionInterval::fixed(Cycles(4)))
            .unwrap();
        let y = reg
            .register("y", ExecutionInterval::fixed(Cycles(1)))
            .unwrap();
        let t1 = Trace::new(reg.clone(), vec![x, y, y, x]);
        let t2 = Trace::new(reg, vec![y, x, x, y]);
        let b = bounds_from_traces(&[t1, t2], 3, WindowMode::Exact).unwrap();
        assert_eq!(b.upper.value(2), Cycles(8));
        assert_eq!(b.lower.value(2), Cycles(2));
        assert!(bounds_from_traces(&[], 3, WindowMode::Exact).is_err());
    }
}
