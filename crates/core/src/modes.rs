//! Workload curves from mode graphs (extension).
//!
//! The paper builds on the SPI model (Ziegenbein et al.) and Wolf's
//! behavioral intervals, where "processes can have different modes with
//! different intervals for execution times", and its related work points to
//! state-based characterizations (later formalized as *event count
//! automata*). This module closes that loop: if the admissible type
//! sequences of a task are the walks of a **mode graph** — each mode
//! carrying a demand interval, each edge an allowed successor — then the
//! workload curves have an exact analytic form:
//!
//! > `γᵘ(k)` = maximum total WCET over all `k`-step walks,
//! > `γˡ(k)` = minimum total BCET over all `k`-step walks,
//!
//! computable by dynamic programming in `O(k·|E|)`. Cyclic per-job
//! patterns, Markov-generated streams and "no two expensive events in a
//! row" constraints are all special cases.

use crate::curve::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use crate::WorkloadError;
use wcm_events::ExecutionInterval;

/// A mode graph: modes with demand intervals, edges giving the allowed
/// successor relation.
///
/// # Example
///
/// An expensive activation (mode 0) must be followed by at least two cheap
/// ones (modes 1 → 2 → anywhere):
///
/// ```
/// use wcm_core::modes::ModeGraph;
/// use wcm_core::Cycles;
/// use wcm_events::ExecutionInterval;
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// let mut g = ModeGraph::new();
/// let hot = g.add_mode("hot", ExecutionInterval::fixed(Cycles(10)));
/// let cool1 = g.add_mode("cool1", ExecutionInterval::fixed(Cycles(2)));
/// let cool2 = g.add_mode("cool2", ExecutionInterval::fixed(Cycles(2)));
/// g.add_edge(hot, cool1)?;
/// g.add_edge(cool1, cool2)?;
/// g.add_edge(cool2, hot)?;
/// g.add_edge(cool2, cool2)?;
/// let gamma = g.upper_curve(6)?;
/// assert_eq!(gamma.value(1), Cycles(10));
/// assert_eq!(gamma.value(3), Cycles(14)); // hot cool cool
/// assert_eq!(gamma.value(6), Cycles(28)); // two hots per six jobs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModeGraph {
    names: Vec<String>,
    intervals: Vec<ExecutionInterval>,
    /// `succ[m]` = modes reachable from `m` in one step.
    succ: Vec<Vec<usize>>,
}

/// Opaque mode handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeId(usize);

impl ModeGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a mode with its demand interval.
    pub fn add_mode(&mut self, name: impl Into<String>, interval: ExecutionInterval) -> ModeId {
        self.names.push(name.into());
        self.intervals.push(interval);
        self.succ.push(Vec::new());
        ModeId(self.names.len() - 1)
    }

    /// Adds a directed edge `from → to` (repeated edges are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for foreign handles.
    pub fn add_edge(&mut self, from: ModeId, to: ModeId) -> Result<(), WorkloadError> {
        if from.0 >= self.names.len() || to.0 >= self.names.len() {
            return Err(WorkloadError::InvalidParameter { name: "mode" });
        }
        if !self.succ[from.0].contains(&to.0) {
            self.succ[from.0].push(to.0);
        }
        Ok(())
    }

    /// Number of modes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no modes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Validates that every mode has a successor (so walks of every length
    /// exist and the curves are total).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Infeasible`] naming the problem if a mode
    /// is a dead end, or [`WorkloadError::Empty`] for an empty graph.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.is_empty() {
            return Err(WorkloadError::Empty);
        }
        if self.succ.iter().any(Vec::is_empty) {
            return Err(WorkloadError::Infeasible {
                reason: "a mode has no successor; finite walks only",
            });
        }
        Ok(())
    }

    /// `γᵘ(k)` for `k = 1 ..= k_max` by maximum-weight `k`-walk DP.
    ///
    /// # Errors
    ///
    /// Propagates [`ModeGraph::validate`] failures and rejects `k_max = 0`.
    pub fn upper_curve(&self, k_max: usize) -> Result<UpperWorkloadCurve, WorkloadError> {
        let values = self.walk_dp(k_max, true)?;
        UpperWorkloadCurve::new(values)
    }

    /// `γˡ(k)` for `k = 1 ..= k_max` by minimum-weight `k`-walk DP.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModeGraph::upper_curve`].
    pub fn lower_curve(&self, k_max: usize) -> Result<LowerWorkloadCurve, WorkloadError> {
        let values = self.walk_dp(k_max, false)?;
        LowerWorkloadCurve::new(values)
    }

    /// Both curves as a pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ModeGraph::upper_curve`].
    pub fn bounds(&self, k_max: usize) -> Result<WorkloadBounds, WorkloadError> {
        Ok(WorkloadBounds {
            upper: self.upper_curve(k_max)?,
            lower: self.lower_curve(k_max)?,
        })
    }

    fn walk_dp(&self, k_max: usize, maximize: bool) -> Result<Vec<u64>, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        self.validate()?;
        let weight = |m: usize| -> u64 {
            if maximize {
                self.intervals[m].wcet().get()
            } else {
                self.intervals[m].bcet().get()
            }
        };
        let pick = |a: u64, b: u64| if maximize { a.max(b) } else { a.min(b) };
        // best[m] = extreme weight of a k-walk *ending* at mode m, `None`
        // where no such walk exists (modes without predecessors drop out
        // at depth 2 and must not contaminate longer walks).
        let mut best: Vec<Option<u64>> = (0..self.len()).map(|m| Some(weight(m))).collect();
        let mut out = Vec::with_capacity(k_max);
        out.push(
            best.iter()
                .flatten()
                .copied()
                .reduce(pick)
                .expect("validated non-empty"),
        );
        for _ in 2..=k_max {
            let mut next: Vec<Option<u64>> = vec![None; self.len()];
            for (m, succs) in self.succ.iter().enumerate() {
                let Some(bm) = best[m] else { continue };
                for &s in succs {
                    let cand = bm + weight(s);
                    next[s] = Some(match next[s] {
                        Some(v) => pick(v, cand),
                        None => cand,
                    });
                }
            }
            best = next;
            out.push(
                best.iter()
                    .flatten()
                    .copied()
                    .reduce(pick)
                    .expect("every mode has a successor, so walks never die out"),
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_events::Cycles;

    fn cooldown_graph() -> (ModeGraph, ModeId, ModeId, ModeId) {
        let mut g = ModeGraph::new();
        let hot = g.add_mode("hot", ExecutionInterval::fixed(Cycles(10)));
        let c1 = g.add_mode("c1", ExecutionInterval::fixed(Cycles(2)));
        let c2 = g.add_mode("c2", ExecutionInterval::fixed(Cycles(2)));
        g.add_edge(hot, c1).unwrap();
        g.add_edge(c1, c2).unwrap();
        g.add_edge(c2, hot).unwrap();
        g.add_edge(c2, c2).unwrap();
        (g, hot, c1, c2)
    }

    #[test]
    fn cooldown_curves() {
        let (g, ..) = cooldown_graph();
        let b = g.bounds(9).unwrap();
        assert_eq!(b.upper.values(), &[10, 12, 14, 24, 26, 28, 38, 40, 42]);
        // Lower: stay in the c2 self-loop after the cheapest entry.
        assert_eq!(b.lower.values(), &[2, 4, 6, 8, 10, 12, 14, 16, 18]);
        assert!(crate::verify::bounds_are_consistent(&b));
        assert!(crate::verify::upper_is_subadditive(&b.upper));
        assert!(crate::verify::lower_is_superadditive(&b.lower));
    }

    #[test]
    fn cyclic_pattern_graph_matches_pattern_curve() {
        // A pure cycle A→B→C→A equals the cyclic-pattern construction.
        let mut g = ModeGraph::new();
        let a = g.add_mode("a", ExecutionInterval::fixed(Cycles(9)));
        let b = g.add_mode("b", ExecutionInterval::fixed(Cycles(3)));
        let c = g.add_mode("c", ExecutionInterval::fixed(Cycles(3)));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        let gamma = g.upper_curve(6).unwrap();
        // Same numbers as PeriodicTask::with_pattern([9,3,3]).
        assert_eq!(gamma.values(), &[9, 12, 15, 24, 27, 30]);
    }

    #[test]
    fn dead_end_rejected() {
        let mut g = ModeGraph::new();
        let a = g.add_mode("a", ExecutionInterval::fixed(Cycles(1)));
        let b = g.add_mode("b", ExecutionInterval::fixed(Cycles(1)));
        g.add_edge(a, b).unwrap();
        assert!(matches!(
            g.upper_curve(3),
            Err(WorkloadError::Infeasible { .. })
        ));
    }

    #[test]
    fn validates_handles_and_kmax() {
        let mut g = ModeGraph::new();
        let a = g.add_mode("a", ExecutionInterval::fixed(Cycles(1)));
        assert!(g.add_edge(a, ModeId(7)).is_err());
        g.add_edge(a, a).unwrap();
        assert!(g.upper_curve(0).is_err());
        assert!(ModeGraph::new().upper_curve(1).is_err());
    }

    #[test]
    fn interval_modes_use_wcet_up_bcet_down() {
        let mut g = ModeGraph::new();
        let a = g.add_mode(
            "a",
            ExecutionInterval::new(Cycles(2), Cycles(8)).unwrap(),
        );
        g.add_edge(a, a).unwrap();
        let b = g.bounds(4).unwrap();
        assert_eq!(b.upper.values(), &[8, 16, 24, 32]);
        assert_eq!(b.lower.values(), &[2, 4, 6, 8]);
    }

    #[test]
    fn self_loops_on_expensive_mode_give_wcet_line() {
        let mut g = ModeGraph::new();
        let a = g.add_mode("a", ExecutionInterval::fixed(Cycles(7)));
        let b = g.add_mode("b", ExecutionInterval::fixed(Cycles(1)));
        g.add_edge(a, a).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        let gamma = g.upper_curve(5).unwrap();
        // The expensive self-loop allows back-to-back worst cases.
        assert_eq!(gamma.values(), &[7, 14, 21, 28, 35]);
    }
}
