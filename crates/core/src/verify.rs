//! Invariant checkers for workload curves.
//!
//! These predicates encode the structural properties stated in Sec. 2.1 of
//! the paper and are used throughout the test suite (including the property
//! tests) and in examples to sanity-check measured curves.

use crate::curve::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use wcm_events::Trace;

/// `γᵘ(i + j) ≤ γᵘ(i) + γᵘ(j)` over the stored range — the property that
/// makes the curve's extrapolation sound.
///
/// # Example
///
/// ```
/// use wcm_core::{verify, UpperWorkloadCurve};
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// let good = UpperWorkloadCurve::new(vec![10, 12, 22])?;
/// assert!(verify::upper_is_subadditive(&good));
/// let bad = UpperWorkloadCurve::new(vec![1, 10, 11])?; // γ(2) > 2·γ(1)
/// assert!(!verify::upper_is_subadditive(&bad));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn upper_is_subadditive(gamma: &UpperWorkloadCurve) -> bool {
    let k_max = gamma.k_max();
    for i in 1..=k_max {
        for j in i..=k_max - i {
            if gamma.value(i + j) > gamma.value(i) + gamma.value(j) {
                return false;
            }
        }
    }
    true
}

/// `γˡ(i + j) ≥ γˡ(i) + γˡ(j)` over the stored range.
#[must_use]
pub fn lower_is_superadditive(gamma: &LowerWorkloadCurve) -> bool {
    let k_max = gamma.k_max();
    for i in 1..=k_max {
        for j in i..=k_max - i {
            if gamma.value(i + j) < gamma.value(i) + gamma.value(j) {
                return false;
            }
        }
    }
    true
}

/// `γˡ(k) ≤ γᵘ(k)` over the common stored range.
#[must_use]
pub fn bounds_are_consistent(bounds: &WorkloadBounds) -> bool {
    let k_max = bounds.upper.k_max().min(bounds.lower.k_max());
    (1..=k_max).all(|k| bounds.lower.value(k) <= bounds.upper.value(k))
}

/// Exhaustively checks Def. 1 against a trace: for **every** window
/// `(j, k)` of the trace, `γˡ(k) ≤ γ_b(j,k)` and `γ_w(j,k) ≤ γᵘ(k)`.
///
/// `O(N²)` — intended for tests on small traces.
#[must_use]
pub fn bounds_cover_trace(bounds: &WorkloadBounds, trace: &Trace) -> bool {
    let n = trace.len();
    let k_max = bounds.upper.k_max().min(bounds.lower.k_max());
    for j in 1..=n {
        for k in 1..=k_max.min(n - j + 1) {
            if trace.gamma_w(j, k) > bounds.upper.value(k) {
                return false;
            }
            if trace.gamma_b(j, k) < bounds.lower.value(k) {
                return false;
            }
        }
    }
    true
}

/// Checks that `tight` is pointwise at least as tight an upper bound as
/// `loose` (i.e. `tight(k) ≤ loose(k)` over the common range) — e.g. the
/// measured `γᵘ` against the WCET line.
#[must_use]
pub fn upper_refines(tight: &UpperWorkloadCurve, loose: &UpperWorkloadCurve) -> bool {
    let k_max = tight.k_max().min(loose.k_max());
    (1..=k_max).all(|k| tight.value(k) <= loose.value(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_events::window::WindowMode;
    use wcm_events::{Cycles, ExecutionInterval, TypeRegistry};

    fn sample_trace() -> Trace {
        let mut reg = TypeRegistry::new();
        let hi = reg
            .register("hi", ExecutionInterval::new(Cycles(8), Cycles(10)).unwrap())
            .unwrap();
        let lo = reg
            .register("lo", ExecutionInterval::new(Cycles(1), Cycles(2)).unwrap())
            .unwrap();
        Trace::new(reg, vec![hi, lo, lo, hi, lo, lo, hi, lo, lo, hi])
    }

    #[test]
    fn trace_curves_satisfy_all_invariants() {
        let t = sample_trace();
        let b = WorkloadBounds::from_trace(&t, 8, WindowMode::Exact).unwrap();
        assert!(upper_is_subadditive(&b.upper));
        assert!(lower_is_superadditive(&b.lower));
        assert!(bounds_are_consistent(&b));
        assert!(bounds_cover_trace(&b, &t));
    }

    #[test]
    fn wcet_line_is_refined_by_trace_curve() {
        let t = sample_trace();
        let g = UpperWorkloadCurve::from_trace(&t, 8, WindowMode::Exact).unwrap();
        let line = UpperWorkloadCurve::wcet_line(g.wcet(), 8).unwrap();
        assert!(upper_refines(&g, &line));
        assert!(!upper_refines(&line, &g)); // strictly looser somewhere
    }

    #[test]
    fn inconsistent_bounds_detected() {
        let b = WorkloadBounds {
            upper: UpperWorkloadCurve::new(vec![5, 6]).unwrap(),
            lower: LowerWorkloadCurve::new(vec![7, 8]).unwrap(),
        };
        assert!(!bounds_are_consistent(&b));
    }

    #[test]
    fn cover_fails_for_foreign_trace() {
        let t = sample_trace();
        let b = WorkloadBounds::from_trace(&t, 8, WindowMode::Exact).unwrap();
        // A trace with back-to-back expensive events violates the bounds.
        let mut reg = TypeRegistry::new();
        let hi = reg
            .register("hi", ExecutionInterval::new(Cycles(8), Cycles(10)).unwrap())
            .unwrap();
        let foreign = Trace::new(reg, vec![hi, hi, hi]);
        assert!(!bounds_cover_trace(&b, &foreign));
    }
}
