//! The workload-curve types of Def. 1.
//!
//! An upper workload curve `γᵘ(k)` bounds from above the cycles consumed by
//! any `k` consecutive task activations; a lower curve `γˡ(k)` bounds them
//! from below. Both are stored as dense sequences over `k = 1 ..= k_max` and
//! extended soundly beyond `k_max` using sub-/super-additivity:
//!
//! * `γᵘ(k₁ + k₂) ≤ γᵘ(k₁) + γᵘ(k₂)` — a window of `k₁+k₂` events splits
//!   into adjacent windows of `k₁` and `k₂` events, each individually
//!   bounded; hence `γᵘ(q·K + r) ≤ q·γᵘ(K) + γᵘ(r)` is a valid upper value.
//! * dually `γˡ(q·K + r) ≥ q·γˡ(K) + γˡ(r)` is a valid lower value.

use crate::WorkloadError;
use wcm_events::window::{Parallelism, WindowMode};
use wcm_events::{Cycles, Trace};

fn validate_monotone(values: &[u64]) -> Result<(), WorkloadError> {
    if values.is_empty() {
        return Err(WorkloadError::Empty);
    }
    for (i, w) in values.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err(WorkloadError::NotMonotone { k: i + 2 });
        }
    }
    Ok(())
}

/// Splits `k > k_max` into `q·k_max + r` with `r ∈ [0, k_max)`.
fn split(k: usize, k_max: usize) -> (u64, usize) {
    ((k / k_max) as u64, k % k_max)
}

/// Upper workload curve `γᵘ(k)` (Def. 1, eq. 1).
///
/// # Example
///
/// ```
/// use wcm_core::{Cycles, UpperWorkloadCurve};
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// // One expensive activation (10) can occur at most once per 3 events.
/// let gamma = UpperWorkloadCurve::new(vec![10, 12, 14])?;
/// assert_eq!(gamma.value(1), Cycles(10));
/// assert_eq!(gamma.value(3), Cycles(14));
/// // Extrapolation: γᵘ(7) ≤ 2·γᵘ(3) + γᵘ(1) = 38.
/// assert_eq!(gamma.value(7), Cycles(38));
/// // Pseudo-inverse: how many events fit into 25 cycles?
/// assert_eq!(gamma.pseudo_inverse(25.0), 4); // γᵘ(4) = 24 ≤ 25 < γᵘ(5) = 26
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UpperWorkloadCurve {
    values: Vec<u64>,
}

impl UpperWorkloadCurve {
    /// Creates a curve from `values[k−1] = γᵘ(k)`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Empty`] for an empty vector and
    /// [`WorkloadError::NotMonotone`] if the values decrease.
    pub fn new(values: Vec<u64>) -> Result<Self, WorkloadError> {
        validate_monotone(&values)?;
        Ok(Self { values })
    }

    /// The classic WCET-only characterization `γᵘ(k) = w·k` (the pessimistic
    /// baseline the paper improves upon).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0, and
    /// [`WorkloadError::Overflow`] if `k_max · wcet` exceeds `u64::MAX`.
    pub fn wcet_line(wcet: Cycles, k_max: usize) -> Result<Self, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        let values = (1..=k_max as u64)
            .map(|k| {
                k.checked_mul(wcet.get())
                    .ok_or(WorkloadError::Overflow { what: "k·WCET" })
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { values })
    }

    /// Builds the curve from a measured trace:
    /// `γᵘ(k) = max_j γ_w(j, k)` over all windows of the trace (eq. 1).
    ///
    /// # Errors
    ///
    /// Propagates window-analysis parameter errors.
    pub fn from_trace(trace: &Trace, k_max: usize, mode: WindowMode) -> Result<Self, WorkloadError> {
        Self::from_trace_with(trace, k_max, mode, Parallelism::Auto)
    }

    /// [`UpperWorkloadCurve::from_trace`] with an explicit [`Parallelism`]
    /// knob; sequential and parallel runs produce identical curves.
    ///
    /// # Errors
    ///
    /// Propagates window-analysis parameter errors.
    pub fn from_trace_with(
        trace: &Trace,
        k_max: usize,
        mode: WindowMode,
        par: Parallelism,
    ) -> Result<Self, WorkloadError> {
        let demands: Vec<u64> = trace.worst_demands().iter().map(|c| c.get()).collect();
        let values = wcm_events::window::max_window_sums_with(&demands, k_max, mode, par)?;
        Self::new(values)
    }

    /// Largest `k` stored exactly.
    #[must_use]
    pub fn k_max(&self) -> usize {
        self.values.len()
    }

    /// The stored values (`values()[k−1] = γᵘ(k)`).
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// `γᵘ(k)` for any `k ≥ 0`, with sub-additive extrapolation beyond
    /// `k_max`. `γᵘ(0) = 0`.
    #[must_use]
    pub fn value(&self, k: usize) -> Cycles {
        if k == 0 {
            return Cycles::ZERO;
        }
        if k <= self.values.len() {
            return Cycles(self.values[k - 1]);
        }
        let k_max = self.values.len();
        let (q, r) = split(k, k_max);
        let rest = if r == 0 { 0 } else { self.values[r - 1] };
        Cycles(q * self.values[k_max - 1] + rest)
    }

    /// The per-activation worst case `γᵘ(1)` — the `w` of eq. 10.
    #[must_use]
    pub fn wcet(&self) -> Cycles {
        Cycles(self.values[0])
    }

    /// Long-run cycles per event of the extrapolation, `γᵘ(k_max)/k_max`.
    #[must_use]
    pub fn tail_cycles_per_event(&self) -> f64 {
        self.values[self.values.len() - 1] as f64 / self.values.len() as f64
    }

    /// Upper pseudo-inverse `γᵘ⁻¹(e) = max { k ≥ 0 : γᵘ(k) ≤ e }`
    /// (Sec. 2.1): the number of activations guaranteed to complete within
    /// `e` available cycles.
    ///
    /// Saturates at `u64::MAX` for degenerate all-zero curves.
    #[must_use]
    pub fn pseudo_inverse(&self, e: f64) -> u64 {
        if e < self.values[0] as f64 {
            return 0;
        }
        if self.values[self.values.len() - 1] == 0 {
            return u64::MAX; // zero demand: any number of events fits
        }
        // Exponential search for an upper bracket, then binary search.
        let mut hi: usize = self.values.len();
        while (self.value(hi).get() as f64) <= e {
            if hi > usize::MAX / 2 {
                return u64::MAX;
            }
            hi *= 2;
        }
        let mut lo: usize = 0;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if (self.value(mid).get() as f64) <= e {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo as u64
    }

    /// Workload curve of the **OR-activation** (merge) of two event
    /// streams feeding the same task: any `k` consecutive activations of
    /// the merged stream split into `i` from one source and `k − i` from
    /// the other, so
    /// `γᵘ_∨(k) = max_{i+j=k} ( γᵘ₁(i) + γᵘ₂(j) )` — the discrete max-plus
    /// convolution of the curves. Covers every interleaving.
    ///
    /// The result spans the sum of the stored ranges.
    ///
    /// # Example
    ///
    /// ```
    /// use wcm_core::UpperWorkloadCurve;
    ///
    /// # fn main() -> Result<(), wcm_core::WorkloadError> {
    /// let video = UpperWorkloadCurve::new(vec![10, 12])?;
    /// let audio = UpperWorkloadCurve::new(vec![4, 8])?;
    /// let merged = video.or_merge(&audio);
    /// // Worst 2 events: both video-expensive? No — γᵘ_v(2)=12 vs
    /// // γᵘ_v(1)+γᵘ_a(1)=14: the mix is worse.
    /// assert_eq!(merged.values()[1], 14);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn or_merge(&self, other: &UpperWorkloadCurve) -> UpperWorkloadCurve {
        let n = self.values.len() + other.values.len();
        let mut out = Vec::with_capacity(n);
        for k in 1..=n {
            let mut best = 0u64;
            for i in 0..=k {
                // value() extrapolates soundly beyond each stored range.
                best = best.max(self.value(i).get() + other.value(k - i).get());
            }
            out.push(best);
        }
        UpperWorkloadCurve { values: out }
    }

    /// Pointwise maximum with another curve (e.g. across measured clips);
    /// the result covers the common `k` range.
    ///
    /// # Example
    ///
    /// ```
    /// use wcm_core::UpperWorkloadCurve;
    ///
    /// # fn main() -> Result<(), wcm_core::WorkloadError> {
    /// let a = UpperWorkloadCurve::new(vec![5, 8])?;
    /// let b = UpperWorkloadCurve::new(vec![4, 9, 12])?;
    /// assert_eq!(a.max_merge(&b).values(), &[5, 9]);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn max_merge(&self, other: &UpperWorkloadCurve) -> UpperWorkloadCurve {
        let n = self.values.len().min(other.values.len());
        UpperWorkloadCurve {
            values: (0..n)
                .map(|i| self.values[i].max(other.values[i]))
                .collect(),
        }
    }
}

/// Lower workload curve `γˡ(k)` (Def. 1, eq. 2).
///
/// # Example
///
/// ```
/// use wcm_core::{Cycles, LowerWorkloadCurve};
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// let gamma = LowerWorkloadCurve::new(vec![2, 5, 9])?;
/// assert_eq!(gamma.value(1), Cycles(2));
/// // Extrapolation: γˡ(7) ≥ 2·γˡ(3) + γˡ(1) = 20.
/// assert_eq!(gamma.value(7), Cycles(20));
/// assert_eq!(gamma.pseudo_inverse(6.0), Some(3)); // first k with γˡ(k) ≥ 6
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LowerWorkloadCurve {
    values: Vec<u64>,
}

impl LowerWorkloadCurve {
    /// Creates a curve from `values[k−1] = γˡ(k)`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Empty`] for an empty vector and
    /// [`WorkloadError::NotMonotone`] if the values decrease.
    pub fn new(values: Vec<u64>) -> Result<Self, WorkloadError> {
        validate_monotone(&values)?;
        Ok(Self { values })
    }

    /// The classic BCET-only characterization `γˡ(k) = b·k`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0, and
    /// [`WorkloadError::Overflow`] if `k_max · bcet` exceeds `u64::MAX`.
    pub fn bcet_line(bcet: Cycles, k_max: usize) -> Result<Self, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        let values = (1..=k_max as u64)
            .map(|k| {
                k.checked_mul(bcet.get())
                    .ok_or(WorkloadError::Overflow { what: "k·BCET" })
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { values })
    }

    /// Builds the curve from a measured trace:
    /// `γˡ(k) = min_j γ_b(j, k)` (eq. 2).
    ///
    /// # Errors
    ///
    /// Propagates window-analysis parameter errors.
    pub fn from_trace(trace: &Trace, k_max: usize, mode: WindowMode) -> Result<Self, WorkloadError> {
        Self::from_trace_with(trace, k_max, mode, Parallelism::Auto)
    }

    /// [`LowerWorkloadCurve::from_trace`] with an explicit [`Parallelism`]
    /// knob; sequential and parallel runs produce identical curves.
    ///
    /// # Errors
    ///
    /// Propagates window-analysis parameter errors.
    pub fn from_trace_with(
        trace: &Trace,
        k_max: usize,
        mode: WindowMode,
        par: Parallelism,
    ) -> Result<Self, WorkloadError> {
        let demands: Vec<u64> = trace.best_demands().iter().map(|c| c.get()).collect();
        let values = wcm_events::window::min_window_sums_with(&demands, k_max, mode, par)?;
        Self::new(values)
    }

    /// Largest `k` stored exactly.
    #[must_use]
    pub fn k_max(&self) -> usize {
        self.values.len()
    }

    /// The stored values.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// `γˡ(k)` for any `k ≥ 0`, with super-additive extrapolation.
    #[must_use]
    pub fn value(&self, k: usize) -> Cycles {
        if k == 0 {
            return Cycles::ZERO;
        }
        if k <= self.values.len() {
            return Cycles(self.values[k - 1]);
        }
        let k_max = self.values.len();
        let (q, r) = split(k, k_max);
        let rest = if r == 0 { 0 } else { self.values[r - 1] };
        Cycles(q * self.values[k_max - 1] + rest)
    }

    /// The per-activation best case `γˡ(1)`.
    #[must_use]
    pub fn bcet(&self) -> Cycles {
        Cycles(self.values[0])
    }

    /// Lower pseudo-inverse `γˡ⁻¹(e) = min { k : γˡ(k) ≥ e }`: the largest
    /// number of activations that may be necessary before `e` cycles of
    /// demand are guaranteed to have accumulated.
    ///
    /// Returns `None` if the curve never reaches `e` (flat zero curve).
    #[must_use]
    pub fn pseudo_inverse(&self, e: f64) -> Option<u64> {
        if e <= 0.0 {
            return Some(0);
        }
        if self.values[self.values.len() - 1] == 0 {
            return None;
        }
        let mut hi: usize = self.values.len();
        while (self.value(hi).get() as f64) < e {
            hi *= 2;
        }
        let mut lo: usize = 0;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if (self.value(mid).get() as f64) >= e {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi as u64)
    }

    /// The largest event count whose guaranteed demand fits in `e` cycles:
    /// `max { k ≥ 0 : γˡ(k) ≤ e }` — the converse question to
    /// [`LowerWorkloadCurve::pseudo_inverse`], used to bound how many
    /// *output* events at most `e` processed cycles can correspond to.
    ///
    /// Saturates at `u64::MAX` for degenerate all-zero curves.
    #[must_use]
    pub fn count_within(&self, e: f64) -> u64 {
        if e < self.values[0] as f64 {
            return 0;
        }
        if self.values[self.values.len() - 1] == 0 {
            return u64::MAX;
        }
        let mut hi: usize = self.values.len();
        while (self.value(hi).get() as f64) <= e {
            if hi > usize::MAX / 2 {
                return u64::MAX;
            }
            hi *= 2;
        }
        let mut lo: usize = 0;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if (self.value(mid).get() as f64) <= e {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo as u64
    }

    /// Lower workload curve of the **OR-activation** of two streams:
    /// `γˡ_∨(k) = min_{i+j=k} ( γˡ₁(i) + γˡ₂(j) )` — the discrete min-plus
    /// convolution (see [`UpperWorkloadCurve::or_merge`] for the split
    /// argument).
    #[must_use]
    pub fn or_merge(&self, other: &LowerWorkloadCurve) -> LowerWorkloadCurve {
        let n = self.values.len() + other.values.len();
        let mut out = Vec::with_capacity(n);
        for k in 1..=n {
            let mut best = u64::MAX;
            for i in 0..=k {
                best = best.min(self.value(i).get() + other.value(k - i).get());
            }
            out.push(best);
        }
        LowerWorkloadCurve { values: out }
    }

    /// Pointwise minimum with another curve, over the common `k` range.
    #[must_use]
    pub fn min_merge(&self, other: &LowerWorkloadCurve) -> LowerWorkloadCurve {
        let n = self.values.len().min(other.values.len());
        LowerWorkloadCurve {
            values: (0..n)
                .map(|i| self.values[i].min(other.values[i]))
                .collect(),
        }
    }
}

impl std::fmt::Display for UpperWorkloadCurve {
    /// Shows the first values and the stored range, e.g.
    /// `γᵘ[k≤6]: 10 12 22 24 …`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "γᵘ[k≤{}]:", self.values.len())?;
        for v in self.values.iter().take(8) {
            write!(f, " {v}")?;
        }
        if self.values.len() > 8 {
            write!(f, " …")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for LowerWorkloadCurve {
    /// Shows the first values and the stored range, e.g.
    /// `γˡ[k≤6]: 2 12 14 …`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "γˡ[k≤{}]:", self.values.len())?;
        for v in self.values.iter().take(8) {
            write!(f, " {v}")?;
        }
        if self.values.len() > 8 {
            write!(f, " …")?;
        }
        Ok(())
    }
}

/// The `(γᵘ, γˡ)` pair characterizing one task.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadBounds {
    /// Upper workload curve.
    pub upper: UpperWorkloadCurve,
    /// Lower workload curve.
    pub lower: LowerWorkloadCurve,
}

impl WorkloadBounds {
    /// Builds both curves from one trace and checks `γˡ ≤ γᵘ`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; returns
    /// [`WorkloadError::NotMonotone`] never for valid traces (window sums
    /// are monotone by construction).
    pub fn from_trace(
        trace: &Trace,
        k_max: usize,
        mode: WindowMode,
    ) -> Result<Self, WorkloadError> {
        Self::from_trace_with(trace, k_max, mode, Parallelism::Auto)
    }

    /// [`WorkloadBounds::from_trace`] with an explicit [`Parallelism`] knob.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WorkloadBounds::from_trace`].
    pub fn from_trace_with(
        trace: &Trace,
        k_max: usize,
        mode: WindowMode,
        par: Parallelism,
    ) -> Result<Self, WorkloadError> {
        let upper = UpperWorkloadCurve::from_trace_with(trace, k_max, mode, par)?;
        let lower = LowerWorkloadCurve::from_trace_with(trace, k_max, mode, par)?;
        Ok(Self { upper, lower })
    }

    /// Merges bounds across several traces (max of uppers, min of lowers) —
    /// how the paper combines its 14 video clips into Fig. 6.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Empty`] if `all` is empty.
    pub fn merge_all(all: &[WorkloadBounds]) -> Result<Self, WorkloadError> {
        let first = all.first().ok_or(WorkloadError::Empty)?;
        let mut upper = first.upper.clone();
        let mut lower = first.lower.clone();
        for b in &all[1..] {
            upper = upper.max_merge(&b.upper);
            lower = lower.min_merge(&b.lower);
        }
        Ok(Self { upper, lower })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_events::{ExecutionInterval, TypeRegistry};

    fn alternating_trace(n: usize) -> Trace {
        let mut reg = TypeRegistry::new();
        let hi = reg
            .register("hi", ExecutionInterval::fixed(Cycles(10)))
            .unwrap();
        let lo = reg
            .register("lo", ExecutionInterval::fixed(Cycles(2)))
            .unwrap();
        let evs = (0..n).map(|i| if i % 2 == 0 { hi } else { lo }).collect();
        Trace::new(reg, evs)
    }

    #[test]
    fn construction_validates() {
        assert!(UpperWorkloadCurve::new(vec![]).is_err());
        assert!(UpperWorkloadCurve::new(vec![5, 3]).is_err());
        assert!(LowerWorkloadCurve::new(vec![5, 3]).is_err());
        assert!(UpperWorkloadCurve::new(vec![3, 3, 4]).is_ok()); // flat steps allowed
    }

    #[test]
    fn value_zero_is_zero() {
        let g = UpperWorkloadCurve::new(vec![4, 7]).unwrap();
        assert_eq!(g.value(0), Cycles::ZERO);
        let l = LowerWorkloadCurve::new(vec![1, 3]).unwrap();
        assert_eq!(l.value(0), Cycles::ZERO);
    }

    #[test]
    fn alternating_trace_curves() {
        let t = alternating_trace(10);
        let b = WorkloadBounds::from_trace(&t, 6, WindowMode::Exact).unwrap();
        // γᵘ: 10, 12, 22, 24, 34, 36 — at most ⌈k/2⌉ expensive events.
        assert_eq!(b.upper.values(), &[10, 12, 22, 24, 34, 36]);
        // γˡ: 2, 12, 14, 24, 26, 36.
        assert_eq!(b.lower.values(), &[2, 12, 14, 24, 26, 36]);
        assert_eq!(b.upper.wcet(), Cycles(10));
        assert_eq!(b.lower.bcet(), Cycles(2));
    }

    #[test]
    fn upper_extension_is_subadditive_bound() {
        let t = alternating_trace(20);
        let full = UpperWorkloadCurve::from_trace(&t, 15, WindowMode::Exact).unwrap();
        let short = UpperWorkloadCurve::from_trace(&t, 4, WindowMode::Exact).unwrap();
        for k in 5..=15 {
            assert!(
                short.value(k) >= full.value(k),
                "extension below exact at k={k}: {:?} < {:?}",
                short.value(k),
                full.value(k)
            );
        }
    }

    #[test]
    fn lower_extension_is_superadditive_bound() {
        let t = alternating_trace(20);
        let full = LowerWorkloadCurve::from_trace(&t, 15, WindowMode::Exact).unwrap();
        let short = LowerWorkloadCurve::from_trace(&t, 4, WindowMode::Exact).unwrap();
        for k in 5..=15 {
            assert!(
                short.value(k) <= full.value(k),
                "extension above exact at k={k}"
            );
        }
    }

    #[test]
    fn extension_exact_multiples() {
        let g = UpperWorkloadCurve::new(vec![10, 12]).unwrap();
        assert_eq!(g.value(4), Cycles(24)); // 2·γᵘ(2)
        assert_eq!(g.value(5), Cycles(34)); // 2·γᵘ(2) + γᵘ(1)
    }

    #[test]
    fn wcet_line_is_linear_and_dominates_trace_curve() {
        let t = alternating_trace(12);
        let g = UpperWorkloadCurve::from_trace(&t, 8, WindowMode::Exact).unwrap();
        let line = UpperWorkloadCurve::wcet_line(g.wcet(), 8).unwrap();
        for k in 1..=8 {
            assert!(line.value(k) >= g.value(k));
        }
        assert_eq!(line.value(8), Cycles(80));
    }

    #[test]
    fn reference_lines_report_overflow() {
        // 3 · (u64::MAX / 2) wraps: must be an error, not a bogus curve.
        let huge = Cycles(u64::MAX / 2);
        assert_eq!(
            UpperWorkloadCurve::wcet_line(huge, 3).unwrap_err(),
            WorkloadError::Overflow { what: "k·WCET" }
        );
        assert_eq!(
            LowerWorkloadCurve::bcet_line(huge, 3).unwrap_err(),
            WorkloadError::Overflow { what: "k·BCET" }
        );
        // 2 · (u64::MAX / 2) still fits.
        assert!(UpperWorkloadCurve::wcet_line(huge, 2).is_ok());
        assert!(LowerWorkloadCurve::bcet_line(huge, 2).is_ok());
    }

    #[test]
    fn from_trace_with_matches_from_trace() {
        let t = alternating_trace(40);
        let seq = WorkloadBounds::from_trace(&t, 20, WindowMode::Exact).unwrap();
        for par in [Parallelism::Seq, Parallelism::Threads(4), Parallelism::Auto] {
            assert_eq!(
                WorkloadBounds::from_trace_with(&t, 20, WindowMode::Exact, par).unwrap(),
                seq,
                "bounds differ under {par:?}"
            );
        }
    }

    #[test]
    fn pseudo_inverse_upper_properties() {
        let g = UpperWorkloadCurve::new(vec![10, 12, 22, 24]).unwrap();
        assert_eq!(g.pseudo_inverse(0.0), 0);
        assert_eq!(g.pseudo_inverse(9.9), 0);
        assert_eq!(g.pseudo_inverse(10.0), 1);
        assert_eq!(g.pseudo_inverse(21.9), 2);
        assert_eq!(g.pseudo_inverse(22.0), 3);
        // Beyond stored range: γᵘ(5) = 34, γᵘ(6) = 36.
        assert_eq!(g.pseudo_inverse(35.0), 5);
        // Galois property: γᵘ(k) ≤ e ⇔ k ≤ γᵘ⁻¹(e).
        for e in [0.0, 5.0, 12.0, 23.0, 100.0, 1000.0] {
            let k_inv = g.pseudo_inverse(e);
            assert!(g.value(k_inv as usize).get() as f64 <= e || k_inv == 0);
            assert!(g.value(k_inv as usize + 1).get() as f64 > e);
        }
    }

    #[test]
    fn pseudo_inverse_upper_degenerate_zero_curve() {
        let g = UpperWorkloadCurve::new(vec![0, 0]).unwrap();
        assert_eq!(g.pseudo_inverse(1.0), u64::MAX);
    }

    #[test]
    fn pseudo_inverse_lower_properties() {
        let l = LowerWorkloadCurve::new(vec![2, 12, 14]).unwrap();
        assert_eq!(l.pseudo_inverse(0.0), Some(0));
        assert_eq!(l.pseudo_inverse(1.0), Some(1));
        assert_eq!(l.pseudo_inverse(2.0), Some(1));
        assert_eq!(l.pseudo_inverse(3.0), Some(2));
        assert_eq!(l.pseudo_inverse(13.0), Some(3));
        // Beyond range: γˡ(4) = 16, γˡ(5) = 26.
        assert_eq!(l.pseudo_inverse(20.0), Some(5));
        let flat = LowerWorkloadCurve::new(vec![0, 0]).unwrap();
        assert_eq!(flat.pseudo_inverse(1.0), None);
    }

    #[test]
    fn inverse_roundtrip_identity() {
        // γᵘ⁻¹(γᵘ(k)) = k for strictly increasing curves (Sec. 2.1).
        let g = UpperWorkloadCurve::new(vec![3, 7, 11, 16]).unwrap();
        for k in 1..=10usize {
            assert_eq!(g.pseudo_inverse(g.value(k).get() as f64), k as u64);
        }
        let l = LowerWorkloadCurve::new(vec![2, 5, 9, 14]).unwrap();
        for k in 1..=10usize {
            assert_eq!(l.pseudo_inverse(l.value(k).get() as f64), Some(k as u64));
        }
    }

    #[test]
    fn merge_across_traces() {
        let a = UpperWorkloadCurve::new(vec![5, 8, 10]).unwrap();
        let b = UpperWorkloadCurve::new(vec![4, 9]).unwrap();
        assert_eq!(a.max_merge(&b).values(), &[5, 9]);
        let la = LowerWorkloadCurve::new(vec![2, 4, 6]).unwrap();
        let lb = LowerWorkloadCurve::new(vec![3, 3]).unwrap();
        assert_eq!(la.min_merge(&lb).values(), &[2, 3]);
    }

    #[test]
    fn merge_all_matches_pairwise() {
        let t1 = alternating_trace(10);
        let t2 = alternating_trace(14);
        let b1 = WorkloadBounds::from_trace(&t1, 6, WindowMode::Exact).unwrap();
        let b2 = WorkloadBounds::from_trace(&t2, 6, WindowMode::Exact).unwrap();
        let merged = WorkloadBounds::merge_all(&[b1.clone(), b2.clone()]).unwrap();
        assert_eq!(merged.upper, b1.upper.max_merge(&b2.upper));
        assert!(WorkloadBounds::merge_all(&[]).is_err());
    }

    #[test]
    fn tail_rate() {
        let g = UpperWorkloadCurve::new(vec![10, 12, 22, 24]).unwrap();
        assert!((g.tail_cycles_per_event() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn or_merge_upper_covers_every_interleaving() {
        // Streams A (10,2 alternating) and B (fixed 5): brute-force all
        // binary interleavings of short prefixes.
        let a = [10u64, 2, 10, 2];
        let b = [5u64, 5, 5, 5];
        let trace = |vals: &[u64]| {
            let mut reg = wcm_events::TypeRegistry::new();
            let evs: Vec<_> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    reg.register(format!("t{i}"), wcm_events::ExecutionInterval::fixed(Cycles(v)))
                        .unwrap()
                })
                .collect();
            Trace::new(reg, evs)
        };
        let ga = UpperWorkloadCurve::from_trace(&trace(&a), 4, WindowMode::Exact).unwrap();
        let gb = UpperWorkloadCurve::from_trace(&trace(&b), 4, WindowMode::Exact).unwrap();
        let merged = ga.or_merge(&gb);
        // Enumerate all interleavings by bitmask.
        for mask in 0u32..256 {
            let mut ai = 0usize;
            let mut bi = 0usize;
            let mut seq = Vec::new();
            for bit in 0..8 {
                if (mask >> bit) & 1 == 0 {
                    if ai < a.len() {
                        seq.push(a[ai]);
                        ai += 1;
                    }
                } else if bi < b.len() {
                    seq.push(b[bi]);
                    bi += 1;
                }
            }
            for k in 1..=seq.len().min(8) {
                for w in seq.windows(k) {
                    let sum: u64 = w.iter().sum();
                    assert!(
                        sum <= merged.value(k).get(),
                        "interleaving {mask:08b}: window of {k} = {sum} exceeds {}",
                        merged.value(k).get()
                    );
                }
            }
        }
    }

    #[test]
    fn or_merge_lower_is_below_both() {
        let a = LowerWorkloadCurve::new(vec![3, 6, 9]).unwrap();
        let b = LowerWorkloadCurve::new(vec![1, 5, 9]).unwrap();
        let m = a.or_merge(&b);
        // γˡ_∨(k) ≤ min(γˡ₁(k), γˡ₂(k)) — taking all events from one source
        // is one admissible split.
        for k in 1..=6usize {
            assert!(m.value(k) <= a.value(k).min(b.value(k)));
        }
        // And the mixed split binds: γˡ_∨(2) = γˡa(1)+γˡb(0)… = min incl. 3+1.
        assert_eq!(m.value(2), Cycles(4));
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        let g = UpperWorkloadCurve::new((1..=20).map(|k| 3 * k).collect()).unwrap();
        let s = g.to_string();
        assert!(s.starts_with("γᵘ[k≤20]:"));
        assert!(s.ends_with('…'));
        let l = LowerWorkloadCurve::new(vec![1, 2]).unwrap();
        assert_eq!(l.to_string(), "γˡ[k≤2]: 1 2");
    }

    #[test]
    fn strided_trace_curve_stays_sound() {
        let t = alternating_trace(40);
        let exact = UpperWorkloadCurve::from_trace(&t, 30, WindowMode::Exact).unwrap();
        let strided = UpperWorkloadCurve::from_trace(
            &t,
            30,
            WindowMode::Strided {
                exact_upto: 5,
                stride: 8,
            },
        )
        .unwrap();
        for k in 1..=30 {
            assert!(strided.value(k) >= exact.value(k), "k={k}");
        }
    }
}
