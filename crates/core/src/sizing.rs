//! Resource sizing under buffer constraints — eqs. 8–10 of the paper.
//!
//! Setting of the MPEG-2 case study (Sec. 3.2): a stream with measured
//! event-based arrival curve `ᾱ(Δ)` enters a FIFO of capacity `b` events in
//! front of a fully dedicated processing element. The PE's cycle-based
//! service curve is `β(Δ) = F·Δ`. The buffer never overflows iff
//!
//! > `β(Δ) ≥ γᵘ( ᾱ(Δ) − b )` for all `Δ ≥ 0`  (eq. 8)
//!
//! which yields the minimum admissible clock frequency
//!
//! > `F^γ_min = max_{Δ > 0} γᵘ( ᾱ(Δ) − b ) / Δ`  (eq. 9)
//!
//! and, with the WCET-only characterization `γᵘ_w(k) = w·k`, the pessimistic
//! baseline
//!
//! > `F^w_min = max_{Δ > 0} w·( ᾱ(Δ) − b ) / Δ`  (eq. 10).
//!
//! The paper reports `F^γ_min ≈ 340 MHz` vs `F^w_min ≈ 710 MHz` for the
//! MPEG-2 decoder — over 50 % savings from the workload-curve conversion.

use crate::convert;
use crate::curve::{LowerWorkloadCurve, UpperWorkloadCurve};
use crate::WorkloadError;
use wcm_curves::{Pwl, StepCurve};
use wcm_events::Cycles;

/// Checks the no-overflow constraint of eq. 8:
/// `β(Δ) ≥ γᵘ(ᾱ(Δ) − b)` for all `Δ ≥ 0`.
///
/// Exact on the staircase steps (between steps the demand is constant while
/// `β` is non-decreasing), with a long-run rate check for the tail.
#[must_use]
pub fn service_satisfies_buffer(
    beta_cycles: &Pwl,
    alpha_events: &StepCurve,
    gamma_u: &UpperWorkloadCurve,
    buffer: u64,
) -> bool {
    // The demand side is a staircase (constant between arrival steps), so
    // the constraint is tightest at each step's Δ; a non-affine β (e.g.
    // rate-latency or TDMA) must additionally be checked where *it* bends,
    // against the demand level active there.
    let mut deltas: Vec<f64> = alpha_events.steps().iter().map(|&(d, _)| d).collect();
    deltas.extend(beta_cycles.breakpoint_xs());
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    for &delta in &deltas {
        let n = alpha_events.value(delta);
        if n <= buffer {
            continue;
        }
        let need = gamma_u.value((n - buffer) as usize).get() as f64;
        if beta_cycles.value(delta) < need - 1e-9 * (1.0 + need) {
            return false;
        }
    }
    // Tail: demand grows at tail_rate events/s × γᵘ cycles/event.
    let demand_rate = alpha_events.tail_rate() * gamma_u.tail_cycles_per_event();
    beta_cycles.ultimate_rate() >= demand_rate * (1.0 - 1e-9)
}

/// Minimum clock frequency by eq. 9 (workload-curve conversion), in Hz
/// (cycles per second).
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] if the instantaneous burst
/// `ᾱ(0)` already exceeds the buffer — no finite frequency avoids
/// overflow then.
///
/// # Example
///
/// ```
/// use wcm_core::{sizing, UpperWorkloadCurve};
/// use wcm_curves::StepCurve;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alpha = StepCurve::new(vec![(0.0, 2), (1.0, 4), (2.0, 6)], 3.0, 2.0)?;
/// let gamma = UpperWorkloadCurve::new(vec![10, 12, 22, 24, 34, 36])?;
/// let f = sizing::min_frequency_workload(&alpha, &gamma, 2)?;
/// // Binding window: Δ=1 needs γᵘ(2)=12 cycles ⇒ 12 Hz.
/// assert!((f - 12.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn min_frequency_workload(
    alpha_events: &StepCurve,
    gamma_u: &UpperWorkloadCurve,
    buffer: u64,
) -> Result<f64, WorkloadError> {
    min_frequency_by(alpha_events, buffer, |k| gamma_u.value(k).get() as f64,
        gamma_u.tail_cycles_per_event())
}

/// Minimum clock frequency by eq. 10 (WCET-only conversion `w·k`), in Hz.
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] under the same burst condition as
/// [`min_frequency_workload`].
pub fn min_frequency_wcet(
    alpha_events: &StepCurve,
    wcet: Cycles,
    buffer: u64,
) -> Result<f64, WorkloadError> {
    let w = wcet.get() as f64;
    min_frequency_by(alpha_events, buffer, |k| w * k as f64, w)
}

fn min_frequency_by(
    alpha_events: &StepCurve,
    buffer: u64,
    demand: impl Fn(usize) -> f64,
    tail_cycles_per_event: f64,
) -> Result<f64, WorkloadError> {
    let mut best = 0.0_f64;
    for &(delta, n) in alpha_events.steps() {
        if n <= buffer {
            continue;
        }
        let need = demand((n - buffer) as usize);
        if delta <= 0.0 {
            if need > 0.0 {
                return Err(WorkloadError::Infeasible {
                    reason: "instantaneous burst exceeds the buffer",
                });
            }
            continue;
        }
        best = best.max(need / delta);
    }
    // Long-run requirement: the PE must keep up with the sustained rate.
    best = best.max(alpha_events.tail_rate() * tail_cycles_per_event);
    Ok(best)
}

/// Certifies that a FIFO of `buffer` events **must** overflow when the PE
/// runs at `frequency` — the dual of [`service_satisfies_buffer`], used to
/// prune provably-infeasible design points without simulating them.
///
/// `min_spans` holds `(k, d(k))` pairs where `d(k)` is the **exact**
/// minimal span of `k` consecutive FIFO arrivals — any subset of window
/// sizes is sound (skipping a `k` can only weaken the certificate), but an
/// under-approximated span would claim overflow where none exists, so
/// strided gap-fills must never be passed (use [`WindowMode::grid`] to
/// select the exactly-computed entries).
///
/// `gamma_l` may itself be a strided under-approximation: a too-small
/// `γˡ(m)` only over-credits the PE with completions, weakening — never
/// falsifying — the certificate. Within a window of `k` arrivals the PE
/// completes at most `m* = max { m : γˡ(m) ≤ F·d(k) + γᵘ(1) }` events:
/// `m` consecutive completions demand at least `γˡ(m)` cycles, minus at
/// most one macroblock's worth (`γᵘ(1)`) already in service at the window
/// start. If `k − m* > buffer` for any `k`, the occupancy provably exceeds
/// the capacity, so every overflow policy records a violation
/// (backpressure stalls, the others drop).
///
/// [`WindowMode::grid`]: wcm_events::window::WindowMode::grid
#[must_use]
pub fn provably_overflows(
    min_spans: &[(u64, f64)],
    gamma_l: &LowerWorkloadCurve,
    gamma_u_1: Cycles,
    frequency: f64,
    buffer: u64,
) -> bool {
    if !(frequency.is_finite() && frequency >= 0.0) {
        return false; // fail closed: no certificate for nonsense inputs
    }
    let lows = gamma_l.values();
    for &(k, d) in min_spans {
        if k <= buffer || !d.is_finite() || d < 0.0 {
            continue;
        }
        // Cycle budget with a small *over*-approximation margin so float
        // rounding can only weaken the certificate, never fabricate one.
        let budget = frequency * d * (1.0 + 1e-9) + gamma_u_1.get() as f64;
        // `lows` is non-decreasing: binary search the largest m with
        // γˡ(m) ≤ budget. If even γˡ(k_max) fits, departures are unbounded
        // by this certificate — skip.
        let fits = lows.partition_point(|&v| v as f64 <= budget);
        if fits == lows.len() {
            continue;
        }
        if k.saturating_sub(fits as u64) > buffer {
            return true;
        }
    }
    false
}

/// Batched [`provably_overflows`]: evaluates a contiguous run of
/// `frequencies` against one shared certificate (`min_spans`, `gamma_l`)
/// in a single pass, writing one verdict per frequency into `out`.
///
/// Produces **bit-identical** verdicts to calling [`provably_overflows`]
/// per frequency — the cycle-budget expression is kept in the exact same
/// association (`frequency * d * (1.0 + 1e-9) + credit`), and the
/// per-frequency binary search is replaced by the equivalent comparison
/// against the one demand value that decides the span: for a span `(k, d)`
/// with `q = k − buffer`, the scalar path triggers iff fewer than
/// `min(q, len)` entries of `γˡ` fit the budget, i.e. iff
/// `budget < γˡ(min(q, len))`. Hoisting `k`/`d`/that threshold out of the
/// frequency loop leaves a branch-free multiply–add–compare inner loop
/// over the frequency run, amenable to autovectorization — this is the
/// kernel the sweep's analytic pre-pass spends its time in.
///
/// # Panics
///
/// Panics if `out.len() != frequencies.len()`.
pub fn provably_overflows_batch(
    min_spans: &[(u64, f64)],
    gamma_l: &LowerWorkloadCurve,
    gamma_u_1: Cycles,
    frequencies: &[f64],
    buffer: u64,
    out: &mut [bool],
) {
    assert_eq!(
        out.len(),
        frequencies.len(),
        "one output slot per frequency"
    );
    out.fill(false);
    let lows = gamma_l.values();
    if lows.is_empty() {
        return; // every binary search would end at len: no certificate
    }
    let credit = gamma_u_1.get() as f64;
    for &(k, d) in min_spans {
        if k <= buffer || !d.is_finite() || d < 0.0 {
            continue;
        }
        // k > buffer ⇒ q ≥ 1; the threshold γˡ(min(q, len)) decides the
        // span for every frequency at once.
        let q = usize::try_from(k - buffer).unwrap_or(usize::MAX);
        let v_star = lows[q.min(lows.len()) - 1] as f64;
        for (o, &frequency) in out.iter_mut().zip(frequencies) {
            // Same expression, same association as the scalar path (a
            // pre-scaled `d` would round differently). NaN/∞ budgets
            // compare false, matching the scalar fail-closed behaviour.
            *o |= frequency * d * (1.0 + 1e-9) + credit < v_star;
        }
    }
    // The scalar path fails closed on negative frequencies before any
    // span is consulted; mask them out here (NaN/∞ never set a slot).
    for (o, &frequency) in out.iter_mut().zip(frequencies) {
        *o = *o && frequency.is_finite() && frequency >= 0.0;
    }
}

/// Minimum FIFO capacity (in events) for a PE clocked at `frequency`:
/// the event-based backlog bound of eq. 7 with `β(Δ) = F·Δ`.
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] if the sustained demand exceeds
/// the PE capacity, and propagates curve errors for invalid frequencies.
pub fn min_buffer(
    alpha_events: &StepCurve,
    gamma_u: &UpperWorkloadCurve,
    frequency: f64,
) -> Result<u64, WorkloadError> {
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(WorkloadError::InvalidParameter { name: "frequency" });
    }
    let beta = Pwl::affine(0.0, frequency)?;
    convert::backlog_events(alpha_events, &beta, gamma_u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma() -> UpperWorkloadCurve {
        UpperWorkloadCurve::new(vec![10, 12, 22, 24, 34, 36]).unwrap()
    }

    fn alpha() -> StepCurve {
        // Burst of 3 at once, then one event per second.
        StepCurve::new(vec![(0.0, 3), (1.0, 4), (2.0, 5), (3.0, 6)], 4.0, 1.0).unwrap()
    }

    #[test]
    fn workload_frequency_below_wcet_frequency() {
        let a = alpha();
        let g = gamma();
        let fg = min_frequency_workload(&a, &g, 3).unwrap();
        let fw = min_frequency_wcet(&a, g.wcet(), 3).unwrap();
        assert!(fg <= fw, "γ-based {fg} must not exceed WCET-based {fw}");
        assert!(fg > 0.0);
    }

    #[test]
    fn frequencies_match_hand_computation() {
        let a = alpha();
        let g = gamma();
        // b = 3: candidates at Δ=1 (n=4): γᵘ(1)/1 = 10; Δ=2: γᵘ(2)/2 = 6;
        // Δ=3: γᵘ(3)/3 ≈ 7.33; tail: 1·6 = 6. Max = 10.
        assert!((min_frequency_workload(&a, &g, 3).unwrap() - 10.0).abs() < 1e-9);
        // WCET: Δ=1: 10; Δ=2: 20/2=10; Δ=3: 30/3=10; tail 10. Max = 10.
        assert!((min_frequency_wcet(&a, g.wcet(), 3).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_burst_exceeds_buffer() {
        let a = alpha();
        let g = gamma();
        assert!(matches!(
            min_frequency_workload(&a, &g, 2),
            Err(WorkloadError::Infeasible { .. })
        ));
        assert!(min_frequency_wcet(&a, g.wcet(), 2).is_err());
    }

    #[test]
    fn eq8_holds_at_computed_frequency() {
        let a = alpha();
        let g = gamma();
        let f = min_frequency_workload(&a, &g, 3).unwrap();
        let beta = Pwl::affine(0.0, f).unwrap();
        assert!(service_satisfies_buffer(&beta, &a, &g, 3));
        // Slightly slower fails.
        let beta_slow = Pwl::affine(0.0, f * 0.9).unwrap();
        assert!(!service_satisfies_buffer(&beta_slow, &a, &g, 3));
    }

    #[test]
    fn eq8_checks_rate_latency_service_at_its_own_breakpoints() {
        // A rate-latency β that satisfies all *step* instants but dips in
        // between (during its latency) must be rejected.
        let a = StepCurve::new(vec![(0.0, 3), (2.0, 4)], 3.0, 0.5).unwrap();
        let g = gamma();
        // Demand for b=2: γᵘ(1)=10 from Δ=0 on; γᵘ(2)=12 from Δ=2.
        // β with latency 1.5, rate 100: β(0)=0 < 10 → must fail even though
        // β(2)=50 ≥ 12 at the next arrival step.
        let beta = Pwl::from_breakpoints(vec![(0.0, 0.0, 0.0), (1.5, 0.0, 100.0)]).unwrap();
        assert!(!service_satisfies_buffer(&beta, &a, &g, 2));
        // An immediate-rate service of the same long-run rate passes.
        let ok = Pwl::from_breakpoints(vec![(0.0, 10.0, 100.0)]).unwrap();
        assert!(service_satisfies_buffer(&ok, &a, &g, 2));
    }

    #[test]
    fn bigger_buffer_never_needs_more_frequency() {
        let a = alpha();
        let g = gamma();
        let mut prev = f64::INFINITY;
        for b in 3..10 {
            let f = min_frequency_workload(&a, &g, b).unwrap();
            assert!(f <= prev + 1e-12, "b={b}");
            prev = f;
        }
    }

    #[test]
    fn min_buffer_roundtrip_with_frequency() {
        let a = alpha();
        let g = gamma();
        let f = min_frequency_workload(&a, &g, 3).unwrap();
        // At F^γ_min(b=3) the backlog bound must be at most 3.
        let b = min_buffer(&a, &g, f * (1.0 + 1e-9)).unwrap();
        assert!(b <= 3, "backlog bound {b} exceeds the buffer");
    }

    #[test]
    fn min_buffer_validates_frequency() {
        assert!(min_buffer(&alpha(), &gamma(), 0.0).is_err());
        assert!(min_buffer(&alpha(), &gamma(), f64::NAN).is_err());
    }

    #[test]
    fn overflow_certificate_fires_only_when_demand_outruns_service() {
        // 5 events arrive instantaneously (d(k) = 0 for k ≤ 5); each needs
        // exactly 10 cycles (γˡ = γᵘ = 10k). In-service credit γᵘ(1) = 10
        // lets at most one event depart ⇒ occupancy ≥ 4 > buffer 3.
        let spans: Vec<(u64, f64)> = (1..=5).map(|k| (k, 0.0)).collect();
        let gl = LowerWorkloadCurve::new(vec![10, 20, 30, 40, 50]).unwrap();
        assert!(provably_overflows(&spans, &gl, Cycles(10), 100.0, 3));
        // A buffer of 4 absorbs the burst: no certificate.
        assert!(!provably_overflows(&spans, &gl, Cycles(10), 100.0, 4));
        // Spread the arrivals out (1 s apart) and a fast PE keeps up.
        let spread: Vec<(u64, f64)> = (1..=5).map(|k| (k, (k - 1) as f64)).collect();
        assert!(!provably_overflows(&spread, &gl, Cycles(10), 100.0, 3));
        // …but a nearly stopped PE still provably overflows.
        assert!(provably_overflows(&spread, &gl, Cycles(10), 1e-6, 3));
        // Nonsense inputs fail closed.
        assert!(!provably_overflows(&spread, &gl, Cycles(10), f64::NAN, 3));
    }

    #[test]
    fn overflow_certificate_never_contradicts_safe_sizing() {
        // At (a margin above) F^γ_min the no-overflow constraint holds, so
        // the overflow certificate must not fire — on any buffer.
        let a = alpha();
        let g = gamma();
        // γˡ = γᵘ here (most adversarial pairing for the certificate) and
        // exact spans taken from the arrival staircase steps.
        let gl = LowerWorkloadCurve::new(g.values().to_vec()).unwrap();
        let spans: Vec<(u64, f64)> = [0.0, 0.0, 0.0, 1.0, 2.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u64 + 1, d))
            .collect();
        for b in 3..8 {
            let f = min_frequency_workload(&a, &g, b).unwrap();
            assert!(
                !provably_overflows(&spans, &gl, g.value(1), f * (1.0 + 1e-6), b),
                "certificate contradicts eq. 9 at b={b}"
            );
        }
    }

    #[test]
    fn batch_certificate_matches_scalar_bit_for_bit() {
        // Deterministic pseudo-random fixtures (splitmix-style) spanning
        // triggering, non-triggering, degenerate and fail-closed inputs.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for case in 0..50 {
            let n_low = 1 + (next() % 12) as usize;
            let mut lows = Vec::with_capacity(n_low);
            let mut acc = 0u64;
            for _ in 0..n_low {
                acc += 1 + next() % 40;
                lows.push(acc);
            }
            let gl = LowerWorkloadCurve::new(lows).unwrap();
            let spans: Vec<(u64, f64)> = (0..(1 + next() % 10))
                .map(|_| {
                    let k = next() % 16;
                    let d = match next() % 8 {
                        0 => f64::NAN,
                        1 => -1.0,
                        _ => (next() % 1000) as f64 / 250.0,
                    };
                    (k, d)
                })
                .collect();
            let mut freqs: Vec<f64> = (0..17)
                .map(|_| (next() % 4_000) as f64 / 10.0)
                .collect();
            freqs.extend([0.0, -5.0, f64::NAN, f64::INFINITY]);
            let buffer = next() % 8;
            let g1 = Cycles(next() % 60);
            let mut batch = vec![false; freqs.len()];
            provably_overflows_batch(&spans, &gl, g1, &freqs, buffer, &mut batch);
            for (i, &f) in freqs.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    provably_overflows(&spans, &gl, g1, f, buffer),
                    "case {case}: divergence at freq index {i} ({f})"
                );
            }
        }
    }

    #[test]
    fn faster_pe_needs_less_buffer() {
        let a = alpha();
        let g = gamma();
        let b_slow = min_buffer(&a, &g, 12.0).unwrap();
        let b_fast = min_buffer(&a, &g, 120.0).unwrap();
        assert!(b_fast <= b_slow);
    }
}
