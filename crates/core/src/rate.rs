//! Rate analysis of processed streams (extension).
//!
//! The companion question to the paper's buffer sizing (studied by the
//! same group in "Rate Analysis for Streaming Applications with On-chip
//! Buffer Constraints", ASP-DAC 2004): once a stream has crossed a PE,
//! *how bursty is its output*, and how long can an event be delayed inside
//! the PE? Both answers compose the workload curves with Network-Calculus
//! operators:
//!
//! * the guaranteed *event* service of the PE is `β̄ = γᵘ⁻¹ ∘ β` (eq. 7's
//!   conversion);
//! * the output event-arrival curve is `ᾱ′ = ᾱ ⊘ β̄`;
//! * the per-event delay bound is the horizontal deviation between the
//!   cycle-domain demand `γᵘ ∘ ᾱ` and `β`.

use crate::convert;
use crate::curve::UpperWorkloadCurve;
use crate::WorkloadError;
use wcm_curves::{bounds, minplus, Pwl, StepCurve};

/// Upper arrival curve (in events) of the stream *leaving* a PE with
/// cycle service `β` and per-event demand bounded by `γᵘ`.
///
/// `max_events` bounds the staircase resolution of the intermediate event
/// service curve (use at least the largest window of interest).
///
/// # Errors
///
/// Returns [`WorkloadError::Infeasible`] if the service saturates below
/// the demand, or propagates [`WorkloadError::Curve`] if the long-run
/// input rate exceeds the service rate (the output curve diverges).
///
/// # Example
///
/// ```
/// use wcm_core::{rate, UpperWorkloadCurve};
/// use wcm_curves::{Pwl, StepCurve};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alpha = StepCurve::new(vec![(0.0, 4), (1.0, 5), (2.0, 6)], 3.0, 1.0)?;
/// let gamma = UpperWorkloadCurve::new(vec![10, 18, 26, 34, 42, 50])?;
/// let beta = Pwl::affine(0.0, 40.0)?; // 40 cycles/s
/// let out = rate::output_event_arrival(&alpha, &beta, &gamma, 64)?;
/// // The output can never be burstier than what the service lets through.
/// assert!(out.value(1.0) <= 12.0);
/// # Ok(())
/// # }
/// ```
pub fn output_event_arrival(
    alpha_events: &StepCurve,
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
    max_events: usize,
) -> Result<Pwl, WorkloadError> {
    let alpha = alpha_events.to_pwl_upper();
    let beta_events = event_service_pwl(beta_cycles, gamma_u, max_events)?;
    Ok(minplus::deconvolve(&alpha, &beta_events)?)
}

/// The event-based service `β̄ = γᵘ⁻¹ ∘ β` as a [`Pwl`]: the exact
/// staircase up to `max_events`, then a *sound* affine tail.
///
/// Beyond the staircase, `γᵘ(k) ≤ (k/K + 1)·γᵘ(K)` (sub-additive
/// extension) gives `γᵘ⁻¹(e) ≥ e/c − K` with `c` the tail cycles per event
/// and `K = γᵘ`'s stored range — an affine lower bound with slope
/// `rate(β)/c`. The curve stays flat at `max_events` until that line
/// catches up, then follows it.
///
/// # Errors
///
/// Same conditions as [`convert::event_service`].
pub fn event_service_pwl(
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
    max_events: usize,
) -> Result<Pwl, WorkloadError> {
    let staircase = convert::event_service(beta_cycles, gamma_u, max_events)?;
    let mut pwl = staircase.to_pwl_lower();
    let per_event = gamma_u.tail_cycles_per_event();
    let rate = beta_cycles.ultimate_rate();
    if per_event <= 0.0 || rate <= 0.0 {
        return Ok(pwl);
    }
    let slope = rate / per_event;
    // The affine lower bound reaches `max_events` at Δ*.
    let k_stored = gamma_u.k_max() as f64;
    let delta_star =
        (max_events as f64 + k_stored) * per_event / rate + beta_cycles.tail_start();
    let last = staircase.horizon().max(pwl.tail_start());
    let attach = delta_star.max(last + 1e-9);
    // Flat until the attach point, then grow at the sustained event rate.
    let mut segs: Vec<wcm_curves::Segment> = pwl
        .segments().to_vec();
    segs.push(wcm_curves::Segment::new(
        attach,
        max_events as f64,
        slope,
    ));
    pwl = Pwl::from_breakpoints(
        segs.into_iter().map(|s| (s.x, s.y, s.slope)).collect(),
    )?;
    Ok(pwl)
}

/// Worst-case time an event spends in the PE's input queue plus service —
/// the horizontal deviation between the cycle demand `γᵘ(ᾱ(Δ))` and the
/// cycle service `β(Δ)` (FIFO processing).
///
/// # Errors
///
/// Propagates [`WorkloadError::Curve`] if the demand outgrows the service.
pub fn processing_delay(
    alpha_events: &StepCurve,
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
) -> Result<f64, WorkloadError> {
    let demand = convert::demand_arrival(alpha_events, gamma_u)?.to_pwl_upper();
    Ok(bounds::delay(&demand, beta_cycles)?)
}

/// Minimum long-run output rate of the processed stream in events per
/// second: the PE can sustain `β`-rate cycles, each event consuming at
/// most `γᵘ`-tail cycles, capped by the input's own long-run rate.
#[must_use]
pub fn sustained_output_rate(
    alpha_events: &StepCurve,
    beta_cycles: &Pwl,
    gamma_u: &UpperWorkloadCurve,
) -> f64 {
    let service_rate = beta_cycles.ultimate_rate() / gamma_u.tail_cycles_per_event();
    service_rate.min(alpha_events.tail_rate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_curves::service::FullCapacity;

    fn gamma() -> UpperWorkloadCurve {
        UpperWorkloadCurve::new(vec![10, 18, 26, 34, 42, 50]).unwrap()
    }

    fn alpha() -> StepCurve {
        StepCurve::new(vec![(0.0, 4), (1.0, 5), (2.0, 6), (3.0, 7)], 4.0, 1.0).unwrap()
    }

    #[test]
    fn output_is_never_burstier_than_input_long_run() {
        let beta = FullCapacity::new(50.0).unwrap().to_pwl();
        let out = output_event_arrival(&alpha(), &beta, &gamma(), 64).unwrap();
        // Long-run rates match the input (the PE is fast enough).
        assert!((out.ultimate_rate() - 1.0).abs() < 0.2);
    }

    #[test]
    fn smaller_service_gives_more_pessimistic_output_bound() {
        // α ⊘ β grows as β shrinks: a slower PE adds delay jitter, so the
        // guaranteed bound on its output must widen.
        let fast = FullCapacity::new(200.0).unwrap().to_pwl();
        let slow = FullCapacity::new(12.0).unwrap().to_pwl();
        let out_fast = output_event_arrival(&alpha(), &fast, &gamma(), 64).unwrap();
        let out_slow = output_event_arrival(&alpha(), &slow, &gamma(), 64).unwrap();
        for i in 0..40 {
            let d = i as f64 * 0.25;
            assert!(
                out_slow.value(d) + 1e-9 >= out_fast.value(d),
                "slow bound below fast bound at Δ={d}"
            );
        }
    }

    #[test]
    fn overloaded_pe_rejected() {
        // Service slower than the sustained demand (1 event/s × 8 c/event).
        let beta = FullCapacity::new(2.0).unwrap().to_pwl();
        assert!(output_event_arrival(&alpha(), &beta, &gamma(), 64).is_err());
    }

    #[test]
    fn processing_delay_shrinks_with_speed() {
        let slow = FullCapacity::new(15.0).unwrap().to_pwl();
        let fast = FullCapacity::new(150.0).unwrap().to_pwl();
        let d_slow = processing_delay(&alpha(), &slow, &gamma()).unwrap();
        let d_fast = processing_delay(&alpha(), &fast, &gamma()).unwrap();
        assert!(d_fast < d_slow);
        assert!(d_fast >= 0.0);
    }

    #[test]
    fn processing_delay_hand_value() {
        // Demand: γᵘ(4) = 34 cycles at Δ=0; service 17 c/s ⇒ the burst
        // alone takes 2 s to clear.
        let beta = FullCapacity::new(17.0).unwrap().to_pwl();
        let d = processing_delay(&alpha(), &beta, &gamma()).unwrap();
        assert!(d >= 2.0 - 1e-9, "delay {d} below burst drain time");
    }

    #[test]
    fn sustained_rate_is_min_of_input_and_capacity() {
        let gamma = gamma(); // tail ≈ 8.33 cycles/event
        // Capacity-limited: 25 c/s / 8.33 = 3 events/s > input 1.0 → input.
        let beta = FullCapacity::new(25.0).unwrap().to_pwl();
        let r = sustained_output_rate(&alpha(), &beta, &gamma);
        assert!((r - 1.0).abs() < 1e-9);
        // Service-limited.
        let beta_slow = FullCapacity::new(4.0).unwrap().to_pwl();
        let r2 = sustained_output_rate(&alpha(), &beta_slow, &gamma);
        assert!(r2 < 0.5);
    }
}
