//! Online envelope monitoring against workload curves.
//!
//! The offline checkers in [`crate::verify`] answer "did this finished
//! trace respect `γᵘ/γˡ`?" after the fact. The [`EnvelopeMonitor`] answers
//! it *while the trace happens*: it consumes one demand value per event and
//! slides every window size `k = 1..=k_max` against the bounds, so a
//! violation is reported at the exact event that causes it — with the
//! window offset, the window size, the observed demand and the violated
//! bound. This is the runtime side of the paper's hard-bound claim: curves
//! built from clean traces must never be violated by those traces, and an
//! injected overload must be flagged the moment a window exceeds `γᵘ(k)`.
//!
//! The monitor keeps the last `k_max + 1` cumulative sums in a ring, so
//! each event costs `O(k_max)` comparisons and memory stays constant
//! regardless of trace length.
//!
//! For hot loops (e.g. a design-space sweep simulating thousands of
//! points) [`EnvelopeMonitor::with_fast_scan`] drops the per-`k` slack
//! statistics and adds an **O(1) early-exit on the dominant window**: at
//! construction the monitor fits a linear minorant `B + r·k ≤ γᵘ(k)` (with
//! exact rational arithmetic — `r` is the chord slope of the bound table)
//! and maintains a sliding-window minimum of `cum_j − r·j` over the
//! retained ring slots. A violation at any depth `k` needs
//! `total > cum_{e−k} + γᵘ(k)`, so whenever
//! `total ≤ B + r·e + min_j (cum_j − r·j)` **no** window ending at the
//! current event can break the upper bound and the whole scan is skipped;
//! dually a linear majorant of `γˡ` and a sliding maximum certify the lower
//! side. The certificate is exact integer arithmetic, so it never misses a
//! violation: when it cannot vouch for an event the monitor falls back to
//! the full scan for that event. On traces with real slack against the
//! envelope — the common case when curves carry engineering margin — the
//! per-event cost collapses from `O(k_max)` to amortized `O(1)`; on
//! adversarially tight traces it degrades to the exact scan. Violation
//! counts and the stored [`Violation`]s are bit-identical to the exact
//! scan in every case.
//!
//! # Example
//!
//! ```
//! use wcm_core::monitor::EnvelopeMonitor;
//! use wcm_core::UpperWorkloadCurve;
//!
//! # fn main() -> Result<(), wcm_core::WorkloadError> {
//! // At most one expensive event (10) per 2 consecutive events.
//! let gamma = UpperWorkloadCurve::new(vec![10, 12])?;
//! let mut mon = EnvelopeMonitor::upper_only(&gamma, 2)?;
//! mon.observe_all([10, 2, 10]);
//! assert!(mon.is_clean());
//! mon.observe(10); // the pair 10,10 breaks γᵘ(2) = 12
//! assert_eq!(mon.total_violations(), 1);
//! let v = &mon.violations()[0];
//! assert_eq!((v.offset, v.k, v.observed, v.bound), (3, 2, 20, 12));
//! # Ok(())
//! # }
//! ```

use crate::curve::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use crate::WorkloadError;
use std::collections::VecDeque;

/// Which bound a window broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// The window exceeded `γᵘ(k)`.
    Upper,
    /// The window fell below `γˡ(k)`.
    Lower,
}

/// One violated window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// 1-indexed position of the first event of the window.
    pub offset: u64,
    /// Window size.
    pub k: usize,
    /// Observed demand of the window, in cycles.
    pub observed: u128,
    /// The violated bound value `γᵘ(k)` or `γˡ(k)`.
    pub bound: u64,
    /// Which side was broken.
    pub kind: BoundKind,
}

impl Violation {
    /// Signed slack of the window: negative by construction
    /// (`bound − observed` for upper, `observed − bound` for lower).
    #[must_use]
    pub fn slack(&self) -> i128 {
        match self.kind {
            BoundKind::Upper => i128::from(self.bound) - self.observed as i128,
            BoundKind::Lower => self.observed as i128 - i128::from(self.bound),
        }
    }
}

/// Snapshot of a monitoring run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport {
    /// Events observed.
    pub events: u64,
    /// Windows checked (each event closes up to `k_max` windows per bound).
    pub windows_checked: u64,
    /// Total violations, including those beyond the stored cap.
    pub total_violations: u64,
    /// The first violations in stream order (capped; see
    /// [`EnvelopeMonitor::VIOLATION_CAP`]).
    pub violations: Vec<Violation>,
    /// Per-`k` minimum upper slack `min_j (γᵘ(k) − demand(j, k))`;
    /// `upper_slack[k−1]`, `None` until a window of size `k` completed or
    /// when no upper curve is installed. Negative ⇔ violated.
    pub upper_slack: Vec<Option<i128>>,
    /// Per-`k` minimum lower slack `min_j (demand(j, k) − γˡ(k))`.
    pub lower_slack: Vec<Option<i128>>,
}

impl MonitorReport {
    /// The tightest upper slack over all window sizes, if any window closed.
    #[must_use]
    pub fn min_upper_slack(&self) -> Option<i128> {
        self.upper_slack.iter().flatten().min().copied()
    }

    /// The tightest lower slack over all window sizes.
    #[must_use]
    pub fn min_lower_slack(&self) -> Option<i128> {
        self.lower_slack.iter().flatten().min().copied()
    }

    /// Whether the whole run stayed within the envelope.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

/// One side of the fast-scan certificate: a linear bound on the curve
/// (minorant of `γᵘ`, majorant of `γˡ`) with slope `r_num / r_den` and a
/// monotone deque tracking the sliding extremum of
/// `cum_j · r_den − r_num · j` over the retained ring slots. All quantities
/// are scaled by `r_den` so the arithmetic stays exact.
#[derive(Debug, Clone)]
struct LinCert {
    /// Slope numerator (denominator is the monitor-wide `r_den`).
    r_num: i128,
    /// Scaled intercept: extremum over `a ∈ [1, k_max]` of
    /// `γ(a) · r_den − r_num · a`.
    b_scaled: i128,
    /// `(j, key)` pairs, keys monotone from the front (front = extremum).
    deque: VecDeque<(u64, i128)>,
}

impl LinCert {
    /// Slides the deque: admits slot `j` with key `key`, evicts slots older
    /// than `min_j`. `min_front` selects the discipline (true = sliding
    /// minimum, false = sliding maximum).
    fn slide(&mut self, j: u64, key: i128, min_j: u64, min_front: bool) {
        while self
            .deque
            .back()
            .is_some_and(|&(_, k)| if min_front { k >= key } else { k <= key })
        {
            self.deque.pop_back();
        }
        self.deque.push_back((j, key));
        while self.deque.front().is_some_and(|&(jf, _)| jf < min_j) {
            self.deque.pop_front();
        }
    }
}

/// Streaming checker of demand windows against `γᵘ(k)` / `γˡ(k)`.
#[derive(Debug, Clone)]
pub struct EnvelopeMonitor {
    upper: Option<UpperWorkloadCurve>,
    lower: Option<LowerWorkloadCurve>,
    k_max: usize,
    /// `γᵘ(k)` for `k = 1..=k_max`, materialized once so the per-event loop
    /// reads a flat table instead of re-running curve extrapolation.
    upper_bounds: Vec<u64>,
    /// `γˡ(k)` for `k = 1..=k_max`.
    lower_bounds: Vec<u64>,
    fast: bool,
    /// Shared slope denominator of both certificates: `k_max − 1`.
    r_den: i128,
    cert_upper: Option<LinCert>,
    cert_lower: Option<LinCert>,
    /// Ring of cumulative demand sums; front is the sum before the oldest
    /// retained event, back the sum after the newest. Holds at most
    /// `k_max + 1` entries, so `sum(window of k ending now) = back − ...`.
    cum: VecDeque<u128>,
    events: u64,
    windows_checked: u64,
    total_violations: u64,
    violations: Vec<Violation>,
    upper_slack: Vec<Option<i128>>,
    lower_slack: Vec<Option<i128>>,
}

impl EnvelopeMonitor {
    /// At most this many violations are stored verbatim; counting continues
    /// beyond it ([`MonitorReport::total_violations`] is exact).
    pub const VIOLATION_CAP: usize = 64;

    /// A monitor checking both bounds of `bounds` for windows up to
    /// `k_max` (curve extrapolation covers `k` beyond the stored range).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0.
    pub fn new(bounds: &WorkloadBounds, k_max: usize) -> Result<Self, WorkloadError> {
        Self::build(Some(bounds.upper.clone()), Some(bounds.lower.clone()), k_max)
    }

    /// A monitor checking only the upper curve.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0.
    pub fn upper_only(gamma: &UpperWorkloadCurve, k_max: usize) -> Result<Self, WorkloadError> {
        Self::build(Some(gamma.clone()), None, k_max)
    }

    /// A monitor checking only the lower curve.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0.
    pub fn lower_only(gamma: &LowerWorkloadCurve, k_max: usize) -> Result<Self, WorkloadError> {
        Self::build(None, Some(gamma.clone()), k_max)
    }

    fn build(
        upper: Option<UpperWorkloadCurve>,
        lower: Option<LowerWorkloadCurve>,
        k_max: usize,
    ) -> Result<Self, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        let mut cum = VecDeque::with_capacity(k_max + 1);
        cum.push_back(0u128);
        let upper_bounds = upper
            .as_ref()
            .map(|u| (1..=k_max).map(|k| u.value(k).get()).collect())
            .unwrap_or_default();
        let lower_bounds = lower
            .as_ref()
            .map(|l| (1..=k_max).map(|k| l.value(k).get()).collect())
            .unwrap_or_default();
        Ok(Self {
            upper,
            lower,
            k_max,
            upper_bounds,
            lower_bounds,
            fast: false,
            r_den: k_max as i128 - 1,
            cert_upper: None,
            cert_lower: None,
            cum,
            events: 0,
            windows_checked: 0,
            total_violations: 0,
            violations: Vec::new(),
            upper_slack: vec![None; k_max],
            lower_slack: vec![None; k_max],
        })
    }

    /// Largest window size checked.
    #[must_use]
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// Switches the per-event scan between the exact mode (default: every
    /// window checked, per-`k` slack statistics maintained) and the fast
    /// mode (O(1) dominant-window certificate with a full-scan fallback,
    /// no slack statistics).
    ///
    /// Violation counts and stored [`Violation`]s are identical in both
    /// modes; [`MonitorReport::windows_checked`] counts the comparisons
    /// actually performed, so it is smaller in fast mode, and the slack
    /// fields stay `None` for events observed while fast.
    #[must_use]
    pub fn with_fast_scan(mut self, fast: bool) -> Self {
        self.fast = fast;
        self.reseed_certs();
        self
    }

    /// Rebuilds the fast-scan certificates against the current bound
    /// tables and replays the retained ring into their deques, so both a
    /// mid-stream fast-scan toggle and a mid-stream [`Self::rebind`] stay
    /// sound.
    fn reseed_certs(&mut self) {
        self.cert_upper = None;
        self.cert_lower = None;
        if self.fast && self.k_max >= 2 {
            self.cert_upper = Self::make_cert(&self.upper_bounds, self.r_den, true);
            self.cert_lower = Self::make_cert(&self.lower_bounds, self.r_den, false);
            // Seed the deques from the retained ring: cum[i] is the
            // cumulative sum after event `events − (len − 1) + i`.
            let len = self.cum.len();
            let deepest = self.k_max.min(len - 1) as u64;
            for i in 0..len.saturating_sub(1) {
                let j = self.events - (len as u64 - 1) + i as u64;
                let cum_j = self.cum[i];
                let min_j = self.events.saturating_sub(deepest);
                if let Some(c) = &mut self.cert_upper {
                    if let Some(key) = scaled_key(cum_j, self.r_den, c.r_num, j) {
                        c.slide(j, key, min_j, true);
                    } else {
                        self.cert_upper = None;
                    }
                }
                if let Some(c) = &mut self.cert_lower {
                    if let Some(key) = scaled_key(cum_j, self.r_den, c.r_num, j) {
                        c.slide(j, key, min_j, false);
                    } else {
                        self.cert_lower = None;
                    }
                }
            }
        }
    }

    /// Swaps in refreshed bound curves **without discarding the
    /// observation window**: the ring of retained cumulative sums, event
    /// and violation counters all survive, so the windows closing after
    /// the rebind are still checked against `k_max` events of history.
    ///
    /// This is the online half of the incremental-bounds story: a
    /// [`crate::build::IncrementalBounds`] refreshes its envelope in
    /// `O(k_max)` per appended reference event, and a long-running monitor
    /// adopts the tighter envelope mid-stream instead of being rebuilt
    /// from scratch. Only the sides the monitor was constructed with are
    /// replaced (an upper-only monitor stays upper-only). Fast-scan
    /// certificates are re-derived against the new tables.
    pub fn rebind(&mut self, bounds: &WorkloadBounds) {
        if self.upper.is_some() {
            self.upper_bounds = (1..=self.k_max)
                .map(|k| bounds.upper.value(k).get())
                .collect();
            self.upper = Some(bounds.upper.clone());
        }
        if self.lower.is_some() {
            self.lower_bounds = (1..=self.k_max)
                .map(|k| bounds.lower.value(k).get())
                .collect();
            self.lower = Some(bounds.lower.clone());
        }
        self.reseed_certs();
    }

    /// [`Self::rebind`] with a new window depth, for refreshes whose
    /// curve covers a different exact range than the monitor was built
    /// for (a spine refresh after a shorter GOP shrinks `k_max`; a
    /// longer clip grows it).
    ///
    /// Everything that is indexed by `k` is resized *before* the bound
    /// tables are rebuilt: the per-`k` slack statistics are truncated or
    /// extended, the retained ring is trimmed to `k_max + 1` entries,
    /// the certificate slope denominator follows the new depth, and the
    /// fast-scan deques are reseeded from the trimmed ring only — a
    /// shrink therefore cannot leave a certificate (or an exact scan)
    /// reading windows deeper than the new curve. Counters and stored
    /// violations survive, exactly as in [`Self::rebind`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0; the
    /// monitor is left unchanged.
    pub fn rebind_with_k_max(
        &mut self,
        bounds: &WorkloadBounds,
        k_max: usize,
    ) -> Result<(), WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        if k_max != self.k_max {
            self.upper_slack.resize(k_max, None);
            self.lower_slack.resize(k_max, None);
            while self.cum.len() > k_max + 1 {
                self.cum.pop_front();
            }
            self.k_max = k_max;
            self.r_den = k_max as i128 - 1;
        }
        self.rebind(bounds);
        Ok(())
    }

    /// Fits the scaled linear bound to a bound table: the chord slope
    /// `(γ(k_max) − γ(1)) / (k_max − 1)` and the tightest intercept that
    /// keeps the line on the sound side of every `γ(a)`
    /// (below for the upper bound's minorant, above for the lower's
    /// majorant). Returns `None` when the table is absent or the exact
    /// arithmetic would overflow.
    fn make_cert(bounds: &[u64], r_den: i128, minorant: bool) -> Option<LinCert> {
        let (&first, &last) = (bounds.first()?, bounds.last()?);
        let r_num = i128::from(last).checked_sub(i128::from(first))?;
        let mut b_scaled: Option<i128> = None;
        for (idx, &g) in bounds.iter().enumerate() {
            let a = idx as i128 + 1;
            let v = i128::from(g)
                .checked_mul(r_den)?
                .checked_sub(r_num.checked_mul(a)?)?;
            b_scaled = Some(match b_scaled {
                None => v,
                Some(b) if minorant => b.min(v),
                Some(b) => b.max(v),
            });
        }
        Some(LinCert {
            r_num,
            b_scaled: b_scaled?,
            deque: VecDeque::new(),
        })
    }

    /// Whether the early-exit scan is active.
    #[must_use]
    pub fn fast_scan(&self) -> bool {
        self.fast
    }

    /// Feeds one event's demand; checks every window that this event
    /// closes. Returns how many new violations the event caused.
    pub fn observe(&mut self, demand: u64) -> usize {
        let total = self.cum.back().copied().unwrap_or(0) + u128::from(demand);
        self.cum.push_back(total);
        if self.cum.len() > self.k_max + 1 {
            self.cum.pop_front();
        }
        self.events += 1;
        if self.fast {
            self.scan_fast(total)
        } else {
            self.scan_exact(total)
        }
    }

    fn scan_exact(&mut self, total: u128) -> usize {
        let mut fresh = 0usize;
        let deepest = self.k_max.min(self.cum.len() - 1);
        for k in 1..=deepest {
            let sum = total - self.cum[self.cum.len() - 1 - k];
            // 1-indexed first event of the window ending at `events`.
            let offset = self.events - k as u64 + 1;
            if self.upper.is_some() {
                self.windows_checked += 1;
                let bound = self.upper_bounds[k - 1];
                let slack = i128::from(bound) - sum as i128;
                let entry = &mut self.upper_slack[k - 1];
                *entry = Some(entry.map_or(slack, |s| s.min(slack)));
                if sum > u128::from(bound) {
                    fresh += 1;
                    self.record(Violation {
                        offset,
                        k,
                        observed: sum,
                        bound,
                        kind: BoundKind::Upper,
                    });
                }
            }
            if self.lower.is_some() {
                self.windows_checked += 1;
                let bound = self.lower_bounds[k - 1];
                let slack = sum as i128 - i128::from(bound);
                let entry = &mut self.lower_slack[k - 1];
                *entry = Some(entry.map_or(slack, |s| s.min(slack)));
                if sum < u128::from(bound) {
                    fresh += 1;
                    self.record(Violation {
                        offset,
                        k,
                        observed: sum,
                        bound,
                        kind: BoundKind::Lower,
                    });
                }
            }
        }
        fresh
    }

    /// Fast scan: slide the certificate deques, then try to discharge each
    /// side in O(1). A side whose certificate holds is provably
    /// violation-free for every window ending at this event (see the module
    /// docs for the inequality chain); a side that cannot be discharged is
    /// scanned in full.
    fn scan_fast(&mut self, total: u128) -> usize {
        let len = self.cum.len();
        let deepest = self.k_max.min(len - 1);
        if deepest == 0 {
            return 0;
        }
        let e = self.events;
        let min_j = e.saturating_sub(deepest as u64);
        // Admit slot j = e − 1 (its cumulative sum sits just before the
        // entry pushed for the current event).
        if len >= 2 {
            let j = e - 1;
            let cum_j = self.cum[len - 2];
            if let Some(c) = &mut self.cert_upper {
                match scaled_key(cum_j, self.r_den, c.r_num, j) {
                    Some(key) => c.slide(j, key, min_j, true),
                    None => self.cert_upper = None,
                }
            }
            if let Some(c) = &mut self.cert_lower {
                match scaled_key(cum_j, self.r_den, c.r_num, j) {
                    Some(key) => c.slide(j, key, min_j, false),
                    None => self.cert_lower = None,
                }
            }
        }
        let mut need_upper = self.upper.is_some();
        let mut need_lower = self.lower.is_some();
        // No upper violation at depth k needs total ≤ cum_{e−k} + γᵘ(k);
        // with γᵘ(k)·r_den ≥ b + r·k this is implied by
        // total·r_den ≤ b + r·e + min_j (cum_j·r_den − r·j).
        if need_upper {
            if let (Some(c), Some(tk)) = (&self.cert_upper, scale_total(total, self.r_den)) {
                if let (Some(&(_, min_key)), Some(rhs)) = (
                    c.deque.front(),
                    c.r_num
                        .checked_mul(e as i128)
                        .and_then(|re| re.checked_add(c.b_scaled)),
                ) {
                    if let Some(rhs) = rhs.checked_add(min_key) {
                        if tk <= rhs {
                            need_upper = false;
                        }
                    }
                }
            }
        }
        if need_lower {
            if let (Some(c), Some(tk)) = (&self.cert_lower, scale_total(total, self.r_den)) {
                if let (Some(&(_, max_key)), Some(rhs)) = (
                    c.deque.front(),
                    c.r_num
                        .checked_mul(e as i128)
                        .and_then(|re| re.checked_add(c.b_scaled)),
                ) {
                    if let Some(rhs) = rhs.checked_add(max_key) {
                        if tk >= rhs {
                            need_lower = false;
                        }
                    }
                }
            }
        }
        if !need_upper && !need_lower {
            return 0;
        }
        let mut fresh = 0usize;
        for k in 1..=deepest {
            let sum = total - self.cum[len - 1 - k];
            let offset = e - k as u64 + 1;
            if need_upper {
                self.windows_checked += 1;
                let bound = self.upper_bounds[k - 1];
                if sum > u128::from(bound) {
                    fresh += 1;
                    self.record(Violation {
                        offset,
                        k,
                        observed: sum,
                        bound,
                        kind: BoundKind::Upper,
                    });
                }
            }
            if need_lower {
                self.windows_checked += 1;
                let bound = self.lower_bounds[k - 1];
                if sum < u128::from(bound) {
                    fresh += 1;
                    self.record(Violation {
                        offset,
                        k,
                        observed: sum,
                        bound,
                        kind: BoundKind::Lower,
                    });
                }
            }
        }
        fresh
    }

    /// Feeds a batch of demands in order; returns the new violations they
    /// caused.
    pub fn observe_all(&mut self, demands: impl IntoIterator<Item = u64>) -> usize {
        demands.into_iter().map(|d| self.observe(d)).sum()
    }

    fn record(&mut self, v: Violation) {
        self.total_violations += 1;
        wcm_obs::counter("monitor.violations", 1);
        if self.violations.len() < Self::VIOLATION_CAP {
            self.violations.push(v);
        }
    }

    /// Events observed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total violations so far (exact even beyond the stored cap).
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// The stored violations in stream order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no window has broken a bound yet.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Snapshot of the run so far.
    #[must_use]
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            events: self.events,
            windows_checked: self.windows_checked,
            total_violations: self.total_violations,
            violations: self.violations.clone(),
            upper_slack: self.upper_slack.clone(),
            lower_slack: self.lower_slack.clone(),
        }
    }
}

/// `cum_j · r_den − r_num · j`, exactly; `None` on overflow (the caller
/// then drops the certificate and keeps the always-sound full scan).
fn scaled_key(cum_j: u128, r_den: i128, r_num: i128, j: u64) -> Option<i128> {
    i128::try_from(cum_j)
        .ok()?
        .checked_mul(r_den)?
        .checked_sub(r_num.checked_mul(j as i128)?)
}

/// `total · r_den`, exactly; `None` on overflow (certificate fails closed).
fn scale_total(total: u128, r_den: i128) -> Option<i128> {
    i128::try_from(total).ok()?.checked_mul(r_den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcm_events::window::WindowMode;
    use wcm_events::{Cycles, ExecutionInterval, Trace, TypeRegistry};

    fn alternating(n: usize) -> Vec<u64> {
        (0..n).map(|i| if i % 2 == 0 { 10 } else { 2 }).collect()
    }

    fn bounds_of(demands: &[u64], k_max: usize) -> WorkloadBounds {
        let mut reg = TypeRegistry::new();
        let evs: Vec<_> = demands
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                reg.register(format!("t{i}"), ExecutionInterval::fixed(Cycles(d)))
                    .unwrap()
            })
            .collect();
        let trace = Trace::new(reg, evs);
        WorkloadBounds::from_trace(&trace, k_max, WindowMode::Exact).unwrap()
    }

    #[test]
    fn clean_on_the_trace_the_curve_was_built_from() {
        let demands = alternating(40);
        let bounds = bounds_of(&demands, 12);
        let mut mon = EnvelopeMonitor::new(&bounds, 12).unwrap();
        mon.observe_all(demands.iter().copied());
        assert!(mon.is_clean());
        let report = mon.report();
        assert_eq!(report.events, 40);
        assert!(report.min_upper_slack().unwrap() >= 0);
        assert!(report.min_lower_slack().unwrap() >= 0);
        // The curve is the max/min over windows of this very trace, so the
        // tightest window has exactly zero slack on each side.
        assert_eq!(report.min_upper_slack(), Some(0));
        assert_eq!(report.min_lower_slack(), Some(0));
    }

    #[test]
    fn rebind_keeps_the_observation_window() {
        let demands = alternating(40);
        let loose = WorkloadBounds {
            upper: UpperWorkloadCurve::wcet_line(Cycles(20), 8).unwrap(),
            lower: LowerWorkloadCurve::bcet_line(Cycles(0), 8).unwrap(),
        };
        let tight = bounds_of(&demands, 8);
        for fast in [false, true] {
            // Stream half under the loose envelope, rebind to the tight
            // one mid-stream, then finish. A fresh monitor bound tight
            // from the start must agree on every post-rebind verdict —
            // that only holds if the ring survives the rebind.
            let mut rebound = EnvelopeMonitor::new(&loose, 8).unwrap().with_fast_scan(fast);
            rebound.observe_all(demands[..20].iter().copied());
            assert!(rebound.is_clean());
            rebound.rebind(&tight);
            let mut reference = EnvelopeMonitor::new(&tight, 8).unwrap().with_fast_scan(fast);
            reference.observe_all(demands[..20].iter().copied());
            for &d in &demands[20..] {
                assert_eq!(rebound.observe(d), reference.observe(d), "fast={fast}");
            }
            assert!(rebound.is_clean());
            // And a rebind to a violated envelope fires immediately on the
            // next closing window.
            let hostile = bounds_of(&[1, 1, 1, 1, 1, 1, 1, 1], 8);
            rebound.rebind(&hostile);
            assert!(rebound.observe(10) > 0, "fast={fast}");
        }
    }

    #[test]
    fn rebind_with_k_max_survives_a_shrinking_gop() {
        // A stream that opens on 12-frame GOPs and switches to 6-frame
        // GOPs: the spine refresh after the switch hands back a curve
        // covering only k ≤ 6, so the monitor must shrink its window
        // depth mid-stream. Every post-shrink verdict has to match a
        // monitor built at k = 6 that saw the same history — stale
        // slack tables, ring entries or certificate deque slots deeper
        // than the new k_max would break the agreement (or index past
        // the rebuilt 6-entry bound tables).
        let gop12: Vec<u64> = [60, 10, 10, 30, 10, 10, 30, 10, 10, 30, 10, 10]
            .repeat(2)
            .to_vec();
        let gop6: Vec<u64> = [40, 8, 8, 20, 8, 8].repeat(4).to_vec();
        let bounds12 = bounds_of(&gop12, 12);
        let bounds6 = bounds_of(&gop6, 6);
        for fast in [false, true] {
            let mut shrunk = EnvelopeMonitor::new(&bounds12, 12)
                .unwrap()
                .with_fast_scan(fast);
            shrunk.observe_all(gop12.iter().copied());
            assert!(shrunk.is_clean(), "fast={fast}: prefix under own curve");
            shrunk.rebind_with_k_max(&bounds6, 6).unwrap();
            assert_eq!(shrunk.k_max(), 6);
            assert_eq!(shrunk.report().upper_slack.len(), 6);

            let mut reference = EnvelopeMonitor::new(&bounds6, 6)
                .unwrap()
                .with_fast_scan(fast);
            reference.observe_all(gop12.iter().copied());
            for (i, &d) in gop6.iter().enumerate() {
                assert_eq!(
                    shrunk.observe(d),
                    reference.observe(d),
                    "fast={fast}: event {i} after the shrink"
                );
            }

            // And growing back out to the original depth stays sound.
            // The shrink trimmed the ring to 6 events of history, so
            // the grown monitor must agree with a fresh k = 12 monitor
            // seeded with exactly those 6 retained events.
            shrunk.rebind_with_k_max(&bounds12, 12).unwrap();
            assert_eq!(shrunk.k_max(), 12);
            let mut wide = EnvelopeMonitor::new(&bounds12, 12)
                .unwrap()
                .with_fast_scan(fast);
            wide.observe_all(gop6[gop6.len() - 6..].iter().copied());
            for (i, &d) in gop12.iter().enumerate() {
                assert_eq!(
                    shrunk.observe(d),
                    wide.observe(d),
                    "fast={fast}: event {i} after growing back"
                );
            }
        }
        // k_max = 0 is rejected without touching the monitor.
        let mut mon = EnvelopeMonitor::new(&bounds12, 12).unwrap();
        assert!(mon.rebind_with_k_max(&bounds6, 0).is_err());
        assert_eq!(mon.k_max(), 12);
    }

    #[test]
    fn flags_upper_violation_with_exact_window() {
        let demands = alternating(20);
        let bounds = bounds_of(&demands, 8);
        let mut mon = EnvelopeMonitor::new(&bounds, 8).unwrap();
        // 10,2,10 then a hostile second 10: the closing event breaks both
        // the k=2 window (10+10 = 20 > 12) and the k=4 window
        // (10+2+10+10 = 32 > 24).
        mon.observe_all([10, 2, 10, 10]);
        assert_eq!(mon.total_violations(), 2);
        let v = mon.violations()[0];
        assert_eq!(v.kind, BoundKind::Upper);
        assert_eq!(v.k, 2);
        assert_eq!(v.offset, 3);
        assert_eq!(v.observed, 20);
        assert_eq!(v.bound, 12);
        assert_eq!(v.slack(), -8);
    }

    #[test]
    fn flags_lower_violation() {
        let demands = alternating(20);
        let bounds = bounds_of(&demands, 8);
        let mut mon = EnvelopeMonitor::new(&bounds, 8).unwrap();
        // Two consecutive cheap events: γˡ(2) = 12 but observed 4.
        mon.observe_all([10, 2, 2]);
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.kind == BoundKind::Lower && v.k == 2 && v.observed == 4));
    }

    #[test]
    fn upper_only_ignores_lower_bound() {
        let demands = alternating(20);
        let bounds = bounds_of(&demands, 8);
        let mut mon = EnvelopeMonitor::upper_only(&bounds.upper, 8).unwrap();
        mon.observe_all([2, 2, 2, 2]); // starves the lower bound
        assert!(mon.is_clean());
        assert!(mon.report().lower_slack.iter().all(Option::is_none));
    }

    #[test]
    fn streaming_matches_offline_oracle() {
        // Every window of every prefix: the monitor must agree with a
        // brute-force scan.
        let demands: Vec<u64> = [3u64, 9, 1, 7, 7, 2, 8, 1, 4, 6, 6, 2].to_vec();
        let bounds = bounds_of(&alternating(30), 6);
        let mut mon = EnvelopeMonitor::new(&bounds, 6).unwrap();
        let streamed: usize = mon.observe_all(demands.iter().copied());
        let mut oracle = 0usize;
        for end in 1..=demands.len() {
            for k in 1..=6.min(end) {
                let sum: u64 = demands[end - k..end].iter().sum();
                if sum > bounds.upper.value(k).get() {
                    oracle += 1;
                }
                if sum < bounds.lower.value(k).get() {
                    oracle += 1;
                }
            }
        }
        assert_eq!(streamed, oracle);
        assert_eq!(mon.total_violations(), oracle as u64);
    }

    #[test]
    fn violation_cap_keeps_counting() {
        let gamma = UpperWorkloadCurve::new(vec![1]).unwrap();
        let mut mon = EnvelopeMonitor::upper_only(&gamma, 1).unwrap();
        for _ in 0..200 {
            mon.observe(5);
        }
        assert_eq!(mon.total_violations(), 200);
        assert_eq!(mon.violations().len(), EnvelopeMonitor::VIOLATION_CAP);
    }

    #[test]
    fn k_beyond_stored_range_uses_extrapolation() {
        // Stored only to k=2, monitored to k=4: γᵘ(4) = 2·γᵘ(2) = 24.
        let gamma = UpperWorkloadCurve::new(vec![10, 12]).unwrap();
        let mut mon = EnvelopeMonitor::upper_only(&gamma, 4).unwrap();
        mon.observe_all([6, 6, 6, 6]); // sum 24 = bound, no violation
        assert!(mon.is_clean());
        mon.observe(7); // 6,6,6,7 = 25 > 24
        assert!(!mon.is_clean());
        assert!(mon.violations().iter().any(|v| v.k == 4 && v.bound == 24));
    }

    #[test]
    fn rejects_zero_k_max() {
        let gamma = UpperWorkloadCurve::new(vec![1]).unwrap();
        assert!(matches!(
            EnvelopeMonitor::upper_only(&gamma, 0),
            Err(WorkloadError::InvalidParameter { name: "k_max" })
        ));
    }

    #[test]
    fn fast_scan_matches_exact_violations_bitwise() {
        // Clean, violating-high and violating-low streams: the fast scan
        // must record the same violations (count, order, fields) as exact.
        let base = alternating(60);
        let streams: Vec<Vec<u64>> = vec![
            base.clone(),
            // burst of expensive events breaks γᵘ at several k
            base.iter().copied().chain([10, 10, 10, 10]).collect(),
            // run of cheap events breaks γˡ
            base.iter().copied().chain([2, 2, 2, 2, 2]).collect(),
            // mixed hostile tail
            base.iter().copied().chain([10, 10, 2, 2, 10, 10]).collect(),
        ];
        for demands in streams {
            let bounds = bounds_of(&alternating(60), 16);
            let mut exact = EnvelopeMonitor::new(&bounds, 16).unwrap();
            let mut fast = EnvelopeMonitor::new(&bounds, 16)
                .unwrap()
                .with_fast_scan(true);
            assert!(fast.fast_scan());
            let e = exact.observe_all(demands.iter().copied());
            let f = fast.observe_all(demands.iter().copied());
            assert_eq!(e, f, "fresh-violation totals differ");
            assert_eq!(exact.total_violations(), fast.total_violations());
            assert_eq!(exact.violations(), fast.violations());
            assert_eq!(exact.events(), fast.events());
        }
    }

    #[test]
    fn fast_scan_skips_windows_when_trace_has_slack() {
        // Curves from the alternating 10/2 trace; observed demands sit
        // strictly below γᵘ's linear minorant (all 4s) / above γˡ's linear
        // majorant (all 8s), so the O(1) certificate should discharge
        // almost every event.
        let bounds = bounds_of(&alternating(400), 64);
        let light = vec![4u64; 400];
        let mut exact = EnvelopeMonitor::upper_only(&bounds.upper, 64).unwrap();
        let mut fast = EnvelopeMonitor::upper_only(&bounds.upper, 64)
            .unwrap()
            .with_fast_scan(true);
        exact.observe_all(light.iter().copied());
        fast.observe_all(light.iter().copied());
        assert!(fast.is_clean());
        let (we, wf) = (
            exact.report().windows_checked,
            fast.report().windows_checked,
        );
        assert!(
            wf * 10 < we,
            "upper certificate should discharge most events: exact {we}, fast {wf}"
        );
        // Fast mode trades the slack statistics away.
        assert!(fast.report().upper_slack.iter().all(Option::is_none));

        let heavy = vec![8u64; 400];
        let mut exact = EnvelopeMonitor::lower_only(&bounds.lower, 64).unwrap();
        let mut fast = EnvelopeMonitor::lower_only(&bounds.lower, 64)
            .unwrap()
            .with_fast_scan(true);
        exact.observe_all(heavy.iter().copied());
        fast.observe_all(heavy.iter().copied());
        assert!(fast.is_clean());
        let (we, wf) = (
            exact.report().windows_checked,
            fast.report().windows_checked,
        );
        assert!(
            wf * 10 < we,
            "lower certificate should discharge most events: exact {we}, fast {wf}"
        );
    }

    #[test]
    fn fast_scan_mid_stream_toggle_stays_sound() {
        // Toggling fast mode after some events must seed the certificate
        // deques from the ring; a violation right after the toggle must
        // still be caught.
        let bounds = bounds_of(&alternating(40), 8);
        let mut mon = EnvelopeMonitor::new(&bounds, 8).unwrap();
        mon.observe_all([10, 2, 10, 2, 10]);
        assert!(mon.is_clean());
        let mut mon = mon.with_fast_scan(true);
        mon.observe_all([2, 10, 10]); // …,10,10 breaks γᵘ(2) = 12
        assert!(!mon.is_clean());
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.kind == BoundKind::Upper && v.k == 2 && v.observed == 20));
    }

    #[test]
    fn report_slack_tracks_minimum() {
        let gamma = UpperWorkloadCurve::new(vec![10]).unwrap();
        let mut mon = EnvelopeMonitor::upper_only(&gamma, 1).unwrap();
        mon.observe_all([4, 9, 2]);
        // slacks 6, 1, 8 → min 1.
        assert_eq!(mon.report().upper_slack[0], Some(1));
    }
}
