//! Analytic bounds on a *producer's* output stream (extension).
//!
//! The paper measures the macroblock arrival curve `ᾱ` at PE₁'s output by
//! simulation, noting that "it is hard to derive analytically any useful
//! constraints for a generic MPEG-2 stream". What *can* be derived
//! analytically — without knowing the stream's content — are two physical
//! throttles on any producer like PE₁:
//!
//! 1. **Processing**: emitting `k` events costs at least `γˡ_proc(k)`
//!    cycles, so any window of length `Δ` holds at most
//!    `γˡ_proc⁻¹(F·Δ) + 1` emissions (the `+1` covers an event completing
//!    exactly at the window start).
//! 2. **Input data**: each event consumes input data (compressed bits) —
//!    at least `γˡ_data(k)` units for `k` consecutive events. The channel
//!    delivers at most `R·Δ` units in the window, plus whatever the
//!    producer had buffered, so at most
//!    `γˡ_data⁻¹(R·Δ + buffered) + 1` emissions fit.
//!
//! The pointwise minimum of the two is a guaranteed upper arrival curve for
//! the producer's output — the lower workload curves (here over *cycles*
//! and over *bits*) doing the work the paper's simulator did.

use crate::curve::LowerWorkloadCurve;
use crate::WorkloadError;
use wcm_curves::StepCurve;

/// One throttle on the producer: a resource delivered at `rate` units per
/// second (plus `head_start` units available immediately), consumed at
/// least `gamma_lower(k)` units per `k` emissions.
#[derive(Debug, Clone)]
pub struct Throttle<'a> {
    /// Lower workload curve of the resource consumption per emission.
    pub gamma_lower: &'a LowerWorkloadCurve,
    /// Delivery rate of the resource (cycles/s, bits/s, …).
    pub rate: f64,
    /// Resource units the producer may have pre-buffered.
    pub head_start: f64,
}

/// Upper bound on the producer's output events in any window of length
/// `Δ`, as a staircase over `k = 1 ..= k_max`: the curve jumps to `k` at
/// the earliest `Δ` allowed by **all** throttles.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0, no
/// throttle is given, or a throttle's rate is not positive;
/// [`WorkloadError::Infeasible`] if some throttle can never deliver enough
/// resource for `k_max` events (degenerate all-zero lower curve).
///
/// # Example
///
/// ```
/// use wcm_core::{chain, LowerWorkloadCurve};
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// // Each emission costs ≥ 5 cycles; the processor runs at 10 cycles/s.
/// let proc = LowerWorkloadCurve::new(vec![5, 10, 15, 20])?;
/// let bound = chain::producer_output_bound(
///     &[chain::Throttle { gamma_lower: &proc, rate: 10.0, head_start: 0.0 }],
///     4,
/// )?;
/// // Two events need ≥ 10 cycles ⇒ ≥ 0.5 s … plus the window-edge event.
/// assert_eq!(bound.value(0.0), 1);
/// assert_eq!(bound.value(0.5), 2);
/// assert_eq!(bound.value(1.0), 3);
/// # Ok(())
/// # }
/// ```
pub fn producer_output_bound(
    throttles: &[Throttle<'_>],
    k_max: usize,
) -> Result<StepCurve, WorkloadError> {
    if k_max == 0 {
        return Err(WorkloadError::InvalidParameter { name: "k_max" });
    }
    if throttles.is_empty() {
        return Err(WorkloadError::InvalidParameter { name: "throttles" });
    }
    for t in throttles {
        if !(t.rate.is_finite() && t.rate > 0.0) {
            return Err(WorkloadError::InvalidParameter { name: "rate" });
        }
        if !(t.head_start.is_finite() && t.head_start >= 0.0) {
            return Err(WorkloadError::InvalidParameter { name: "head_start" });
        }
    }
    // Earliest window length at which k emissions are possible: every
    // throttle must have delivered γˡ(k−1) units beyond its head start
    // (k−1 because the first event of the window may complete "for free"
    // at its very start).
    let mut steps: Vec<(f64, u64)> = vec![(0.0, 1)];
    let mut last_delta = 0.0f64;
    for k in 2..=k_max {
        let mut delta: f64 = 0.0;
        for t in throttles {
            let need = t.gamma_lower.value(k - 1).get() as f64 - t.head_start;
            delta = delta.max(need / t.rate);
        }
        if delta > last_delta + 1e-12 {
            steps.push((delta, k as u64));
            last_delta = delta;
        } else if let Some(last) = steps.last_mut() {
            last.1 = k as u64;
        }
    }
    // Long-run output rate: the slowest throttle.
    let tail = throttles
        .iter()
        .map(|t| {
            let per_event =
                t.gamma_lower.value(t.gamma_lower.k_max()).get() as f64
                    / t.gamma_lower.k_max() as f64;
            if per_event > 0.0 {
                t.rate / per_event
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min);
    if !tail.is_finite() {
        return Err(WorkloadError::Infeasible {
            reason: "a throttle has zero per-event consumption; the bound degenerates",
        });
    }
    Ok(StepCurve::new(steps, last_delta, tail)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_throttle_matches_inverse() {
        let proc = LowerWorkloadCurve::new(vec![4, 8, 12, 16, 20]).unwrap();
        let bound = producer_output_bound(
            &[Throttle {
                gamma_lower: &proc,
                rate: 8.0,
                head_start: 0.0,
            }],
            5,
        )
        .unwrap();
        // k events need γˡ(k−1)/8 seconds of window.
        assert_eq!(bound.value(0.0), 1);
        assert_eq!(bound.value(0.49), 1);
        assert_eq!(bound.value(0.5), 2); // γˡ(1)=4 at 8/s
        assert_eq!(bound.value(1.0), 3);
        assert_eq!(bound.value(2.0), 5);
    }

    #[test]
    fn min_of_throttles_binds() {
        let cheap = LowerWorkloadCurve::new(vec![1, 2, 3, 4]).unwrap();
        let costly = LowerWorkloadCurve::new(vec![10, 20, 30, 40]).unwrap();
        let fast_only = producer_output_bound(
            &[Throttle {
                gamma_lower: &cheap,
                rate: 10.0,
                head_start: 0.0,
            }],
            4,
        )
        .unwrap();
        let both = producer_output_bound(
            &[
                Throttle {
                    gamma_lower: &cheap,
                    rate: 10.0,
                    head_start: 0.0,
                },
                Throttle {
                    gamma_lower: &costly,
                    rate: 10.0,
                    head_start: 0.0,
                },
            ],
            4,
        )
        .unwrap();
        for i in 0..40 {
            let d = i as f64 * 0.1;
            assert!(both.value(d) <= fast_only.value(d), "Δ={d}");
        }
    }

    #[test]
    fn head_start_loosens_the_bound() {
        let proc = LowerWorkloadCurve::new(vec![10, 20, 30, 40]).unwrap();
        let cold = producer_output_bound(
            &[Throttle {
                gamma_lower: &proc,
                rate: 10.0,
                head_start: 0.0,
            }],
            4,
        )
        .unwrap();
        let warm = producer_output_bound(
            &[Throttle {
                gamma_lower: &proc,
                rate: 10.0,
                head_start: 20.0,
            }],
            4,
        )
        .unwrap();
        for i in 0..40 {
            let d = i as f64 * 0.1;
            assert!(warm.value(d) >= cold.value(d), "Δ={d}");
        }
        assert_eq!(warm.value(0.0), 3); // γˡ(2)=20 pre-buffered
    }

    #[test]
    fn validates_inputs() {
        let proc = LowerWorkloadCurve::new(vec![1, 2]).unwrap();
        assert!(producer_output_bound(&[], 2).is_err());
        assert!(producer_output_bound(
            &[Throttle {
                gamma_lower: &proc,
                rate: 0.0,
                head_start: 0.0
            }],
            2
        )
        .is_err());
        assert!(producer_output_bound(
            &[Throttle {
                gamma_lower: &proc,
                rate: 1.0,
                head_start: f64::NAN
            }],
            2
        )
        .is_err());
        let zero = LowerWorkloadCurve::new(vec![0, 0]).unwrap();
        assert!(producer_output_bound(
            &[Throttle {
                gamma_lower: &zero,
                rate: 1.0,
                head_start: 0.0
            }],
            2
        )
        .is_err());
    }
}
