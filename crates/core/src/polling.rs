//! The polling-task model of Example 1 (Fig. 2).
//!
//! A task polls for an event every `T` seconds. If an event is pending the
//! activation costs `e_p` cycles, otherwise only the check cost `e_c`.
//! Events arrive with inter-arrival times in `[θ_min, θ_max]`. Because at
//! most `n_max(k) = min(k, 1 + ⌊k·T/θ_min⌋)` events can fall into `k`
//! consecutive polls (and at least `n_min(k) = ⌊k·T/θ_max⌋` must), the
//! workload curves have the closed forms
//!
//! > `γᵘ(k) = n_max(k)·e_p + (k − n_max(k))·e_c`
//! > `γˡ(k) = n_min(k)·e_p + (k − n_min(k))·e_c`
//!
//! which are strictly tighter than the `k·e_p` WCET line and the `k·e_c`
//! BCET line whenever `θ_min > T`.

use crate::curve::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use crate::WorkloadError;
use wcm_events::Cycles;

/// Analytic polling-task model (Example 1 of the paper).
///
/// # Example
///
/// Fig. 2 uses `θ_min = 3T`, `θ_max = 5T`:
///
/// ```
/// use wcm_core::{polling::PollingTask, Cycles};
///
/// # fn main() -> Result<(), wcm_core::WorkloadError> {
/// let task = PollingTask::new(1.0, 3.0, 5.0, Cycles(10), Cycles(2))?;
/// assert_eq!(task.n_max(1), 1);
/// assert_eq!(task.n_max(6), 3);  // 1 + ⌊6/3⌋
/// assert_eq!(task.n_min(6), 1);  // ⌊6/5⌋
/// assert_eq!(task.gamma_upper(6), Cycles(3 * 10 + 3 * 2));
/// assert_eq!(task.gamma_lower(6), Cycles(1 * 10 + 5 * 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PollingTask {
    period: f64,
    theta_min: f64,
    theta_max: f64,
    event_cost: Cycles,
    check_cost: Cycles,
}

impl PollingTask {
    /// Creates a polling task.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `period ≤ 0`,
    /// `θ_min ≤ 0`, `θ_min > θ_max`, any value is non-finite, or
    /// `check_cost > event_cost`.
    pub fn new(
        period: f64,
        theta_min: f64,
        theta_max: f64,
        event_cost: Cycles,
        check_cost: Cycles,
    ) -> Result<Self, WorkloadError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(WorkloadError::InvalidParameter { name: "period" });
        }
        if !(theta_min.is_finite() && theta_min > 0.0) {
            return Err(WorkloadError::InvalidParameter { name: "theta_min" });
        }
        if !(theta_max.is_finite() && theta_max >= theta_min) {
            return Err(WorkloadError::InvalidParameter { name: "theta_max" });
        }
        if check_cost > event_cost {
            return Err(WorkloadError::InvalidParameter { name: "check_cost" });
        }
        Ok(Self {
            period,
            theta_min,
            theta_max,
            event_cost,
            check_cost,
        })
    }

    /// Polling period `T`.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Cost of an activation that processes an event (`e_p`).
    #[must_use]
    pub fn event_cost(&self) -> Cycles {
        self.event_cost
    }

    /// Cost of an activation that only checks (`e_c`).
    #[must_use]
    pub fn check_cost(&self) -> Cycles {
        self.check_cost
    }

    /// Maximum number of events detected in `k` consecutive polls.
    #[must_use]
    pub fn n_max(&self, k: usize) -> u64 {
        if k == 0 {
            return 0;
        }
        let by_rate = 1 + (k as f64 * self.period / self.theta_min).floor() as u64;
        by_rate.min(k as u64)
    }

    /// Minimum number of events detected in `k` consecutive polls.
    #[must_use]
    pub fn n_min(&self, k: usize) -> u64 {
        ((k as f64 * self.period / self.theta_max).floor() as u64).min(k as u64)
    }

    /// The closed-form upper workload curve value `γᵘ(k)`.
    #[must_use]
    pub fn gamma_upper(&self, k: usize) -> Cycles {
        let n = self.n_max(k);
        Cycles(n * self.event_cost.get() + (k as u64 - n) * self.check_cost.get())
    }

    /// The closed-form lower workload curve value `γˡ(k)`.
    #[must_use]
    pub fn gamma_lower(&self, k: usize) -> Cycles {
        let n = self.n_min(k);
        Cycles(n * self.event_cost.get() + (k as u64 - n) * self.check_cost.get())
    }

    /// Materializes `γᵘ` for `k = 1 ..= k_max`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0.
    pub fn upper_curve(&self, k_max: usize) -> Result<UpperWorkloadCurve, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        UpperWorkloadCurve::new((1..=k_max).map(|k| self.gamma_upper(k).get()).collect())
    }

    /// Materializes `γˡ` for `k = 1 ..= k_max`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0.
    pub fn lower_curve(&self, k_max: usize) -> Result<LowerWorkloadCurve, WorkloadError> {
        if k_max == 0 {
            return Err(WorkloadError::InvalidParameter { name: "k_max" });
        }
        LowerWorkloadCurve::new((1..=k_max).map(|k| self.gamma_lower(k).get()).collect())
    }

    /// Both curves as a [`WorkloadBounds`] pair.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `k_max` is 0.
    pub fn bounds(&self, k_max: usize) -> Result<WorkloadBounds, WorkloadError> {
        Ok(WorkloadBounds {
            upper: self.upper_curve(k_max)?,
            lower: self.lower_curve(k_max)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 configuration: θ_min = 3T, θ_max = 5T.
    fn fig2_task() -> PollingTask {
        PollingTask::new(1.0, 3.0, 5.0, Cycles(10), Cycles(2)).unwrap()
    }

    #[test]
    fn validates_parameters() {
        assert!(PollingTask::new(0.0, 3.0, 5.0, Cycles(1), Cycles(0)).is_err());
        assert!(PollingTask::new(1.0, 0.0, 5.0, Cycles(1), Cycles(0)).is_err());
        assert!(PollingTask::new(1.0, 5.0, 3.0, Cycles(1), Cycles(0)).is_err());
        assert!(PollingTask::new(1.0, 3.0, 5.0, Cycles(1), Cycles(2)).is_err());
        assert!(PollingTask::new(1.0, f64::NAN, 5.0, Cycles(1), Cycles(0)).is_err());
    }

    #[test]
    fn n_max_sequence_fig2() {
        let t = fig2_task();
        let seq: Vec<u64> = (1..=9).map(|k| t.n_max(k)).collect();
        // 1 + ⌊k/3⌋ capped at k.
        assert_eq!(seq, vec![1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn n_min_sequence_fig2() {
        let t = fig2_task();
        let seq: Vec<u64> = (1..=10).map(|k| t.n_min(k)).collect();
        assert_eq!(seq, vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 2]);
    }

    #[test]
    fn curves_lie_between_wcet_and_bcet_lines() {
        let t = fig2_task();
        for k in 1..=60usize {
            let up = t.gamma_upper(k).get();
            let lo = t.gamma_lower(k).get();
            let wcet_line = 10 * k as u64;
            let bcet_line = 2 * k as u64;
            assert!(lo <= up);
            assert!(up <= wcet_line);
            assert!(lo >= bcet_line);
            if k >= 3 {
                // Strictly tighter than both lines once windows span θ_min.
                assert!(up < wcet_line, "k={k}");
            }
            if k >= 5 {
                assert!(lo > bcet_line, "k={k}");
            }
        }
    }

    #[test]
    fn n_max_capped_by_poll_count_for_fast_events() {
        // θ_min < T: every poll can see an event; cap at k applies.
        let t = PollingTask::new(2.0, 1.0, 4.0, Cycles(5), Cycles(1)).unwrap();
        for k in 1..=10 {
            assert_eq!(t.n_max(k), k as u64);
        }
    }

    #[test]
    fn curve_materialization_matches_closed_form() {
        let t = fig2_task();
        let b = t.bounds(30).unwrap();
        for k in 1..=30usize {
            assert_eq!(b.upper.value(k), t.gamma_upper(k));
            assert_eq!(b.lower.value(k), t.gamma_lower(k));
        }
        assert!(t.upper_curve(0).is_err());
        assert!(t.lower_curve(0).is_err());
    }

    #[test]
    fn extension_stays_above_closed_form() {
        // Extrapolating a short analytic curve must still dominate the
        // closed form (sub-additivity of γᵘ).
        let t = fig2_task();
        let short = t.upper_curve(7).unwrap();
        for k in 8..=100usize {
            assert!(
                short.value(k) >= t.gamma_upper(k),
                "extension below closed form at k={k}"
            );
        }
        let short_lower = t.lower_curve(7).unwrap();
        for k in 8..=100usize {
            assert!(
                short_lower.value(k) <= t.gamma_lower(k),
                "extension above closed form at k={k}"
            );
        }
    }

    #[test]
    fn accessors() {
        let t = fig2_task();
        assert!((t.period() - 1.0).abs() < 1e-12);
        assert_eq!(t.event_cost(), Cycles(10));
        assert_eq!(t.check_cost(), Cycles(2));
    }
}
