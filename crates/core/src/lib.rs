//! Workload curves for tasks with variable execution demand.
//!
//! This crate implements the characterization model of **A. Maxiaguine,
//! S. Künzli, L. Thiele, "Workload Characterization Model for Tasks with
//! Variable Execution Demand", DATE 2004**.
//!
//! A task τ is triggered by a sequence of typed events; each type has an
//! execution-demand interval `[bcet(t), wcet(t)]`. The *workload curves*
//!
//! * `γᵘ(k)` — an upper bound on the cycles needed by **any** `k`
//!   consecutive activations of τ, and
//! * `γˡ(k)` — the corresponding lower bound
//!
//! (Def. 1 of the paper) compress all admissible activation sequences into
//! two monotone sequences. They are hard bounds — unlike probabilistic
//! models — yet far tighter than the classic `k·WCET` line whenever
//! expensive events cannot occur back-to-back.
//!
//! # Crate layout
//!
//! * [`curve`] — [`UpperWorkloadCurve`], [`LowerWorkloadCurve`] and
//!   [`WorkloadBounds`]: values, pseudo-inverses, sound extrapolation,
//!   merging across traces;
//! * [`build`] — construction from measured [`wcm_events::Trace`]s
//!   (exact or strided-conservative);
//! * [`polling`] — the analytic polling-task model of Example 1 / Fig. 2;
//! * [`convert`] — event↔cycle conversions between arrival/service curves
//!   and workload curves (Fig. 4 and eq. 7);
//! * [`sizing`] — buffer-constrained service bounds and minimum-frequency
//!   computation (eqs. 8–10 of the MPEG-2 case study);
//! * [`verify`] — invariant checkers used by tests and examples;
//! * [`monitor`] — [`monitor::EnvelopeMonitor`], the streaming counterpart
//!   of [`verify`]: slides every window size against `γᵘ/γˡ` as events are
//!   consumed and reports structured violations online.
//!
//! # Example
//!
//! ```
//! use wcm_core::curve::WorkloadBounds;
//! use wcm_events::{window::WindowMode, Cycles, ExecutionInterval, Trace, TypeRegistry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut reg = TypeRegistry::new();
//! let hit = reg.register("hit", ExecutionInterval::fixed(Cycles(2)))?;
//! let miss = reg.register("miss", ExecutionInterval::fixed(Cycles(10)))?;
//! // A miss is always followed by at least two hits.
//! let trace = Trace::new(reg, vec![miss, hit, hit, miss, hit, hit, miss, hit]);
//! let bounds = WorkloadBounds::from_trace(&trace, 6, WindowMode::Exact)?;
//! assert_eq!(bounds.upper.value(1), Cycles(10)); // γᵘ(1) = WCET
//! assert_eq!(bounds.upper.value(3), Cycles(14)); // miss,hit,hit — not 30!
//! assert_eq!(bounds.lower.value(1), Cycles(2));  // γˡ(1) = BCET
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod chain;
pub mod convert;
pub mod curve;
mod error;
pub mod modes;
pub mod monitor;
pub mod mpa;
pub mod polling;
pub mod rate;
pub mod sizing;
pub mod verify;

pub use curve::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
pub use error::WorkloadError;
pub use monitor::{EnvelopeMonitor, MonitorReport, Violation};

// Re-export the substrate vocabulary so downstream users need one import.
pub use wcm_curves as curves;
pub use wcm_events as events;
pub use wcm_events::Cycles;
