//! Strict, zero-dependency JSON: non-finite-safe emission helpers and a
//! validating reader.
//!
//! The writers exist because `format!("{}", f64::NAN)` produces `NaN`, which
//! is **not** JSON — any report path that interpolates floats bare can emit
//! unparseable artifacts. [`fmt_f64`] maps every non-finite value to `null`
//! and everything else to Rust's shortest round-trip decimal (always
//! containing a digit, never an `inf`/`NaN` token). [`quote`] escapes and
//! quotes a string.
//!
//! The reader ([`parse`]) is a strict recursive-descent parser over the JSON
//! grammar (RFC 8259): no trailing commas, no comments, no unquoted keys, no
//! bare `NaN`/`Infinity`, exactly one top-level value. It exists so the
//! workspace can validate its own machine-readable reports without adding a
//! dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Formats `v` as a JSON number, mapping NaN and ±∞ to `null`.
///
/// Finite values use Rust's shortest-round-trip `{}` formatting, which for
/// finite f64 is always a valid JSON number (e.g. `1.5`, `-0.25`, `3e300`).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        debug_assert!(!s.contains("inf") && !s.contains("NaN"));
        s
    } else {
        "null".to_string()
    }
}

/// Escapes `s` per JSON string rules and wraps it in double quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Later duplicate keys overwrite earlier ones.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: byte offset into the input plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
    /// `true` when the failure is the input simply ending too early
    /// (truncated file) rather than malformed bytes — callers report the
    /// two differently.
    pub eof: bool,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 128;

/// Maximum decoded bytes of a single string accepted by [`parse`] — a
/// hostile input cannot make one string allocation grow without bound.
pub const MAX_STRING_BYTES: usize = 1 << 20;

/// Maximum total values (nulls, bools, numbers, strings, arrays, objects)
/// accepted by [`parse`] — caps the node-allocation a hostile input can
/// force before being rejected.
pub const MAX_NODES: usize = 1 << 20;

/// Strictly parses `text` as exactly one JSON document.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        nodes: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    nodes: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
            eof: self.pos >= self.bytes.len(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        let rest = &self.bytes[self.pos..];
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else if word.as_bytes().starts_with(rest) {
            // The input is a proper prefix of the literal: truncation, not
            // malformed bytes.
            Err(JsonError {
                offset: self.bytes.len(),
                msg: format!("input ends inside '{word}'"),
                eof: true,
            })
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.nodes += 1;
        if self.nodes > MAX_NODES {
            return Err(self.err(format!("document exceeds {MAX_NODES} values")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected '\"' to start object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only stopped
                // on ASCII boundaries, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            }
            if out.len() > MAX_STRING_BYTES {
                return Err(self.err(format!("string exceeds {MAX_STRING_BYTES} bytes")));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')
                                        .map_err(|_| self.err("unpaired surrogate"))?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or [1-9][0-9]* (leading zeros are invalid JSON).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number: missing digits")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number: missing fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number: missing exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unrepresentable number '{text}'")))?;
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_maps_non_finite_to_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(-0.25), "-0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        // Every finite output parses back as a JSON number.
        for v in [0.0, -0.0, 1e300, 1e-300, 123456.789, f64::MIN, f64::MAX] {
            let s = fmt_f64(v);
            let parsed = parse(&s).expect("finite f64 formats as valid JSON");
            assert_eq!(parsed.as_f64(), Some(v));
        }
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(quote("\u{01}"), "\"\\u0001\"");
        // Round-trip through the parser.
        for s in ["", "héllo ☃", "tab\there", "q\"q", "back\\slash", "nul<\u{01}>"] {
            let parsed = parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn parses_documents() {
        let v = parse(
            r#"{"a": [1, 2.5, -3e2, null, true, false], "b": {"nested": "x"}, "": 0}"#,
        )
        .unwrap();
        let a = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert!(a[3].is_null());
        assert_eq!(v.get("b").and_then(|b| b.get("nested")).and_then(|n| n.as_str()), Some("x"));
        assert_eq!(parse("\"\\u00e9\\ud83d\\ude00\"").unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{a:1}",
            "NaN",
            "Infinity",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "1 2",
            "[1] x",
            "'single'",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
        // Depth guard terminates instead of blowing the stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn truncation_sets_eof_and_malformed_does_not() {
        for truncated in [
            "",
            "{",
            "{\"a\"",
            "{\"a\":",
            "[1,",
            "\"unterminated",
            "\"esc\\",
            "\"\\u00",
            "tru",
            "nul",
            "fals",
        ] {
            let e = parse(truncated).unwrap_err();
            assert!(e.eof, "expected eof=true for truncated input {truncated:?}: {e}");
        }
        for malformed in ["{a:1}", "NaN", "[1,]", "'x'", "\"bad\\q\"", "01", "1 2"] {
            let e = parse(malformed).unwrap_err();
            assert!(!e.eof, "expected eof=false for malformed input {malformed:?}: {e}");
        }
    }

    #[test]
    fn allocation_caps_are_enforced() {
        // One string larger than the cap is rejected, not allocated forever.
        let big = format!("\"{}\"", "a".repeat(MAX_STRING_BYTES + 1));
        let e = parse(&big).unwrap_err();
        assert!(e.msg.contains("string exceeds"), "{e}");
        // At the cap it still parses.
        let ok = format!("\"{}\"", "a".repeat(MAX_STRING_BYTES));
        assert!(parse(&ok).is_ok());
        // More values than MAX_NODES is rejected (array + elements count).
        let many = format!("[{}0]", "0,".repeat(MAX_NODES));
        let e = parse(&many).unwrap_err();
        assert!(e.msg.contains("values"), "{e}");
    }
}
