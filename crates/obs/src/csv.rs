//! RFC 4180 CSV: a quoting writer helper and a strict table reader.
//!
//! [`field`] quotes a value only when it must be quoted (contains `,`, `"`,
//! CR, or LF), so existing reports whose fields are plain stay byte-identical.
//! [`parse_table`] is the strict counterpart: it accepts quoted and unquoted
//! fields per RFC 4180, requires every record to have the same number of
//! fields as the header, and rejects stray quotes — the validator the
//! workspace's golden round-trip tests run against emitted reports.
//!
//! The reader is hardened against hostile input: every failure carries the
//! absolute byte offset and an `eof` flag (truncated file vs malformed
//! bytes), a single field cannot exceed [`MAX_FIELD_BYTES`], and a record
//! cannot claim more than [`MAX_FIELDS`] fields — allocation stays bounded
//! no matter what the input claims.

use std::fmt;

/// Renders `s` as a single CSV field, quoting per RFC 4180 when needed.
pub fn field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// A CSV parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line where the record that failed starts.
    pub line: usize,
    /// 0-based absolute byte offset where the failure was detected.
    pub byte: usize,
    /// What went wrong.
    pub msg: String,
    /// `true` when the failure is the input ending too early (truncated
    /// file) rather than malformed bytes.
    pub eof: bool,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CSV error at line {}, byte {}: {}",
            self.line, self.byte, self.msg
        )
    }
}

impl std::error::Error for CsvError {}

/// Maximum bytes of one decoded field accepted by [`parse_table`].
pub const MAX_FIELD_BYTES: usize = 1 << 20;

/// Maximum fields in one record accepted by [`parse_table`].
pub const MAX_FIELDS: usize = 1 << 16;

/// Strictly parses `text` as an RFC 4180 table.
///
/// Rules enforced: fields are separated by `,`; records end at LF or CRLF;
/// a field containing `,`, `"` or line breaks must be quoted; inside quotes
/// `""` is a literal quote; a quote may not appear inside an unquoted field
/// nor may data follow a closing quote; every record must have the same
/// field count as the first record; the table must be non-empty; no field
/// exceeds [`MAX_FIELD_BYTES`] and no record exceeds [`MAX_FIELDS`].
pub fn parse_table(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let bytes = text.as_bytes();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;

    while pos < bytes.len() {
        let record_line = line;
        let mut row: Vec<String> = Vec::new();
        loop {
            let (fld, consumed, lines_crossed) = parse_field(bytes, pos, record_line)?;
            pos += consumed;
            line += lines_crossed;
            row.push(fld);
            if row.len() > MAX_FIELDS {
                return Err(CsvError {
                    line: record_line,
                    byte: pos,
                    msg: format!("record exceeds {MAX_FIELDS} fields"),
                    eof: false,
                });
            }
            match bytes.get(pos) {
                Some(b',') => {
                    pos += 1;
                }
                Some(b'\r') => {
                    if bytes.get(pos + 1) != Some(&b'\n') {
                        return Err(CsvError {
                            line,
                            byte: pos,
                            msg: "bare CR (expected CRLF)".into(),
                            eof: pos + 1 >= bytes.len(),
                        });
                    }
                    pos += 2;
                    line += 1;
                    break;
                }
                Some(b'\n') => {
                    pos += 1;
                    line += 1;
                    break;
                }
                None => break,
                Some(&c) => {
                    return Err(CsvError {
                        line,
                        byte: pos,
                        msg: format!("unexpected byte 0x{c:02x} after field"),
                        eof: false,
                    })
                }
            }
        }
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(CsvError {
                    line: record_line,
                    byte: pos,
                    msg: format!(
                        "record has {} fields, expected {}",
                        row.len(),
                        first.len()
                    ),
                    // A short last record at the end of input is the usual
                    // shape of a file cut off mid-record.
                    eof: pos >= bytes.len() && row.len() < first.len(),
                });
            }
        }
        rows.push(row);
    }

    if rows.is_empty() {
        return Err(CsvError {
            line: 1,
            byte: 0,
            msg: "empty input".into(),
            eof: true,
        });
    }
    Ok(rows)
}

/// Parses one field starting at absolute offset `at`; returns (content,
/// bytes consumed, newlines crossed inside quotes).
fn parse_field(all: &[u8], at: usize, line: usize) -> Result<(String, usize, usize), CsvError> {
    let bytes = &all[at..];
    let cap = |out: &String| -> Option<CsvError> {
        (out.len() > MAX_FIELD_BYTES).then(|| CsvError {
            line,
            byte: at,
            msg: format!("field exceeds {MAX_FIELD_BYTES} bytes"),
            eof: false,
        })
    };
    if bytes.first() == Some(&b'"') {
        let mut out = String::new();
        let mut i = 1usize;
        let mut crossed = 0usize;
        loop {
            match bytes.get(i) {
                Some(b'"') => {
                    if bytes.get(i + 1) == Some(&b'"') {
                        out.push('"');
                        i += 2;
                    } else {
                        i += 1;
                        // Closing quote must be followed by , CR LF or EOF —
                        // checked by the caller; data would be rejected there.
                        match bytes.get(i) {
                            None | Some(b',' | b'\r' | b'\n') => {
                                return Ok((out, i, crossed))
                            }
                            Some(_) => {
                                return Err(CsvError {
                                    line,
                                    byte: at + i,
                                    msg: "data after closing quote".into(),
                                    eof: false,
                                })
                            }
                        }
                    }
                }
                Some(&c) => {
                    if c == b'\n' {
                        crossed += 1;
                    }
                    // Copy raw bytes; re-validate UTF-8 at the end of the run.
                    let start = i;
                    let mut j = i;
                    while let Some(&b) = bytes.get(j) {
                        if b == b'"' {
                            break;
                        }
                        if b == b'\n' && j != i {
                            crossed += 1;
                        }
                        j += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&bytes[start..j]).map_err(|_| CsvError {
                            line,
                            byte: at + start,
                            msg: "invalid UTF-8 in quoted field".into(),
                            eof: false,
                        })?,
                    );
                    if let Some(e) = cap(&out) {
                        return Err(e);
                    }
                    i = j;
                    if bytes.get(i).is_none() {
                        return Err(CsvError {
                            line,
                            byte: all.len(),
                            msg: "unterminated quoted field".into(),
                            eof: true,
                        });
                    }
                }
                None => {
                    return Err(CsvError {
                        line,
                        byte: all.len(),
                        msg: "unterminated quoted field".into(),
                        eof: true,
                    })
                }
            }
        }
    } else {
        let mut i = 0usize;
        while let Some(&c) = bytes.get(i) {
            match c {
                b',' | b'\r' | b'\n' => break,
                b'"' => {
                    return Err(CsvError {
                        line,
                        byte: at + i,
                        msg: "quote inside unquoted field".into(),
                        eof: false,
                    })
                }
                _ => i += 1,
            }
        }
        if i > MAX_FIELD_BYTES {
            return Err(CsvError {
                line,
                byte: at,
                msg: format!("field exceeds {MAX_FIELD_BYTES} bytes"),
                eof: false,
            });
        }
        let s = std::str::from_utf8(&bytes[..i]).map_err(|_| CsvError {
            line,
            byte: at,
            msg: "invalid UTF-8 in field".into(),
            eof: false,
        })?;
        Ok((s.to_string(), i, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_quotes_only_when_needed() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("1.25"), "1.25");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(field("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(field(""), "");
    }

    #[test]
    fn round_trips_awkward_fields() {
        let fields = ["plain", "with,comma", "with \"quotes\"", "multi\nline", ""];
        let line1: Vec<String> = fields.iter().map(|f| field(f)).collect();
        let text = format!("{}\n{}\n", line1.join(","), line1.join(","));
        let rows = parse_table(&text).unwrap();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row, fields);
        }
    }

    #[test]
    fn accepts_crlf_and_missing_final_newline() {
        let rows = parse_table("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
        let rows = parse_table("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        // Ragged record.
        let e = parse_table("a,b\n1,2,3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(!e.eof, "an over-long record is malformed, not truncated");
        // Stray quote in unquoted field.
        assert!(parse_table("a\"b\n").is_err());
        // Data after closing quote.
        assert!(parse_table("\"a\"b\n").is_err());
        // Unterminated quote.
        assert!(parse_table("\"abc\n").is_err());
        // Bare CR.
        assert!(parse_table("a\rb\n").is_err());
        // Empty input.
        assert!(parse_table("").is_err());
    }

    #[test]
    fn truncation_sets_eof_with_byte_offsets() {
        // File cut off inside a quoted field.
        let e = parse_table("a,b\n\"unfinished").unwrap_err();
        assert!(e.eof, "{e}");
        assert_eq!(e.byte, "a,b\n\"unfinished".len());
        assert_eq!(e.line, 2);
        // File cut off mid-record: the short last record is flagged eof.
        let e = parse_table("a,b,c\n1,2,3\n4,5").unwrap_err();
        assert!(e.eof, "{e}");
        assert_eq!(e.line, 3);
        // Empty input is an eof-class failure at byte 0.
        let e = parse_table("").unwrap_err();
        assert!(e.eof);
        assert_eq!(e.byte, 0);
        // Malformed mid-file stays eof=false with an exact offset.
        let e = parse_table("a,b\nx\"y\n").unwrap_err();
        assert!(!e.eof);
        assert_eq!(e.byte, 5);
    }

    #[test]
    fn allocation_caps_are_enforced() {
        // Quoted field larger than the cap is rejected.
        let big = format!("\"{}\"\n", "x".repeat(MAX_FIELD_BYTES + 1));
        let e = parse_table(&big).unwrap_err();
        assert!(e.msg.contains("field exceeds"), "{e}");
        // Unquoted overlong field is rejected too.
        let big = format!("{}\n", "x".repeat(MAX_FIELD_BYTES + 1));
        let e = parse_table(&big).unwrap_err();
        assert!(e.msg.contains("field exceeds"), "{e}");
        // A record with too many fields is rejected without building it.
        let wide = format!("{}\n", "a,".repeat(MAX_FIELDS + 1));
        let e = parse_table(&wide).unwrap_err();
        assert!(e.msg.contains("fields"), "{e}");
    }
}
