//! # wcm-obs — zero-dependency observability
//!
//! Structured spans, counters, gauges, and log2-bucketed histograms for the
//! `wcm` workspace, behind a [`Recorder`] trait with a disabled-by-default
//! global facade so instrumented hot paths cost **one relaxed atomic load**
//! when observability is off.
//!
//! Mirroring `wcm-par`'s philosophy, this crate depends on `std` only.
//!
//! ## Design
//!
//! * A process-global `AtomicBool` gate ([`enabled`]) guards every facade
//!   call. With the gate off, [`span`], [`counter`], [`gauge_max`] and
//!   [`histogram`] are a single branch — cheap enough to leave in the
//!   `wcm-par` worker loop, the sweep evaluator, and the pipeline simulator.
//! * Spans carry monotonic nanosecond timestamps (a lazily initialised
//!   process epoch), a per-thread small id, and a parent link maintained by a
//!   thread-local current-span cell, so traces reconstruct the call tree.
//! * The bundled [`MemRecorder`] shards its buffers by thread id across 32
//!   mutexes; with one instrumented thread per shard the lock is always
//!   uncontended (a single CAS), so the hot path never blocks on another
//!   worker. A per-shard span cap bounds memory on long runs.
//! * [`Snapshot`] renders the collected data as a Chrome
//!   `chrome://tracing` JSON trace ([`Snapshot::to_chrome_trace`]) or a
//!   metrics summary ([`Snapshot::to_metrics_json`]).
//!
//! The [`json`] and [`csv`] modules provide the strict, zero-dependency
//! readers and non-finite-safe writers used to harden report emission across
//! the workspace (NaN/∞ must never produce unparseable artifacts).
//!
//! ## Example
//!
//! ```
//! let rec = wcm_obs::mem();           // install the shared in-memory recorder
//! rec.reset();
//! wcm_obs::set_enabled(true);
//! {
//!     let _outer = wcm_obs::span("outer");
//!     let _inner = wcm_obs::span("inner");
//!     wcm_obs::counter("work.items", 3);
//! }
//! wcm_obs::set_enabled(false);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("work.items"), 3);
//! assert_eq!(snap.spans.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod json;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket 0 counts the value `0`; bucket `b ≥ 1` counts values in
/// `[2^(b-1), 2^b)`, with every value ≥ `2^62` folded into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Per-shard cap on buffered spans in [`MemRecorder`].
///
/// Spans beyond the cap are counted (surfaced as the `obs.spans_dropped`
/// counter in snapshots) but not stored, bounding memory on long runs.
pub const SPAN_CAP_PER_SHARD: usize = 1 << 20;

const SHARDS: usize = 32;

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A completed span: a named interval on one thread with a parent link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static name of the span (e.g. `"sweep.run"`).
    pub name: &'static str,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the span that was current on this thread at enter time, or 0
    /// for a root span.
    pub parent: u64,
    /// Small per-thread id (see [`thread_id`]).
    pub tid: u64,
    /// Start time in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Sink for instrumentation events. Implementations must be cheap and
/// non-blocking: facade calls happen on hot paths.
pub trait Recorder: Send + Sync {
    /// Record a completed span.
    fn span(&self, span: SpanRecord);
    /// Add `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Raise the named high-water gauge to at least `value`.
    fn gauge_max(&self, name: &'static str, value: u64);
    /// Record one sample into the named log2 histogram.
    fn histogram_record(&self, name: &'static str, value: u64);
}

/// A [`Recorder`] that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn span(&self, _span: SpanRecord) {}
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_max(&self, _name: &'static str, _value: u64) {}
    fn histogram_record(&self, _name: &'static str, _value: u64) {}
}

// ---------------------------------------------------------------------------
// Global facade
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<&'static dyn Recorder> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Returns whether the global recorder gate is open.
///
/// This is the one-branch fast path every instrumentation site pays when
/// observability is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens or closes the global gate. Recording only happens while the gate is
/// open *and* a recorder is installed. Toggling the gate is how benchmarks
/// compare instrumented-on vs instrumented-off in one process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Installs `rec` as the process-wide recorder.
///
/// The recorder can be installed once per process (it is handed out by
/// reference to arbitrary threads, so it must live forever — use a leaked box
/// or a `static`). Returns `false` if a recorder was already installed.
pub fn install(rec: &'static dyn Recorder) -> bool {
    RECORDER.set(rec).is_ok()
}

/// The installed recorder, if any.
#[inline]
pub fn recorder() -> Option<&'static dyn Recorder> {
    RECORDER.get().copied()
}

/// Returns the shared in-memory recorder, installing it on first use.
///
/// This is the convenience entry point for the CLI, benches and tests. If a
/// different recorder was installed first the returned [`MemRecorder`] exists
/// but receives no events.
pub fn mem() -> &'static MemRecorder {
    static MEM: OnceLock<MemRecorder> = OnceLock::new();
    let m = MEM.get_or_init(MemRecorder::new);
    let _ = RECORDER.set(m);
    m
}

/// Monotonic nanoseconds since the (lazily initialised) process epoch.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    // u64 nanoseconds cover ~584 years of process uptime.
    epoch.elapsed().as_nanos() as u64
}

/// Small dense id for the calling thread (1, 2, 3, … in first-use order).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|c| {
        let id = c.get();
        if id != 0 {
            id
        } else {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

/// Adds `delta` to the named counter (one branch when disabled).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        if let Some(rec) = recorder() {
            rec.counter_add(name, delta);
        }
    }
}

/// Raises the named high-water gauge to at least `value` (one branch when
/// disabled).
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if enabled() {
        if let Some(rec) = recorder() {
            rec.gauge_max(name, value);
        }
    }
}

/// Records one sample into the named log2 histogram (one branch when
/// disabled).
#[inline]
pub fn histogram(name: &'static str, value: u64) {
    if enabled() {
        if let Some(rec) = recorder() {
            rec.histogram_record(name, value);
        }
    }
}

/// Opens a span; the returned guard records it on drop (one branch when
/// disabled).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() || recorder().is_none() {
        return SpanGuard { open: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(|c| c.replace(id));
    SpanGuard {
        open: Some(OpenSpan {
            name,
            id,
            parent,
            start_ns: now_ns(),
        }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    start_ns: u64,
}

/// RAII guard returned by [`span`]; records the completed span on drop and
/// restores the thread's previous current-span (parent link bookkeeping).
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            CURRENT_SPAN.with(|c| c.set(open.parent));
            let end = now_ns();
            if let Some(rec) = recorder() {
                rec.span(SpanRecord {
                    name: open.name,
                    id: open.id,
                    parent: open.parent,
                    tid: thread_id(),
                    start_ns: open.start_ns,
                    dur_ns: end.saturating_sub(open.start_ns),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
        }
    }

    /// Index of the bucket covering `value` (see [`HISTOGRAM_BUCKETS`]).
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `b` (`u64::MAX` for the last bucket).
    pub fn bucket_hi(b: usize) -> u64 {
        if b + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q · count` (`0.0 ≤ q ≤ 1.0`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_hi(b);
            }
        }
        u64::MAX
    }
}

// ---------------------------------------------------------------------------
// MemRecorder
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Shard {
    spans: Vec<SpanRecord>,
    spans_dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// In-memory [`Recorder`] with thread-sharded buffers.
///
/// Buffers are sharded by [`thread_id`] across 32 mutexes; a worker thread
/// always hits the same shard and (for up to 32 instrumented threads) never
/// shares it, so the per-event lock is an uncontended CAS. [`snapshot`]
/// merges all shards into one [`Snapshot`].
///
/// [`snapshot`]: MemRecorder::snapshot
pub struct MemRecorder {
    shards: Vec<Mutex<Shard>>,
}

impl std::fmt::Debug for MemRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemRecorder")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Default for MemRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        MemRecorder {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self) -> &Mutex<Shard> {
        &self.shards[(thread_id() as usize) % SHARDS]
    }

    fn lock(mutex: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        // Instrumentation closures never panic while holding the lock
        // (pushes and BTreeMap inserts only), so poisoning cannot leave the
        // data half-written; recover the guard rather than propagate.
        mutex.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Clears all buffered data.
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut s = Self::lock(shard);
            s.spans.clear();
            s.spans_dropped = 0;
            s.counters.clear();
            s.gauges.clear();
            s.histograms.clear();
        }
    }

    /// Merges every shard into a [`Snapshot`]. Spans are ordered by
    /// `(start_ns, id)` so output is deterministic for a given recording.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let mut dropped = 0u64;
        for shard in &self.shards {
            let s = Self::lock(shard);
            snap.spans.extend_from_slice(&s.spans);
            dropped += s.spans_dropped;
            for (&name, &v) in &s.counters {
                *snap.counters.entry(name).or_insert(0) += v;
            }
            for (&name, &v) in &s.gauges {
                let g = snap.gauges.entry(name).or_insert(0);
                *g = (*g).max(v);
            }
            for (&name, h) in &s.histograms {
                snap.histograms.entry(name).or_default().merge(h);
            }
        }
        if dropped > 0 {
            *snap.counters.entry("obs.spans_dropped").or_insert(0) += dropped;
        }
        snap.spans.sort_by_key(|s| (s.start_ns, s.id));
        snap
    }
}

impl Recorder for MemRecorder {
    fn span(&self, span: SpanRecord) {
        let mut s = Self::lock(self.shard());
        if s.spans.len() < SPAN_CAP_PER_SHARD {
            s.spans.push(span);
        } else {
            s.spans_dropped += 1;
        }
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut s = Self::lock(self.shard());
        *s.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_max(&self, name: &'static str, value: u64) {
        let mut s = Self::lock(self.shard());
        let g = s.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        let mut s = Self::lock(self.shard());
        s.histograms.entry(name).or_default().record(value);
    }
}

// ---------------------------------------------------------------------------
// Snapshot + export
// ---------------------------------------------------------------------------

/// Aggregates over one span name inside a [`Snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of their durations in nanoseconds.
    pub total_ns: u128,
}

/// A merged, immutable view of everything a [`MemRecorder`] collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All spans, ordered by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// High-water gauges.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Log2 histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// Value of the named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of the named gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Per-name span aggregates.
    pub fn span_stats(&self) -> BTreeMap<&'static str, SpanStats> {
        let mut out: BTreeMap<&'static str, SpanStats> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.name).or_default();
            e.count += 1;
            e.total_ns += s.dur_ns as u128;
        }
        out
    }

    /// Renders the spans as a Chrome trace (the JSON object format consumed
    /// by `chrome://tracing` and Perfetto): one `"X"` (complete) event per
    /// span, timestamps in microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"wcm\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
                json::quote(s.name),
                s.tid,
                json::fmt_f64(s.start_ns as f64 / 1000.0),
                json::fmt_f64(s.dur_ns as f64 / 1000.0),
                s.id,
                s.parent,
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Renders counters, gauges, histogram summaries (count + p50/p90/p99 +
    /// non-empty buckets) and per-name span aggregates as a JSON document.
    pub fn to_metrics_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::quote(name), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::quote(name), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"p50_hi\": {}, \"p90_hi\": {}, \"p99_hi\": {}, \"buckets\": [",
                json::quote(name),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
            let mut first = true;
            for (b, &n) in h.buckets().iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("{{\"hi\": {}, \"count\": {}}}", Histogram::bucket_hi(b), n));
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (name, st)) in self.span_stats().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}}}",
                json::quote(name),
                st.count,
                st.total_ns,
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_hi(0), 0);
        assert_eq!(Histogram::bucket_hi(1), 1);
        assert_eq!(Histogram::bucket_hi(2), 3);
        assert_eq!(Histogram::bucket_hi(HISTOGRAM_BUCKETS - 1), u64::MAX);

        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // p50 of {1,2,3,100,1000}: third sample sits in bucket_of(3)=2, hi=3.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), Histogram::bucket_hi(Histogram::bucket_of(1000)));
        assert_eq!(Histogram::new().quantile(0.5), 0);

        let mut other = Histogram::new();
        other.record(1);
        h.merge(&other);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn disabled_facade_records_nothing() {
        // Not using the global recorder: drive a local MemRecorder directly
        // to stay independent of other tests' global state.
        let rec = MemRecorder::new();
        rec.counter_add("a", 1);
        rec.gauge_max("g", 7);
        rec.gauge_max("g", 3);
        rec.histogram_record("h", 5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 1);
        assert_eq!(snap.gauge("g"), 7);
        assert_eq!(snap.histograms["h"].count(), 1);
        rec.reset();
        assert_eq!(rec.snapshot().counter("a"), 0);
    }

    #[test]
    fn span_parent_links_and_ordering() {
        // The global facade is process-wide; this is the only test in this
        // crate that enables it, and it disables it again before asserting.
        let rec = mem();
        rec.reset();
        set_enabled(true);
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        set_enabled(false);
        let snap = rec.snapshot();
        let spans: BTreeMap<&str, SpanRecord> =
            snap.spans.iter().map(|s| (s.name, *s)).collect();
        assert_eq!(spans.len(), 3);
        let outer = spans["outer"];
        assert_eq!(spans["inner"].parent, outer.id);
        assert_eq!(spans["sibling"].parent, outer.id);
        assert!(snap.spans.windows(2).all(|w| {
            (w[0].start_ns, w[0].id) <= (w[1].start_ns, w[1].id)
        }));
        // Exports parse with the strict reader.
        let trace = snap.to_chrome_trace();
        let v = json::parse(&trace).expect("trace parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(|p| p.as_str()), Some("X"));
        let metrics = snap.to_metrics_json();
        let m = json::parse(&metrics).expect("metrics parse");
        assert!(m.get("spans").is_some());
        rec.reset();
    }

    #[test]
    fn snapshot_merges_across_threads() {
        let rec: &'static MemRecorder = Box::leak(Box::new(MemRecorder::new()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.counter_add("n", 1);
                    }
                    rec.gauge_max("g", thread_id());
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("n"), 400);
        assert!(snap.gauge("g") >= 1);
    }
}
