//! Micro-cost of live recorder operations, mirroring the per-point volume
//! one 45-point sweep pushes through the facade (two timestamps, one
//! verdict counter and one latency-histogram sample per grid point, plus
//! a couple of spans). Prints ns per sweep-equivalent — the *floor* of
//! the live overhead that `bench_obs` measures end-to-end, useful for
//! separating real recording cost from host noise in its paired ratios.
//!
//! Run with `cargo run --release -p wcm-obs --example opcost`.

fn main() {
    let rec = wcm_obs::mem();
    wcm_obs::set_enabled(true);
    let reps = 2000u32;
    let points = 45u32;
    let t = std::time::Instant::now();
    for _ in 0..reps {
        for _ in 0..points {
            let t0 = wcm_obs::now_ns();
            std::hint::black_box(t0);
            let dt = wcm_obs::now_ns().saturating_sub(t0);
            wcm_obs::counter("sweep.verdict.provably_safe", 1);
            wcm_obs::histogram("sweep.prune_ns", dt);
        }
        let _run = wcm_obs::span("sweep.run");
        let _analysis = wcm_obs::span("sweep.clip_analysis");
        rec.reset();
    }
    let per_sweep = t.elapsed().as_nanos() as f64 / f64::from(reps);
    println!(
        "live recording ops, {points}-point sweep volume: {per_sweep:.0} ns per sweep \
         ({:.0} ns per grid point)",
        per_sweep / f64::from(points)
    );
    wcm_obs::set_enabled(false);
}
