//! Compile-time checks that the optional `serde` feature provides
//! `Serialize`/`Deserialize` on the data-structure types (C-SERDE).
//!
//! Run with `cargo test --features serde`.

#![cfg(feature = "serde")]

use serde::de::DeserializeOwned;
use serde::Serialize;

fn assert_serde<T: Serialize + DeserializeOwned>() {}

#[test]
fn curve_types_are_serde() {
    assert_serde::<wcm::curves::Pwl>();
    assert_serde::<wcm::curves::Segment>();
    assert_serde::<wcm::curves::StepCurve>();
    assert_serde::<wcm::curves::arrival::LeakyBucket>();
    assert_serde::<wcm::curves::arrival::PeriodicJitter>();
    assert_serde::<wcm::curves::service::RateLatency>();
    assert_serde::<wcm::curves::service::Tdma>();
}

#[test]
fn event_types_are_serde() {
    assert_serde::<wcm::events::Cycles>();
    assert_serde::<wcm::events::ExecutionInterval>();
    assert_serde::<wcm::events::EventType>();
    assert_serde::<wcm::events::TypeRegistry>();
    assert_serde::<wcm::events::Trace>();
    assert_serde::<wcm::events::TimedTrace>();
}

#[test]
fn workload_types_are_serde() {
    assert_serde::<wcm::UpperWorkloadCurve>();
    assert_serde::<wcm::LowerWorkloadCurve>();
    assert_serde::<wcm::WorkloadBounds>();
    assert_serde::<wcm::core::polling::PollingTask>();
}

#[test]
fn mpeg_types_are_serde() {
    assert_serde::<wcm::mpeg::FrameKind>();
    assert_serde::<wcm::mpeg::GopStructure>();
    assert_serde::<wcm::mpeg::VideoParams>();
    assert_serde::<wcm::mpeg::profile::ClipProfile>();
    assert_serde::<wcm::mpeg::demand::Pe1Model>();
    assert_serde::<wcm::mpeg::demand::Pe2Model>();
    assert_serde::<wcm::mpeg::mb::Macroblock>();
}
