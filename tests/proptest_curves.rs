//! Property-based tests of the curve substrates: workload curves from
//! random traces, and the min-plus algebra on random PWL curves.

use proptest::prelude::*;
use wcm::core::curve::WorkloadBounds;
use wcm::core::verify;
use wcm::curves::{bounds, minplus, Pwl};
use wcm::events::window::WindowMode;
use wcm::events::{Cycles, ExecutionInterval, Trace, TypeRegistry};

/// A random trace over up to 4 event types with demands in [1, 50].
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec((1u64..=50, 0u64..=20), 1..=4),
        proptest::collection::vec(0usize..4, 4..60),
    )
        .prop_map(|(intervals, picks)| {
            let mut reg = TypeRegistry::new();
            let mut handles = Vec::new();
            for (i, (b, extra)) in intervals.iter().enumerate() {
                let iv = ExecutionInterval::new(Cycles(*b), Cycles(b + extra))
                    .expect("b ≤ b + extra");
                handles.push(reg.register(format!("t{i}"), iv).expect("unique names"));
            }
            let events = picks
                .into_iter()
                .map(|p| handles[p % handles.len()])
                .collect();
            Trace::new(reg, events)
        })
}

/// A random wide-sense increasing PWL curve with ≤ 5 breakpoints.
fn arb_pwl() -> impl Strategy<Value = Pwl> {
    proptest::collection::vec((0.1f64..5.0, 0.0f64..10.0, 0.0f64..8.0), 1..5).prop_map(
        |pieces| {
            let mut x = 0.0;
            let mut y = 0.0;
            let mut bps = Vec::new();
            for (dx, jump, slope) in pieces {
                bps.push((x, y + jump, slope));
                y = y + jump + slope * dx;
                x += dx;
            }
            Pwl::from_breakpoints(bps).expect("constructed monotone")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Trace-derived workload curves always satisfy Def. 1's structure.
    #[test]
    fn trace_curves_satisfy_definition(trace in arb_trace()) {
        let k_max = trace.len().min(12);
        let b = WorkloadBounds::from_trace(&trace, k_max, WindowMode::Exact).unwrap();
        prop_assert!(verify::upper_is_subadditive(&b.upper));
        prop_assert!(verify::lower_is_superadditive(&b.lower));
        prop_assert!(verify::bounds_are_consistent(&b));
        prop_assert!(verify::bounds_cover_trace(&b, &trace));
        prop_assert_eq!(b.upper.wcet(), trace.worst_demands().into_iter().max().unwrap());
        prop_assert_eq!(b.lower.bcet(), trace.best_demands().into_iter().min().unwrap());
    }

    /// Strided construction is conservative on both sides.
    #[test]
    fn strided_is_conservative(trace in arb_trace(), exact in 1usize..6, stride in 1usize..5) {
        let k_max = trace.len().min(15);
        let exact_mode = WorkloadBounds::from_trace(&trace, k_max, WindowMode::Exact).unwrap();
        let strided = WorkloadBounds::from_trace(
            &trace,
            k_max,
            WindowMode::Strided { exact_upto: exact, stride },
        ).unwrap();
        for k in 1..=k_max {
            prop_assert!(strided.upper.value(k) >= exact_mode.upper.value(k));
            prop_assert!(strided.lower.value(k) <= exact_mode.lower.value(k));
        }
    }

    /// Galois connection of the pseudo-inverses (Sec. 2.1):
    /// `γᵘ(k) ≤ e ⇔ γᵘ⁻¹(e) ≥ k` and `γˡ(k) ≥ e ⇔ γˡ⁻¹(e) ≤ k`.
    #[test]
    fn pseudo_inverse_galois(trace in arb_trace(), e in 0u64..2000) {
        let k_max = trace.len().min(10);
        let b = WorkloadBounds::from_trace(&trace, k_max, WindowMode::Exact).unwrap();
        let e_f = e as f64;
        let k_inv = b.upper.pseudo_inverse(e_f);
        for k in 1..=(2 * k_max) {
            let holds = b.upper.value(k).get() as f64 <= e_f;
            prop_assert_eq!(holds, (k as u64) <= k_inv, "upper Galois at k={}", k);
        }
        if let Some(k_inv_l) = b.lower.pseudo_inverse(e_f) {
            for k in 1..=(2 * k_max) {
                let holds = b.lower.value(k).get() as f64 >= e_f;
                prop_assert_eq!(holds, (k as u64) >= k_inv_l, "lower Galois at k={}", k);
            }
        }
    }

    /// Merging curves across traces stays a sound bound for each trace.
    #[test]
    fn merge_covers_both_traces(t1 in arb_trace(), t2 in arb_trace()) {
        // Give both traces the same registry shape by reusing t1's demands
        // directly: merging only needs the value sequences.
        let k = t1.len().min(t2.len()).min(8);
        let b1 = WorkloadBounds::from_trace(&t1, k, WindowMode::Exact).unwrap();
        let b2 = WorkloadBounds::from_trace(&t2, k, WindowMode::Exact).unwrap();
        let merged = WorkloadBounds::merge_all(&[b1, b2]).unwrap();
        prop_assert!(verify::bounds_cover_trace(&merged, &t1));
        prop_assert!(verify::bounds_cover_trace(&merged, &t2));
    }

    /// Min-plus convolution is commutative and dominated by both
    /// single-sided compositions.
    #[test]
    fn convolution_commutative_and_bounded(f in arb_pwl(), g in arb_pwl()) {
        let fg = minplus::convolve(&f, &g);
        let gf = minplus::convolve(&g, &f);
        for i in 0..40 {
            let t = i as f64 * 0.33;
            prop_assert!((fg.value(t) - gf.value(t)).abs() < 1e-6 * (1.0 + fg.value(t).abs()));
            // conv ≤ f + g(0) and ≤ g + f(0).
            prop_assert!(fg.value(t) <= f.value(t) + g.value(0.0) + 1e-9);
            prop_assert!(fg.value(t) <= g.value(t) + f.value(0.0) + 1e-9);
        }
    }

    /// Convolution agrees with dense sampling enriched by the kink
    /// candidates (a pure grid can miss infima attained only as left
    /// limits at near-coincident breakpoints).
    #[test]
    fn convolution_matches_sampling(f in arb_pwl(), g in arb_pwl()) {
        let c = minplus::convolve(&f, &g);
        for i in 1..12 {
            let t = i as f64 * 0.7;
            let mut brute = minplus::convolve_sampled(&f, &g, t, 1500);
            let mut consider = |s: f64| {
                if (0.0..=t).contains(&s) {
                    brute = brute.min(f.value(t - s) + g.value(s));
                    brute = brute.min(f.value_left(t - s) + g.value_left(s));
                }
            };
            for b in g.breakpoint_xs() {
                consider(b);
                consider(b - 1e-9);
            }
            for a in f.breakpoint_xs() {
                consider(t - a);
                consider(t - a + 1e-9);
            }
            prop_assert!(c.value(t) <= brute + 1e-6, "above sampled inf at t={}", t);
            prop_assert!(brute - c.value(t) < 0.15 * (1.0 + brute.abs()),
                "far below sampled inf at t={}: {} vs {}", t, c.value(t), brute);
        }
    }

    /// Deconvolution dominates the original curve (f ⊘ g ≥ f − g(0) and
    /// ≥ f when g(0) = 0), and its value at 0 equals the backlog bound.
    #[test]
    fn deconvolution_properties(f in arb_pwl(), g in arb_pwl()) {
        prop_assume!(f.ultimate_rate() <= g.ultimate_rate());
        let d = match minplus::deconvolve(&f, &g) {
            Ok(d) => d,
            Err(_) => return Ok(()), // equal-rate edge rejected upstream
        };
        // s = 0 is always a candidate.
        for i in 0..30 {
            let t = i as f64 * 0.4;
            prop_assert!(
                d.value(t) >= f.value(t) - g.value(0.0) - 1e-6,
                "deconv below s=0 candidate at t={}", t
            );
        }
        if let Ok(b) = bounds::backlog(&f, &g) {
            prop_assert!((d.value(0.0) - b).abs() <= 1e-6 * (1.0 + b.abs()) || d.value(0.0) >= b - 1e-6,
                "deconv(0)={} vs backlog={}", d.value(0.0), b);
        }
    }

    /// Backlog and delay bounds shrink when service grows.
    #[test]
    fn bounds_monotone_in_service(alpha in arb_pwl(), beta in arb_pwl(), extra in 0.1f64..5.0) {
        let better = beta.add(&Pwl::affine(extra, extra).unwrap());
        if let (Ok(b1), Ok(b2)) = (bounds::backlog(&alpha, &beta), bounds::backlog(&alpha, &better)) {
            prop_assert!(b2 <= b1 + 1e-9);
        }
        if let (Ok(d1), Ok(d2)) = (bounds::delay(&alpha, &beta), bounds::delay(&alpha, &better)) {
            prop_assert!(d2 <= d1 + 1e-9);
        }
    }

    /// Deconvolution dominates the sampled supremum (the sampled value can
    /// only miss candidates, never exceed the true sup).
    #[test]
    fn deconvolution_dominates_sampled_sup(f in arb_pwl(), g in arb_pwl()) {
        prop_assume!(f.ultimate_rate() <= g.ultimate_rate());
        let d = match minplus::deconvolve(&f, &g) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        for i in 0..12 {
            let t = i as f64 * 0.5;
            // Brute-force sup over a dense s grid (with the g(0)=0
            // boundary convention).
            let mut sampled = f.value(t); // s = 0
            let s_max = f.tail_start().max(g.tail_start()) + 4.0;
            for j in 1..=800 {
                let s = s_max * j as f64 / 800.0;
                sampled = sampled.max(f.value(t + s) - g.value(s));
                sampled = sampled.max(f.value(t + s) - g.value_left(s));
            }
            prop_assert!(
                d.value(t) >= sampled.max(0.0) - 1e-6 * (1.0 + sampled.abs()),
                "deconv {} below sampled sup {} at t={}", d.value(t), sampled, t
            );
        }
    }

    /// Min-plus convolution is associative (sampled).
    #[test]
    fn convolution_associative(f in arb_pwl(), g in arb_pwl(), h in arb_pwl()) {
        let left = minplus::convolve(&minplus::convolve(&f, &g), &h);
        let right = minplus::convolve(&f, &minplus::convolve(&g, &h));
        for i in 0..30 {
            let t = i as f64 * 0.4;
            prop_assert!(
                (left.value(t) - right.value(t)).abs()
                    < 1e-6 * (1.0 + left.value(t).abs()),
                "associativity fails at t={}: {} vs {}", t, left.value(t), right.value(t)
            );
        }
    }

    /// Max-plus convolution dominates min-plus convolution (sup over the
    /// same splits vs inf), and both are commutative.
    #[test]
    fn maxplus_dominates_minplus(f in arb_pwl(), g in arb_pwl()) {
        use wcm::curves::maxplus;
        let hi = maxplus::convolve(&f, &g);
        let lo = minplus::convolve(&f, &g);
        let hi_rev = maxplus::convolve(&g, &f);
        for i in 0..40 {
            let t = i as f64 * 0.3;
            prop_assert!(hi.value(t) + 1e-6 >= lo.value(t), "order violated at t={}", t);
            prop_assert!(
                (hi.value(t) - hi_rev.value(t)).abs() < 1e-6 * (1.0 + hi.value(t).abs()),
                "max-plus conv not commutative at t={}", t
            );
        }
    }

    /// The pointwise envelope really is the pointwise min/max.
    #[test]
    fn envelope_is_pointwise(f in arb_pwl(), g in arb_pwl()) {
        let mn = f.min(&g);
        let mx = f.max(&g);
        for i in 0..60 {
            let t = i as f64 * 0.25;
            let (fv, gv) = (f.value(t), g.value(t));
            prop_assert!((mn.value(t) - fv.min(gv)).abs() < 1e-6 * (1.0 + fv.abs() + gv.abs()));
            prop_assert!((mx.value(t) - fv.max(gv)).abs() < 1e-6 * (1.0 + fv.abs() + gv.abs()));
        }
    }
}
