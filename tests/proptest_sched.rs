//! Property-based tests of the scheduling layer: analysis inequalities and
//! analysis-vs-simulation agreement on random task sets.

use proptest::prelude::*;
use wcm::core::Cycles;
use wcm::sched::edf::{edf_wcet, edf_workload};
use wcm::sched::response::{response_times_wcet, response_times_workload};
use wcm::sched::rms::{lehoczky_wcet, lehoczky_workload};
use wcm::sched::sim::{simulate, Policy, SimConfig};
use wcm::sched::task::{PeriodicTask, TaskSet};

/// A random task set of 2–4 tasks with patterned demand, periods on a
/// small integer grid (so hyperperiods stay bounded).
fn arb_task_set() -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec(
        (
            2u64..=8,                                       // period in grid units
            1u64..=30,                                      // peak demand
            proptest::collection::vec(1u64..=30, 1..=4),    // pattern tail
        ),
        2..=4,
    )
    .prop_map(|specs| {
        let tasks = specs
            .into_iter()
            .enumerate()
            .map(|(i, (p, peak, tail))| {
                let mut pattern = vec![Cycles(peak)];
                pattern.extend(tail.iter().map(|&c| Cycles(c.min(peak))));
                PeriodicTask::new(format!("t{i}"), p as f64 * 5.0, Cycles(peak))
                    .expect("valid period")
                    .with_pattern(pattern)
                    .expect("pattern within wcet")
            })
            .collect();
        TaskSet::new(tasks).expect("non-empty")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 5 on random sets: L̃ ≤ L, per task and overall.
    #[test]
    fn refined_rms_never_worse(set in arb_task_set(), f in 1u32..20) {
        let f = f64::from(f);
        let classic = lehoczky_wcet(&set, f).unwrap();
        let refined = lehoczky_workload(&set, f).unwrap();
        prop_assert!(refined.l <= classic.l + 1e-9);
        for (r, c) in refined.l_factors.iter().zip(&classic.l_factors) {
            prop_assert!(r <= &(c + 1e-9));
        }
    }

    /// Response-time analysis: γ-based bounds are never larger, and both
    /// dominate the simulated worst response when the analysis admits the
    /// set.
    #[test]
    fn response_bounds_dominate_simulation(set in arb_task_set(), f in 2u32..20) {
        let f = f64::from(f);
        let classic = response_times_wcet(&set, f).unwrap();
        let refined = response_times_workload(&set, f).unwrap();
        for (r, c) in refined.response_times.iter().zip(&classic.response_times) {
            if let (Some(r), Some(c)) = (r, c) {
                prop_assert!(r <= &(c + 1e-9));
            }
            // Classic admitted ⇒ refined admits.
            if c.is_some() {
                prop_assert!(r.is_some());
            }
        }
        if refined.schedulable() {
            let horizon = set.hyperperiod().unwrap_or(1000.0) * 4.0;
            let sim = simulate(&set, &SimConfig {
                frequency: f,
                horizon,
                policy: Policy::FixedPriority,
            }).unwrap();
            prop_assert!(sim.no_misses());
            for (stats, bound) in sim.per_task.iter().zip(&refined.response_times) {
                let bound = bound.expect("schedulable");
                prop_assert!(
                    stats.max_response <= bound + 1e-9,
                    "task {} observed {} > bound {}", stats.name, stats.max_response, bound
                );
            }
        }
    }

    /// EDF: the γ-based demand test admits at least as much, and an
    /// admitted set executes without misses under EDF.
    #[test]
    fn edf_refinement_and_simulation(set in arb_task_set(), f in 2u32..20) {
        let f = f64::from(f);
        let horizon = set.hyperperiod().unwrap_or(500.0) * 2.0;
        let classic = edf_wcet(&set, f, horizon).unwrap();
        let refined = edf_workload(&set, f, horizon).unwrap();
        prop_assert!(refined.max_load <= classic.max_load + 1e-9);
        if classic.schedulable {
            prop_assert!(refined.schedulable);
        }
        if refined.schedulable {
            let sim = simulate(&set, &SimConfig {
                frequency: f,
                horizon,
                policy: Policy::Edf,
            }).unwrap();
            prop_assert!(sim.no_misses());
        }
    }

    /// The simulator never creates or loses jobs, and busy time equals the
    /// executed demand.
    #[test]
    fn simulator_conservation(set in arb_task_set(), f in 2u32..20) {
        let f = f64::from(f);
        let horizon = 400.0;
        let sim = simulate(&set, &SimConfig {
            frequency: f,
            horizon,
            policy: Policy::FixedPriority,
        }).unwrap();
        for (task, stats) in set.tasks().iter().zip(&sim.per_task) {
            let expected = (horizon / task.period()).ceil() as usize;
            prop_assert!(stats.released <= expected);
            prop_assert!(stats.released >= expected - 1);
            prop_assert!(stats.completed <= stats.released);
        }
        // Busy time never exceeds wall-clock drain window.
        prop_assert!(sim.busy_time <= horizon * 10.0 + 1.0);
    }
}
