//! Property-based tests of the single-pass window analysis: the prefix-sum
//! scan must agree with the textbook sliding-window recurrence, and the
//! threaded grid evaluation must be bit-identical to the sequential one for
//! every worker count and window mode.

use proptest::prelude::*;
use wcm::events::window::{
    max_spans_with, max_window_sums_with, min_spans_with, min_window_sums_with, Parallelism,
    PrefixSums, WindowMode,
};

/// The pre-prefix-sum implementation: one sliding-window rescan per `k`.
fn sliding_window_oracle(values: &[u64], k: usize, maximize: bool) -> Option<u64> {
    if k == 0 {
        return Some(0);
    }
    if k > values.len() {
        return None;
    }
    let mut sum: u64 = values[..k].iter().sum();
    let mut best = sum;
    for i in k..values.len() {
        sum = sum + values[i] - values[i - k];
        best = if maximize { best.max(sum) } else { best.min(sum) };
    }
    Some(best)
}

fn arb_mode() -> impl Strategy<Value = WindowMode> {
    (0usize..3, 1usize..20, 1usize..10).prop_map(|(tag, exact_upto, stride)| {
        if tag == 0 {
            WindowMode::Exact
        } else {
            WindowMode::Strided { exact_upto, stride }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The O(1)-per-window prefix-sum scan equals the O(1)-amortized
    /// sliding-window recurrence for every k, max and min alike.
    #[test]
    fn prefix_sums_match_sliding_window_oracle(
        values in proptest::collection::vec(0u64..100_000, 1..120)
    ) {
        let p = PrefixSums::new(&values);
        for k in 0..=values.len() + 1 {
            prop_assert_eq!(p.max_window_sum(k), sliding_window_oracle(&values, k, true));
            prop_assert_eq!(p.min_window_sum(k), sliding_window_oracle(&values, k, false));
        }
    }

    /// Threaded whole-curve construction returns the exact same `Vec<u64>`
    /// as the sequential run, for any worker count and window mode.
    #[test]
    fn parallel_window_sums_equal_sequential(
        values in proptest::collection::vec(0u64..100_000, 1..120),
        mode in arb_mode(),
        threads in 2usize..9
    ) {
        let k_max = values.len();
        let seq_max = max_window_sums_with(&values, k_max, mode, Parallelism::Seq).unwrap();
        let seq_min = min_window_sums_with(&values, k_max, mode, Parallelism::Seq).unwrap();
        let par = Parallelism::Threads(threads);
        prop_assert_eq!(max_window_sums_with(&values, k_max, mode, par).unwrap(), seq_max);
        prop_assert_eq!(min_window_sums_with(&values, k_max, mode, par).unwrap(), seq_min);
    }

    /// Threaded span analysis is bit-identical to the sequential run
    /// (`Vec<f64>` equality, not approximate).
    #[test]
    fn parallel_spans_equal_sequential(
        gaps in proptest::collection::vec(0.0f64..10.0, 1..100),
        mode in arb_mode(),
        threads in 2usize..9
    ) {
        let mut t = 0.0;
        let times: Vec<f64> = gaps
            .iter()
            .map(|g| {
                t += g;
                t
            })
            .collect();
        let k_max = times.len();
        let seq_min = min_spans_with(&times, k_max, mode, Parallelism::Seq).unwrap();
        let seq_max = max_spans_with(&times, k_max, mode, Parallelism::Seq).unwrap();
        let par = Parallelism::Threads(threads);
        prop_assert_eq!(min_spans_with(&times, k_max, mode, par).unwrap(), seq_min);
        prop_assert_eq!(max_spans_with(&times, k_max, mode, par).unwrap(), seq_max);
    }
}
