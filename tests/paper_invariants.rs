//! Cross-crate integration tests pinning the paper's stated facts and
//! inequalities.

use wcm::core::curve::WorkloadBounds;
use wcm::core::polling::PollingTask;
use wcm::core::verify;
use wcm::events::window::WindowMode;
use wcm::events::{Cycles, ExecutionInterval, Trace, TypeRegistry};
use wcm::sched::rms::{lehoczky_wcet, lehoczky_workload};
use wcm::sched::task::{PeriodicTask, TaskSet};

/// Sec. 2.1 / Fig. 1: the example sequence with its printed γ values.
#[test]
fn fig1_example_values() {
    let mut reg = TypeRegistry::new();
    reg.register("a", ExecutionInterval::new(Cycles(1), Cycles(3)).unwrap())
        .unwrap();
    reg.register("b", ExecutionInterval::new(Cycles(2), Cycles(6)).unwrap())
        .unwrap();
    reg.register("c", ExecutionInterval::new(Cycles(1), Cycles(2)).unwrap())
        .unwrap();
    let trace = Trace::parse(reg, "a b a b c c a a c").unwrap();
    assert_eq!(trace.gamma_b(3, 4), Cycles(5));
    assert_eq!(trace.gamma_w(3, 4), Cycles(13));
    assert_eq!(trace.gamma_w(1, 0), Cycles(0));
}

/// Def. 1 properties: γᵘ(1) = WCET, γˡ(1) = BCET, curves cover every
/// window, and the pseudo-inverse satisfies the Galois relations of
/// Sec. 2.1.
#[test]
fn definition1_properties_on_fig1_trace() {
    let mut reg = TypeRegistry::new();
    reg.register("a", ExecutionInterval::new(Cycles(1), Cycles(3)).unwrap())
        .unwrap();
    reg.register("b", ExecutionInterval::new(Cycles(2), Cycles(6)).unwrap())
        .unwrap();
    reg.register("c", ExecutionInterval::new(Cycles(1), Cycles(2)).unwrap())
        .unwrap();
    let trace = Trace::parse(reg, "a b a b c c a a c").unwrap();
    let bounds = WorkloadBounds::from_trace(&trace, 9, WindowMode::Exact).unwrap();
    assert_eq!(bounds.upper.wcet(), Cycles(6));
    assert_eq!(bounds.lower.bcet(), Cycles(1));
    assert!(verify::bounds_cover_trace(&bounds, &trace));
    // γᵘ(k) ≤ e ⇔ k ≤ γᵘ⁻¹(e), and γᵘ⁻¹(γᵘ(k)) = k for strictly
    // increasing curves.
    for k in 1..=9usize {
        let e = bounds.upper.value(k).get() as f64;
        assert_eq!(bounds.upper.pseudo_inverse(e), k as u64);
    }
}

/// Example 1 / Fig. 2: the analytic polling curves against a trace-based
/// reconstruction of the same constraint system.
#[test]
fn polling_analytic_matches_trace_based() {
    let task = PollingTask::new(1.0, 3.0, 5.0, Cycles(10), Cycles(2)).unwrap();
    // Adversarial event stream: as fast as allowed (every θ_min).
    let mut reg = TypeRegistry::new();
    let p = reg
        .register("process", ExecutionInterval::fixed(Cycles(10)))
        .unwrap();
    let c = reg
        .register("check", ExecutionInterval::fixed(Cycles(2)))
        .unwrap();
    let polls = 300usize;
    let events: Vec<_> = (1..=polls)
        .map(|i| {
            // Events at 0, 3, 6, …; poll i covers ((i−1)·T, i·T].
            let hit = (i - 1) % 3 == 0 || i == 1;
            if hit {
                p
            } else {
                c
            }
        })
        .collect();
    let trace = Trace::new(reg, events);
    let measured = WorkloadBounds::from_trace(&trace, 30, WindowMode::Exact).unwrap();
    for k in 1..=30usize {
        assert!(
            measured.upper.value(k) <= task.gamma_upper(k),
            "measured exceeds analytic bound at k={k}"
        );
        assert!(
            measured.lower.value(k) >= task.gamma_lower(k),
            "measured below analytic lower bound at k={k}"
        );
    }
}

/// Eq. 5: the workload-curve RMS test is never more pessimistic than the
/// classic one, on a grid of task sets.
#[test]
fn eq5_holds_across_task_set_grid() {
    for peak in [20u64, 40, 60, 80, 100] {
        for audio_c in [10u64, 30, 50] {
            let video = PeriodicTask::new("v", 10.0, Cycles(peak))
                .unwrap()
                .with_pattern(vec![
                    Cycles(peak),
                    Cycles(peak / 4 + 1),
                    Cycles(peak / 8 + 1),
                ])
                .unwrap();
            let audio = PeriodicTask::new("a", 35.0, Cycles(audio_c)).unwrap();
            let set = TaskSet::new(vec![video, audio]).unwrap();
            let classic = lehoczky_wcet(&set, 10.0).unwrap();
            let refined = lehoczky_workload(&set, 10.0).unwrap();
            assert!(
                refined.l <= classic.l + 1e-12,
                "peak={peak} audio={audio_c}: {} > {}",
                refined.l,
                classic.l
            );
            for (r, c) in refined.l_factors.iter().zip(&classic.l_factors) {
                assert!(r <= &(c + 1e-12));
            }
        }
    }
}

/// The refined verdict is validated by execution: any set admitted by
/// eq. 4 runs without misses when its jobs follow the declared pattern.
#[test]
fn refined_verdicts_hold_in_simulation() {
    use wcm::sched::sim::{simulate, Policy, SimConfig};
    for peak in [30u64, 60, 90, 120] {
        let video = PeriodicTask::new("v", 10.0, Cycles(peak))
            .unwrap()
            .with_pattern(vec![Cycles(peak), Cycles(10), Cycles(10)])
            .unwrap();
        let audio = PeriodicTask::new("a", 30.0, Cycles(50)).unwrap();
        let set = TaskSet::new(vec![video, audio]).unwrap();
        let refined = lehoczky_workload(&set, 10.0).unwrap();
        let sim = simulate(
            &set,
            &SimConfig {
                frequency: 10.0,
                horizon: 3000.0,
                policy: Policy::FixedPriority,
            },
        )
        .unwrap();
        if refined.schedulable() {
            assert!(sim.no_misses(), "peak={peak}: admitted set missed");
        }
    }
}

/// Mode-graph curves (extension) cover every trace a Markov chain over the
/// same graph can generate — the analytic γ dominates all sampled
/// behaviour.
#[test]
fn mode_graph_covers_markov_traces() {
    use rand::SeedableRng;
    use wcm::core::modes::ModeGraph;
    use wcm::events::gen::MarkovGen;

    // Three-state graph: hot must cool down for two steps.
    let mut reg = TypeRegistry::new();
    let hot_t = reg
        .register("hot", ExecutionInterval::fixed(Cycles(10)))
        .unwrap();
    let cool_t = reg
        .register("cool", ExecutionInterval::fixed(Cycles(2)))
        .unwrap();

    let mut graph = ModeGraph::new();
    let hot = graph.add_mode("hot", ExecutionInterval::fixed(Cycles(10)));
    let c1 = graph.add_mode("c1", ExecutionInterval::fixed(Cycles(2)));
    let c2 = graph.add_mode("c2", ExecutionInterval::fixed(Cycles(2)));
    graph.add_edge(hot, c1).unwrap();
    graph.add_edge(c1, c2).unwrap();
    graph.add_edge(c2, hot).unwrap();
    graph.add_edge(c2, c2).unwrap();
    let bounds = graph.bounds(20).unwrap();

    // A Markov chain whose transitions follow the graph edges.
    let markov = MarkovGen::new(
        vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.6, 0.0, 0.4],
        ],
        vec![hot_t, cool_t, cool_t],
        vec![1.0, 1.0, 1.0],
    )
    .unwrap();
    for seed in 0..20 {
        let timed = markov
            .generate(
                &reg,
                (seed % 3) as usize,
                200,
                &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed),
            )
            .unwrap();
        let trace = timed.to_trace();
        assert!(
            wcm::core::verify::bounds_cover_trace(&bounds, &trace),
            "graph curves failed to cover Markov trace (seed {seed})"
        );
    }
}

/// Workload curves refine the WCET line but never cross it (the gray areas
/// of Fig. 2 are one-sided).
#[test]
fn curves_always_inside_wcet_bcet_cone() {
    let task = PollingTask::new(1.0, 4.0, 9.0, Cycles(7), Cycles(3)).unwrap();
    let bounds = task.bounds(64).unwrap();
    let wline =
        wcm::UpperWorkloadCurve::wcet_line(bounds.upper.wcet(), 64).unwrap();
    assert!(verify::upper_refines(&bounds.upper, &wline));
    for k in 1..=64usize {
        assert!(bounds.lower.value(k).get() >= bounds.lower.bcet().get() * k as u64);
    }
}
