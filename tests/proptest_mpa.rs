//! Property-based tests of the MPA greedy-processing component.

use proptest::prelude::*;
use wcm::core::mpa::{fixed_priority_chain, greedy_processing, EventStream, Service};
use wcm::core::{LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
use wcm::curves::StepCurve;

/// Random consistent workload bounds: per-event demands in a small range,
/// lower ≤ upper cumulative.
fn arb_task() -> impl Strategy<Value = WorkloadBounds> {
    (
        proptest::collection::vec(1u64..=20, 3..8),
        proptest::collection::vec(1u64..=20, 3..8),
    )
        .prop_map(|(mut cheap, mut dear)| {
            let n = cheap.len().min(dear.len());
            cheap.truncate(n);
            dear.truncate(n);
            // Build cumulative curves with lower increments = min, upper =
            // max of the two draws.
            let mut lo = Vec::with_capacity(n);
            let mut hi = Vec::with_capacity(n);
            let (mut l, mut h) = (0u64, 0u64);
            for i in 0..n {
                l += cheap[i].min(dear[i]);
                h += cheap[i].max(dear[i]);
                lo.push(l);
                hi.push(h);
            }
            WorkloadBounds {
                upper: UpperWorkloadCurve::new(hi).expect("monotone"),
                lower: LowerWorkloadCurve::new(lo).expect("monotone"),
            }
        })
}

/// Random arrival staircase with unit long-run rate.
fn arb_stream() -> impl Strategy<Value = EventStream> {
    proptest::collection::vec(0.1f64..2.0, 2..8).prop_map(|gaps| {
        let mut steps = vec![(0.0, 1u64)];
        let mut d = 0.0;
        for (i, g) in gaps.iter().enumerate() {
            d += g;
            steps.push((d, i as u64 + 2));
        }
        let alpha = StepCurve::new(steps, d, 1.0).expect("sorted steps");
        EventStream::from_upper_staircase(&alpha)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A sufficiently fast PE always yields consistent outputs; bounds are
    /// monotone in the service speed.
    #[test]
    fn gpc_consistency_and_monotonicity(task in arb_task(), stream in arb_stream()) {
        // Fast enough for any of the generated tasks/streams.
        let fast = Service::dedicated(2000.0).unwrap();
        let slow = Service::dedicated(90.0).unwrap();
        let out_fast = greedy_processing(&stream, &fast, &task, 64).unwrap();
        if let Ok(out_slow) = greedy_processing(&stream, &slow, &task, 64) {
            prop_assert!(out_slow.delay + 1e-9 >= out_fast.delay);
            prop_assert!(out_slow.backlog_events >= out_fast.backlog_events);
        }
        // Output curves ordered.
        for i in 0..30 {
            let d = i as f64 * 0.3;
            prop_assert!(
                out_fast.output.lower.value(d)
                    <= out_fast.output.upper.value(d) + 1e-6,
                "output curves crossed at Δ={}", d
            );
        }
        // Remaining service ordered and below the raw service.
        for i in 0..30 {
            let d = i as f64 * 0.3;
            prop_assert!(
                out_fast.remaining.lower.value(d)
                    <= out_fast.remaining.upper.value(d) + 1e-6
            );
            prop_assert!(out_fast.remaining.lower.value(d) <= 2000.0 * d + 1e-6);
        }
    }

    /// In a priority chain, lower priority never gets better bounds than it
    /// would alone on the full PE.
    #[test]
    fn chain_priority_ordering(
        hp_task in arb_task(),
        lp_task in arb_task(),
        stream in arb_stream(),
    ) {
        let service = Service::dedicated(1500.0).unwrap();
        let chain = fixed_priority_chain(
            &[(stream.clone(), hp_task), (stream.clone(), lp_task.clone())],
            &service,
            64,
        );
        let Ok(chain) = chain else { return Ok(()); };
        let alone = greedy_processing(&stream, &service, &lp_task, 64).unwrap();
        prop_assert!(chain[1].delay + 1e-9 >= alone.delay);
        prop_assert!(chain[1].backlog_events >= alone.backlog_events);
    }
}
