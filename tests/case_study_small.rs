//! Reduced-scale end-to-end checks of the MPEG-2 case study (Sec. 3.2):
//! the analytical bounds must dominate everything the simulator observes.

use wcm::core::build::arrival_upper;
use wcm::core::sizing::{min_buffer, min_frequency_wcet, min_frequency_workload};
use wcm::core::UpperWorkloadCurve;
use wcm::events::window::{max_window_sums, WindowMode};
use wcm::events::{Cycles, ExecutionInterval, TimedEvent, TimedTrace, TypeRegistry};
use wcm::mpeg::{profile, ClipWorkload, GopStructure, Synthesizer, VideoParams};
use wcm::sim::pipeline::{simulate_pipeline, PipelineConfig, PipelineResult};

const PE1_HZ: f64 = 10.0e6;

fn small_params() -> VideoParams {
    // 320×256 → 320 macroblocks per frame; scaled bitrate.
    VideoParams::new(320, 256, 25.0, 2.0e6, GopStructure::broadcast()).unwrap()
}

fn clip(index: usize, gops: usize) -> ClipWorkload {
    Synthesizer::new(small_params())
        .generate(&profile::standard_clips()[index], gops)
        .unwrap()
}

fn run(clip: &ClipWorkload, pe2_hz: f64) -> PipelineResult {
    simulate_pipeline(
        clip,
        &PipelineConfig {
            bitrate_bps: clip.params().bitrate_bps(),
            pe1_hz: PE1_HZ,
            pe2_hz,
        },
    )
    .unwrap()
}

fn measure(clip: &ClipWorkload, k_max: usize) -> (wcm::curves::StepCurve, UpperWorkloadCurve) {
    let r = run(clip, 1.0e9);
    let mut reg = TypeRegistry::new();
    let mb = reg
        .register("mb", ExecutionInterval::fixed(Cycles(1)))
        .unwrap();
    let tt = TimedTrace::new(
        reg,
        r.fifo_in_times
            .iter()
            .map(|&time| TimedEvent { time, ty: mb })
            .collect(),
    )
    .unwrap();
    let alpha = arrival_upper(&tt, k_max, WindowMode::Exact).unwrap();
    let demands = clip.pe2_demands();
    let gamma = UpperWorkloadCurve::new(
        max_window_sums(&demands, k_max, WindowMode::Exact).unwrap(),
    )
    .unwrap();
    (alpha, gamma)
}

/// The measured arrival staircase really covers the trace: for every
/// window of FIFO-input timestamps, the count is within the curve.
#[test]
fn measured_arrival_curve_covers_all_windows() {
    let c = clip(9, 1);
    let r = run(&c, 1.0e9);
    let times = &r.fifo_in_times;
    let k_max = 800usize;
    let (alpha, _) = measure(&c, k_max);
    for k in (1..=k_max).step_by(97) {
        for w in times.windows(k) {
            let span = w[k - 1] - w[0];
            assert!(
                alpha.value(span) >= k as u64,
                "window of {k} events in {span}s not covered"
            );
        }
    }
}

/// Eq. 7 soundness: the analytical backlog bound dominates the simulated
/// FIFO occupancy at every tested PE₂ frequency.
#[test]
fn backlog_bound_dominates_simulation() {
    let c = clip(12, 2);
    let k_max = 6 * small_params().mb_per_frame();
    let (alpha, gamma) = measure(&c, k_max);
    for f_mhz in [40.0, 60.0, 90.0, 140.0] {
        let f = f_mhz * 1e6;
        let bound = match min_buffer(&alpha, &gamma, f) {
            Ok(b) => b,
            Err(_) => continue, // under-provisioned: divergent bound
        };
        let sim = run(&c, f);
        assert!(
            sim.max_backlog <= bound,
            "F = {f_mhz} MHz: simulated {} exceeds bound {bound}",
            sim.max_backlog
        );
    }
}

/// Eq. 9 validity: at the computed minimum frequency, no simulated clip
/// ever exceeds the buffer.
#[test]
fn eq9_frequency_prevents_overflow() {
    let buffer = small_params().mb_per_frame() as u64; // one frame
    let k_max = 6 * small_params().mb_per_frame();
    let clips: Vec<ClipWorkload> = [9, 12, 13].iter().map(|&i| clip(i, 2)).collect();
    let mut alpha: Option<wcm::curves::StepCurve> = None;
    let mut gamma: Option<UpperWorkloadCurve> = None;
    for c in &clips {
        let (a, g) = measure(c, k_max);
        alpha = Some(match alpha {
            Some(acc) => acc.max(&a).unwrap(),
            None => a,
        });
        gamma = Some(match gamma {
            Some(acc) => acc.max_merge(&g),
            None => g,
        });
    }
    let (alpha, gamma) = (alpha.unwrap(), gamma.unwrap());
    let f_gamma = min_frequency_workload(&alpha, &gamma, buffer).unwrap();
    let f_wcet = min_frequency_wcet(&alpha, gamma.wcet(), buffer).unwrap();
    assert!(f_gamma <= f_wcet, "eq. 9 must not exceed eq. 10");
    assert!(
        f_gamma <= 0.75 * f_wcet,
        "the workload-curve saving should be substantial: {f_gamma} vs {f_wcet}"
    );
    for c in &clips {
        let sim = run(c, f_gamma);
        assert!(
            sim.max_backlog <= buffer,
            "{}: backlog {} exceeds buffer {buffer} at F_gamma",
            c.name(),
            sim.max_backlog
        );
    }
}

/// The *analytic* PE₁-output bound (chain throttles: processing cycles
/// and input bits, both via lower workload curves) dominates the measured
/// arrival curve — the analysis the paper said was hard to do without a
/// simulator, validated against the simulator.
#[test]
fn analytic_output_bound_dominates_measured_arrival() {
    use wcm::core::chain::{producer_output_bound, Throttle};
    use wcm::core::LowerWorkloadCurve;
    use wcm::events::window::min_window_sums;

    let c = clip(12, 1);
    let k_max = 2 * small_params().mb_per_frame();
    let r = run(&c, 1.0e9);

    // Lower workload curves of PE1's two consumed resources.
    let pe1_cycles = c.pe1_demands();
    let bits = c.mb_bits();
    let gamma_proc =
        LowerWorkloadCurve::new(min_window_sums(&pe1_cycles, k_max, WindowMode::Exact).unwrap())
            .unwrap();
    let gamma_bits =
        LowerWorkloadCurve::new(min_window_sums(&bits, k_max, WindowMode::Exact).unwrap())
            .unwrap();

    // Measure how many bits PE1 ever had pre-buffered (arrived but not yet
    // consumed at an emission instant).
    let rate = c.params().bitrate_bps();
    let total_bits: u64 = bits.iter().sum();
    let mut cum = 0u64;
    let mut head_start = 0.0f64;
    for (i, &b) in bits.iter().enumerate() {
        cum += b;
        let arrived = (rate * r.fifo_in_times[i]).min(total_bits as f64);
        head_start = head_start.max(arrived - cum as f64);
    }

    let bound = producer_output_bound(
        &[
            Throttle {
                gamma_lower: &gamma_proc,
                rate: PE1_HZ,
                head_start: 0.0,
            },
            Throttle {
                gamma_lower: &gamma_bits,
                rate,
                head_start,
            },
        ],
        k_max,
    )
    .unwrap();

    // Every window of the simulated output must respect the bound.
    let times = &r.fifo_in_times;
    for k in (2..=k_max).step_by(61) {
        for w in times.windows(k) {
            let span = w[k - 1] - w[0];
            assert!(
                bound.value(span) >= k as u64,
                "{k} emissions in {span}s exceed the analytic bound {}",
                bound.value(span)
            );
        }
    }
}

/// Reproducibility: the whole pipeline is bit-deterministic per seed.
#[test]
fn case_study_is_deterministic() {
    let a = run(&clip(5, 1), 50.0e6);
    let b = run(&clip(5, 1), 50.0e6);
    assert_eq!(a, b);
}

/// Monotonicity in frequency: faster PE₂ never increases the max backlog.
#[test]
fn backlog_monotone_in_frequency() {
    let c = clip(13, 1);
    let mut prev = u64::MAX;
    for f_mhz in [40.0, 80.0, 160.0, 320.0] {
        let sim = run(&c, f_mhz * 1e6);
        assert!(
            sim.max_backlog <= prev,
            "backlog rose with frequency at {f_mhz} MHz"
        );
        prev = sim.max_backlog;
    }
}
