//! # wcm — workload curves for tasks with variable execution demand
//!
//! A Rust reproduction of **A. Maxiaguine, S. Künzli, L. Thiele, "Workload
//! Characterization Model for Tasks with Variable Execution Demand",
//! DATE 2004**, including every substrate the paper's evaluation depends
//! on. This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `wcm-core` | workload curves `γᵘ/γˡ`, pseudo-inverses, event↔cycle conversions, buffer/frequency sizing (eqs. 7–10), the polling task of Example 1 |
//! | [`curves`] | `wcm-curves` | Network-/Real-Time-Calculus algebra: PWL curves, min-plus `⊗`/`⊘`, backlog & delay bounds, arrival/service models |
//! | [`events`] | `wcm-events` | typed event streams, trace generators, sliding-window analysis |
//! | [`sched`] | `wcm-sched` | Lehoczky RMS test (classic & γ-refined, Sec. 3.1), response times, EDF demand bounds, a preemptive scheduler simulator |
//! | [`mpeg`] | `wcm-mpeg` | the synthetic MPEG-2 decoder workload model (14 clip profiles, per-macroblock demand) |
//! | [`sim`] | `wcm-sim` | the transaction-level CBR → PE₁ → FIFO → PE₂ pipeline simulator (Fig. 5) |
//! | [`obs`] | `wcm-obs` | zero-dependency observability: spans, counters, log2 histograms, Chrome-trace export, strict JSON/CSV readers |
//! | [`wire`] | `wcm-wire` | the versioned binary `.wcmt` trace wire format: streaming encoder/decoder, corruption-tolerant resync |
//! | [`serve`] | `wcm-serve` | always-on monitoring: live `.wcmt` ingestion (file tail / TCP), per-session spines + monitors, eq.-9 admission control |
//!
//! # Quickstart
//!
//! Characterize a task from a measured trace and bound its buffer needs:
//!
//! ```
//! use wcm::core::curve::WorkloadBounds;
//! use wcm::core::sizing;
//! use wcm::events::{window::WindowMode, Cycles, ExecutionInterval, Trace, TypeRegistry};
//! use wcm::curves::StepCurve;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An event type set: cache hits are cheap, misses expensive.
//! let mut reg = TypeRegistry::new();
//! let hit = reg.register("hit", ExecutionInterval::fixed(Cycles(200)))?;
//! let miss = reg.register("miss", ExecutionInterval::fixed(Cycles(900)))?;
//! // Misses never occur back to back in the observed stream.
//! let trace = Trace::new(reg, vec![miss, hit, hit, miss, hit, miss, hit, hit]);
//! let bounds = WorkloadBounds::from_trace(&trace, 6, WindowMode::Exact)?;
//!
//! // γᵘ(2) = miss + hit, far below 2×WCET.
//! assert_eq!(bounds.upper.value(2), Cycles(1100));
//!
//! // Size the minimum clock frequency for a bursty arrival pattern and a
//! // 2-event input buffer (eq. 9) and compare with WCET-based sizing
//! // (eq. 10).
//! let alpha = StepCurve::new(vec![(0.0, 2), (1.0, 3), (2.0, 4)], 3.0, 1.0)?;
//! let f_gamma = sizing::min_frequency_workload(&alpha, &bounds.upper, 2)?;
//! let f_wcet = sizing::min_frequency_wcet(&alpha, bounds.upper.wcet(), 2)?;
//! assert!(f_gamma <= f_wcet);
//! # Ok(())
//! # }
//! ```
//!
//! # Reproducing the paper
//!
//! The `wcm-bench` crate regenerates every table and figure; see
//! `EXPERIMENTS.md` for the index and recorded results:
//!
//! ```text
//! cargo run --release -p wcm-bench --bin fig2_polling
//! cargo run --release -p wcm-bench --bin table_rms
//! cargo run --release -p wcm-bench --bin fig6_workload_curves
//! cargo run --release -p wcm-bench --bin table_fmin
//! cargo run --release -p wcm-bench --bin fig7_backlogs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wcm_core as core;
pub use wcm_curves as curves;
pub use wcm_events as events;
pub use wcm_mpeg as mpeg;
pub use wcm_obs as obs;
pub use wcm_sched as sched;
pub use wcm_serve as serve;
pub use wcm_sim as sim;
pub use wcm_wire as wire;

// The most-used types at the top level for convenience.
pub use wcm_core::{Cycles, LowerWorkloadCurve, UpperWorkloadCurve, WorkloadBounds};
